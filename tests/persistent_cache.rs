//! Persistent evaluation-cache correctness: results served from the on-disk
//! tier must be byte-identical to freshly simulated ones, warm runs must not
//! simulate (or append) anything, stale-version segments must be skipped
//! without failing the job, and separate OS processes — including a
//! `--workers 2` cluster session — must share one cache directory safely.

use std::path::PathBuf;
use std::process::Command;

use msfu_core::progress::RunControl;
use msfu_core::{EvaluationConfig, PortfolioEntry, SearchSpec, Strategy, SweepSpec};
use msfu_distill::FactoryConfig;
use msfu_layout::MapperParams;
use msfu_sim::SimConfig;

fn eval() -> EvaluationConfig {
    EvaluationConfig::default().with_sim(SimConfig::dimension_ordered())
}

/// A fresh per-test cache directory under the system temp dir (never inside
/// `target/`, so `cargo clean` does not own it and the test controls its
/// lifetime explicitly).
fn fresh_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "msfu-persistent-cache-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Eight sweep points with three duplicate pairs (five unique evaluations).
fn duplicate_heavy_spec() -> SweepSpec {
    let single = FactoryConfig::single_level(4);
    let two = FactoryConfig::two_level(2);
    SweepSpec::new("persist-test", eval())
        .point("a", single, Strategy::linear())
        .point("b", single, Strategy::linear())
        .point("a", single, Strategy::random(7))
        .point("b", single, Strategy::random(7))
        .point("g", two, Strategy::graph_partition(3))
        .point("g2", two, Strategy::graph_partition(3))
        .point("f", two, Strategy::random(5))
        .point("l", two, Strategy::linear())
}

/// Total byte size of the segment files in a cache directory — unchanged
/// sizes across a run prove the run appended nothing (pure disk hits).
fn segment_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".bin"))
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

#[test]
fn warm_sweep_is_served_from_disk_and_byte_identical() {
    let dir = fresh_cache_dir("sweep");
    let spec = duplicate_heavy_spec().with_cache_dir(&dir);
    let reference = duplicate_heavy_spec().with_eval_cache(false).run().unwrap();

    // Cold run: five unique points simulate and persist, three duplicates
    // hit in memory; nothing comes from disk yet.
    let cold = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(cold.results, reference, "cold disk-tier run must not drift");
    assert_eq!(cold.cache.misses, 5, "stats: {:?}", cold.cache);
    assert_eq!(cold.cache.hits, 3);
    assert_eq!(cold.cache.disk_hits, 0);
    assert_eq!(cold.cache.loaded, 0);
    assert_eq!(cold.cache.persisted, 5);

    // Warm run (fresh cache instance over the same directory): every point
    // is answered from the disk-loaded slots, nothing simulates or appends.
    let bytes_after_cold = segment_bytes(&dir);
    assert!(bytes_after_cold > 0, "cold run must write segment files");
    let warm = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(warm.results, reference, "disk hits must be byte-identical");
    assert_eq!(warm.cache.misses, 0, "stats: {:?}", warm.cache);
    assert_eq!(warm.cache.hits, 8);
    assert_eq!(warm.cache.disk_hits, 8);
    assert_eq!(warm.cache.loaded, 5);
    assert_eq!(warm.cache.persisted, 0);
    assert_eq!(segment_bytes(&dir), bytes_after_cold, "warm run appended");

    // The parallel engine reads the same tier with identical results.
    let parallel = spec.run().unwrap();
    assert_eq!(parallel, reference);

    let _ = std::fs::remove_dir_all(&dir);
}

fn search_spec(dir: Option<&std::path::Path>) -> SearchSpec {
    let mut spec = SearchSpec::new("persist-search", eval(), FactoryConfig::single_level(2));
    spec.budget = 18;
    spec.batch_size = 6;
    spec.patience = 0;
    spec.seed = 42;
    spec.cache_dir = dir.map(|d| d.to_path_buf());
    spec.portfolio = vec![
        PortfolioEntry::fixed(Strategy::linear()),
        PortfolioEntry::seed_scan(Strategy::graph_partition(42)),
        PortfolioEntry::seed_scan(Strategy::random(42)).with_ladder(vec![
            MapperParams::new(),
            MapperParams::new().with_f64("expansion", 1.2),
        ]),
    ];
    spec
}

#[test]
fn warm_search_simulates_nothing_and_reports_identically() {
    let dir = fresh_cache_dir("search");
    let reference = search_spec(None).run().unwrap();

    let cold = search_spec(Some(&dir))
        .run_serial_with(&RunControl::default())
        .unwrap();
    assert_eq!(cold.report, reference);
    assert!(cold.cache.persisted > 0, "stats: {:?}", cold.cache);

    let warm = search_spec(Some(&dir))
        .run_serial_with(&RunControl::default())
        .unwrap();
    assert_eq!(warm.report, reference, "disk hits must be byte-identical");
    assert_eq!(warm.cache.misses, 0, "stats: {:?}", warm.cache);
    assert_eq!(warm.cache.disk_hits, warm.cache.hits);
    assert_eq!(warm.cache.persisted, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_version_segments_are_skipped_without_failing_the_sweep() {
    let dir = fresh_cache_dir("stale");
    std::fs::create_dir_all(&dir).unwrap();
    // A hand-written segment holding one record in an old format: valid
    // 4-byte length framing, but version byte 0 instead of the current
    // FORMAT_VERSION. The open must warn, skip it, and carry on.
    let payload = [0u8, 1, 2, 3];
    let mut record = (payload.len() as u32).to_le_bytes().to_vec();
    record.extend_from_slice(&payload);
    std::fs::write(dir.join("seg-00.bin"), &record).unwrap();

    let spec = duplicate_heavy_spec().with_cache_dir(&dir);
    let reference = duplicate_heavy_spec().with_eval_cache(false).run().unwrap();
    let outcome = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(outcome.results, reference);
    assert_eq!(outcome.cache.loaded, 0, "stats: {:?}", outcome.cache);
    assert_eq!(outcome.cache.misses, 5);

    // The stale record stays in place (appends never rewrite segments) and
    // keeps being skipped on the now-warm reopen.
    let warm = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(warm.results, reference);
    assert_eq!(warm.cache.loaded, 5, "stats: {:?}", warm.cache);
    assert_eq!(warm.cache.misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_segment_is_quarantined_and_compact_heals_the_directory() {
    let dir = fresh_cache_dir("heal");
    let spec = duplicate_heavy_spec().with_cache_dir(&dir);
    let reference = duplicate_heavy_spec().with_eval_cache(false).run().unwrap();
    let cold = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(cold.results, reference);
    assert_eq!(cold.cache.persisted, 5, "stats: {:?}", cold.cache);

    // Flip bytes inside one populated segment (deterministic damage).
    let bucket = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.metadata().is_ok_and(|m| m.len() > 0))
        .find_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let hex = name.strip_prefix("seg-")?.strip_suffix(".bin")?;
            usize::from_str_radix(hex, 16).ok()
        })
        .expect("a populated segment to damage");
    let damaged = msfu_core::damage_segment(&dir, bucket, msfu_core::SegmentDamage::FlipBytes, 9)
        .expect("damage applies");

    // The next run must quarantine the bad segment on open, count the damage
    // as a warning, re-simulate whatever the quarantine lost, and still
    // produce byte-identical rows.
    let healed = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(healed.results, reference, "corruption must not change rows");
    assert!(healed.cache.warnings > 0, "stats: {:?}", healed.cache);
    let quarantined = damaged.with_file_name(format!(
        "{}.quarantined",
        damaged.file_name().unwrap().to_str().unwrap()
    ));
    assert!(
        quarantined.exists(),
        "damaged segment must be renamed aside, not left live"
    );

    // Compaction salvages the quarantined records, drops the damage, and
    // leaves a directory that re-opens warning-free and fully warm.
    let report = msfu_core::compact_dir(&dir).expect("compact succeeds");
    assert_eq!(report.quarantined_removed, 1, "report: {report:?}");
    let verify = msfu_core::verify_dir(&dir).expect("verify succeeds");
    assert!(verify.is_clean(), "after compact: {verify:?}");
    let clean = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(clean.results, reference);
    assert_eq!(clean.cache.warnings, 0, "stats: {:?}", clean.cache);
    assert_eq!(clean.cache.misses, 0, "stats: {:?}", clean.cache);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A four-point sweep request (two duplicate pairs) for cross-process runs.
const SWEEP_REQUEST: &str = r#"{"protocol_version": 1, "id": "xproc", "kind": "sweep",
 "sweep": {"name": "xproc", "eval": {"routing": "dimension-ordered"}, "grids": [
   {"label": "a", "factories": [{"capacity": 2, "levels": 1, "reuse": "R"}],
    "strategies": [{"strategy": "linear"}, {"strategy": "random", "seed": 7}]},
   {"label": "b", "factories": [{"capacity": 2, "levels": 1, "reuse": "R"}],
    "strategies": [{"strategy": "linear"}, {"strategy": "random", "seed": 7}]}]}}"#;

/// Runs the real `msfu` binary and returns the parsed `result` payload of
/// its JSON response (the job outcome minus the machine-dependent perf
/// stamp, which legitimately differs between serial and clustered runs).
fn msfu_run(request_path: &std::path::Path, extra_args: &[&str]) -> serde_json::Value {
    let output = Command::new(env!("CARGO_BIN_EXE_msfu"))
        .arg("run")
        .arg(request_path)
        .args(extra_args)
        .output()
        .expect("msfu binary runs");
    assert!(
        output.status.success(),
        "msfu run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("UTF-8 response");
    let response = serde_json::from_str(&stdout).expect("JSON response");
    assert_eq!(
        response.get("status").and_then(|s| s.as_str()),
        Some("ok"),
        "response not ok: {stdout}"
    );
    response.get("result").expect("result payload").clone()
}

#[test]
fn separate_processes_share_one_cache_dir() {
    let dir = fresh_cache_dir("xproc");
    let request = fresh_cache_dir("xproc-req").with_extension("json");
    std::fs::write(&request, SWEEP_REQUEST).unwrap();
    let dir_arg = dir.to_str().unwrap();

    // Process 1 populates the tier; process 2 (a brand-new OS process) must
    // return byte-identical rows without appending a single byte.
    let first = msfu_run(&request, &["--serial", "--cache-dir", dir_arg]);
    let bytes_after_first = segment_bytes(&dir);
    assert!(bytes_after_first > 0, "first process must persist");
    let second = msfu_run(&request, &["--serial", "--cache-dir", dir_arg]);
    assert_eq!(first, second, "disk-served rows must be byte-identical");
    assert_eq!(
        segment_bytes(&dir),
        bytes_after_first,
        "second process simulated (and appended) instead of reading the tier"
    );

    // A `--workers 2` cluster session against the same directory: the
    // coordinator fans the cache dir out to every worker shard, so the
    // cluster warm-starts from the serial runs and the merged rows stay
    // byte-identical.
    let clustered = msfu_run(&request, &["--workers", "2", "--cache-dir", dir_arg]);
    assert_eq!(first, clustered, "cluster rows must be byte-identical");
    assert_eq!(
        segment_bytes(&dir),
        bytes_after_first,
        "warm cluster workers appended instead of reading the tier"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&request);
}
