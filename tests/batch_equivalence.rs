//! Differential test: every lane of a [`msfu::sim::BatchEngine`] batch must
//! produce a byte-identical [`msfu::sim::SimResult`] to a solo
//! [`msfu::sim::SimEngine`] run of the same circuit and layout — same cycles,
//! same per-gate timings, same stall statistics, same routing-conflict counts
//! — across a seeded grid of factory configurations, mapping strategies and
//! routing policies.
//!
//! ONE batch engine is reused for every group, so the suite also proves the
//! lane arenas carry no state from one batch into the next. Edge cases ride
//! along: a single-lane batch, a batch where every lane aborts on the cycle
//! limit, a batch where only one lane aborts, and duplicate sweep points that
//! share a single lane through the evaluation cache. A final sweep-level test
//! pins lanes-on/off × serial/parallel row equality.

use std::collections::BTreeMap;

use msfu::core::{EvaluationConfig, Strategy, SweepSpec};
use msfu::distill::{Factory, FactoryConfig, ReusePolicy};
use msfu::layout::{ForceDirectedConfig, Layout, StitchingConfig};
use msfu::sim::{BatchEngine, BatchLane, SimConfig, SimEngine, SimError};

/// A cheap force-directed configuration so the sweep stays fast.
fn cheap_fd(seed: u64) -> Strategy {
    Strategy::force_directed(ForceDirectedConfig {
        seed,
        iterations: 4,
        repulsion_sample: 500,
        ..ForceDirectedConfig::default()
    })
}

/// The strategy line-up for one seed: the stochastic mappers are perturbed
/// by the seed, the deterministic ones repeat (and must still batch cleanly).
fn seeded_strategies(seed: u64) -> Vec<Strategy> {
    vec![
        Strategy::random(seed),
        Strategy::linear(),
        cheap_fd(seed),
        Strategy::graph_partition(seed),
        Strategy::hierarchical_stitching(StitchingConfig {
            seed,
            ..StitchingConfig::default()
        }),
    ]
}

/// Runs the full seeded grid — 2 shapes × 2 reuse policies × 3 seeds × 5
/// strategies = 60 configs — through ONE reused [`BatchEngine`], batching
/// lane-compatible layouts (same factory circuit, same grid dimensions)
/// together, and asserts each lane byte-identical to a solo [`SimEngine`]
/// run. Port-rewired layouts (hierarchical stitching) simulate a different
/// effective circuit, so each runs as its own single-lane batch — which also
/// exercises the K=1 path.
fn assert_lanes_match_solo(sim: SimConfig) {
    let mut batch = BatchEngine::new(sim);
    let mut solo = SimEngine::new(sim);
    let mut lanes_checked = 0usize;
    let mut multi_lane_batches = 0usize;
    for base in [FactoryConfig::single_level(4), FactoryConfig::two_level(2)] {
        for policy in [ReusePolicy::Reuse, ReusePolicy::NoReuse] {
            let config = base.with_reuse(policy);
            let factory = Factory::build(&config).unwrap();
            // Group lane-compatible layouts: same (shared) circuit, same grid
            // dimensions. Rewired layouts go to their own single-lane batch
            // against the effective factory's circuit.
            let mut groups: BTreeMap<(usize, usize), Vec<Layout>> = BTreeMap::new();
            let mut rewired: Vec<(Factory, Layout)> = Vec::new();
            for seed in 1..=3u64 {
                for strategy in seeded_strategies(seed) {
                    let layout = strategy.map(&factory).unwrap();
                    if layout.requires_port_rewiring() {
                        let effective = factory.apply_port_assignment(&layout.ports).unwrap();
                        rewired.push((effective, layout));
                    } else {
                        let dims = (layout.mapping.width(), layout.mapping.height());
                        groups.entry(dims).or_default().push(layout);
                    }
                }
            }
            for ((w, h), layouts) in &groups {
                let lanes: Vec<BatchLane<'_>> = layouts.iter().map(BatchLane::new).collect();
                if lanes.len() > 1 {
                    multi_lane_batches += 1;
                }
                let results = batch.run(factory.circuit(), &lanes).unwrap();
                assert_eq!(results.len(), layouts.len());
                for (layout, got) in layouts.iter().zip(results) {
                    let expect = solo.run(factory.circuit(), layout).unwrap();
                    assert_eq!(
                        got.as_ref().expect("grid lanes all complete"),
                        &expect,
                        "{config:?} lane on {w}x{h} grid diverged ({:?} routing)",
                        sim.routing,
                    );
                    lanes_checked += 1;
                }
            }
            for (effective, layout) in &rewired {
                let results = batch
                    .run(effective.circuit(), &[BatchLane::new(layout)])
                    .unwrap();
                let expect = solo.run(effective.circuit(), layout).unwrap();
                assert_eq!(
                    results[0].as_ref().expect("rewired lane completes"),
                    &expect,
                    "{config:?} rewired single-lane batch diverged",
                );
                lanes_checked += 1;
            }
        }
    }
    assert!(
        lanes_checked >= 40,
        "the grid must cover at least 40 lane comparisons, got {lanes_checked}"
    );
    assert!(
        multi_lane_batches > 0,
        "at least one batch must actually share the event wheel"
    );
}

#[test]
fn batched_lanes_match_solo_engine_dimension_ordered() {
    assert_lanes_match_solo(SimConfig::dimension_ordered());
}

#[test]
fn batched_lanes_match_solo_engine_adaptive() {
    assert_lanes_match_solo(SimConfig::default());
}

/// Builds one factory and two lane-compatible random placements of distinct
/// quality: the fastest and slowest among a seed scan that share one grid
/// dimension. A cycle limit wedged between their latencies aborts only the
/// slow lane.
fn contrasting_layouts() -> (Factory, Layout, Layout, u64, u64) {
    let factory = Factory::build(&FactoryConfig::single_level(4)).unwrap();
    let mut solo = SimEngine::default();
    let reference_dims = {
        let l = Strategy::random(1).map(&factory).unwrap();
        (l.mapping.width(), l.mapping.height())
    };
    let mut candidates: Vec<(Layout, u64)> = Vec::new();
    for seed in 1..=16u64 {
        let layout = Strategy::random(seed).map(&factory).unwrap();
        if (layout.mapping.width(), layout.mapping.height()) != reference_dims {
            continue;
        }
        let cycles = solo.run(factory.circuit(), &layout).unwrap().cycles;
        candidates.push((layout, cycles));
    }
    let (good, good_cycles) = candidates.iter().min_by_key(|(_, c)| *c).unwrap().clone();
    let (bad, bad_cycles) = candidates.iter().max_by_key(|(_, c)| *c).unwrap().clone();
    assert!(
        bad_cycles > good_cycles,
        "seed scan found no latency contrast ({good_cycles} vs {bad_cycles})"
    );
    (factory, good, bad, good_cycles, bad_cycles)
}

#[test]
fn cycle_limit_aborts_one_lane_without_disturbing_the_others() {
    let (factory, good, bad, good_cycles, bad_cycles) = contrasting_layouts();
    // A limit between the two latencies kills exactly the bad lane.
    let limit = (good_cycles + bad_cycles) / 2;
    let sim = SimConfig::default().with_cycle_limit(limit);
    let mut batch = BatchEngine::new(sim);
    let lanes = [BatchLane::new(&good), BatchLane::new(&bad)];
    let results = batch.run(factory.circuit(), &lanes).unwrap();
    // The surviving lane is byte-identical to its solo run under the same
    // limit; the aborted lane reports exactly the solo engine's error.
    let mut solo = SimEngine::new(sim);
    let expect_good = solo.run(factory.circuit(), &good).unwrap();
    assert_eq!(results[0].as_ref().unwrap(), &expect_good);
    let got_err = results[1].as_ref().expect_err("bad lane must abort");
    let solo_err = solo
        .run(factory.circuit(), &bad)
        .expect_err("solo bad run must abort");
    assert_eq!(got_err, &solo_err);
    assert!(matches!(got_err, SimError::CycleLimitExceeded { .. }));
}

#[test]
fn all_lanes_can_abort_on_the_cycle_limit() {
    let (factory, good, bad, good_cycles, _) = contrasting_layouts();
    // A limit below the best lane kills every lane.
    let sim = SimConfig::default().with_cycle_limit(good_cycles / 2);
    let mut batch = BatchEngine::new(sim);
    let lanes = [BatchLane::new(&good), BatchLane::new(&bad)];
    let results = batch.run(factory.circuit(), &lanes).unwrap();
    let mut solo = SimEngine::new(sim);
    for (layout, got) in [&good, &bad].into_iter().zip(&results) {
        let solo_err = solo.run(factory.circuit(), layout).expect_err("must abort");
        assert_eq!(got.as_ref().expect_err("lane must abort"), &solo_err);
    }
}

/// The fixture sweep for the lane-width equality tests: two factory shapes ×
/// both reuse policies × the five-strategy line-up, plus deliberate duplicate
/// points so the cache path is exercised in every mode.
fn fixture_spec() -> SweepSpec {
    let factories = [
        FactoryConfig::single_level(4),
        FactoryConfig::single_level(4).with_reuse(ReusePolicy::NoReuse),
        FactoryConfig::two_level(2),
    ];
    let mut spec = SweepSpec::new("batch-equivalence", EvaluationConfig::default()).grid(
        "grid",
        &factories,
        |_| seeded_strategies(7),
    );
    // Duplicates: identical (factory, strategy) pairs under another label.
    spec = spec.point("dup", FactoryConfig::single_level(4), Strategy::linear());
    spec.point("dup", FactoryConfig::single_level(4), Strategy::linear())
}

#[test]
fn sweep_rows_are_identical_across_lane_widths_and_run_modes() {
    let ctrl = msfu::core::RunControl::default();
    let reference = fixture_spec().with_lanes(0).run_serial_with(&ctrl).unwrap();
    assert!(!reference.results.rows.is_empty());
    for lanes in [0usize, 1, 2, 8] {
        let spec = fixture_spec().with_lanes(lanes);
        let parallel = spec.run_with(&ctrl).unwrap();
        let serial = spec.run_serial_with(&ctrl).unwrap();
        assert_eq!(
            parallel.results, reference.results,
            "parallel rows diverged at lanes={lanes}"
        );
        assert_eq!(
            serial.results, reference.results,
            "serial rows diverged at lanes={lanes}"
        );
    }
}

#[test]
fn duplicate_points_are_deduped_by_the_eval_cache_not_a_lane() {
    // With batching on and the cache on, a batch of identical configs costs
    // one simulation: the first occurrence takes a lane, the rest are cache
    // hits and never occupy one.
    let spec = SweepSpec::new("dups", EvaluationConfig::default())
        .point("a", FactoryConfig::single_level(4), Strategy::linear())
        .point("b", FactoryConfig::single_level(4), Strategy::linear())
        .point("c", FactoryConfig::single_level(4), Strategy::linear())
        .point("d", FactoryConfig::single_level(4), Strategy::linear())
        .with_lanes(8);
    let outcome = spec
        .run_serial_with(&msfu::core::RunControl::default())
        .unwrap();
    assert_eq!(outcome.results.rows.len(), 4);
    let evals: Vec<_> = outcome.results.rows.iter().map(|r| &r.evaluation).collect();
    assert!(evals.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(outcome.batch.points_from_cache, 3, "three cache-hit points");
    assert_eq!(
        outcome.batch.points_batched + outcome.batch.points_solo,
        1,
        "exactly one point consumed a simulation"
    );
}
