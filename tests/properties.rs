//! Randomised property tests over the core data structures and invariants of
//! the toolchain: factory structure, mapping validity, schedule legality,
//! simulator bounds and the error model.
//!
//! The build environment cannot fetch `proptest`, so these use a small seeded
//! generator loop instead: every property is checked over a deterministic
//! sample of randomly drawn inputs (no shrinking, but failures print the
//! offending input).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use msfu::circuit::{LatencyModel, Schedule};
use msfu::distill::{error_model, Factory, FactoryConfig, ReusePolicy};
use msfu::graph::{correlation, InteractionGraph};
use msfu::layout::{FactoryMapper, GraphPartitionMapper, LinearMapper, RandomMapper};
use msfu::sim::{SimConfig, Simulator};

/// Number of random cases per property (kept close to the old proptest
/// configuration).
const CASES: usize = 24;

/// Draws a small factory configuration that builds quickly.
fn small_factory_config(rng: &mut ChaCha8Rng) -> FactoryConfig {
    let k = rng.gen_range(1usize..7);
    let levels = rng.gen_range(1usize..3);
    let reuse = if rng.gen::<bool>() {
        ReusePolicy::Reuse
    } else {
        ReusePolicy::NoReuse
    };
    FactoryConfig::new(k, levels)
        .with_reuse(reuse)
        .with_barriers(rng.gen::<bool>())
}

#[test]
fn factory_structure_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for case in 0..CASES {
        let config = small_factory_config(&mut rng);
        let factory = Factory::build(&config).unwrap();
        // Capacity and output count agree.
        assert_eq!(
            factory.final_outputs().len(),
            config.capacity(),
            "case {case}: {config:?}"
        );
        // Modules per round follow the block-code recursion.
        for (r, round) in factory.rounds().iter().enumerate() {
            assert_eq!(
                round.num_modules(),
                config.modules_in_round(r),
                "{config:?}"
            );
        }
        // Every permutation edge connects adjacent rounds and every
        // destination module receives distinct sources.
        let mut per_dest: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            Default::default();
        for e in factory.permutation_edges() {
            let src_round = factory.modules()[e.source_module].round;
            let dst_round = factory.modules()[e.dest_module].round;
            assert_eq!(dst_round, src_round + 1, "{config:?}");
            assert!(
                per_dest
                    .entry(e.dest_module)
                    .or_default()
                    .insert(e.source_module),
                "{config:?}: duplicate source into destination module"
            );
        }
        // The circuit references only allocated qubits (validated on push),
        // and its gate count is the sum of the module gate counts plus
        // barriers.
        let barrier_count = factory
            .rounds()
            .iter()
            .filter(|r| r.barrier_gate.is_some())
            .count();
        let module_gates: usize = factory.modules().iter().map(|m| m.gate_range.len()).sum();
        assert_eq!(
            factory.circuit().num_gates(),
            module_gates + barrier_count,
            "{config:?}"
        );
    }
}

#[test]
fn mappings_are_always_injective_and_complete() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for case in 0..CASES {
        let config = small_factory_config(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let factory = Factory::build(&config).unwrap();
        let mappers: Vec<Box<dyn FactoryMapper>> = vec![
            Box::new(LinearMapper::new()),
            Box::new(RandomMapper::new(seed)),
            Box::new(GraphPartitionMapper::new(seed)),
        ];
        for mapper in mappers {
            let layout = mapper.map_factory(&factory).unwrap();
            assert!(layout.mapping.is_complete(), "case {case}: {config:?}");
            let mut seen = std::collections::HashSet::new();
            for q in 0..factory.num_qubits() as u32 {
                let pos = layout
                    .mapping
                    .position(msfu::circuit::QubitId::new(q))
                    .unwrap();
                assert!(
                    seen.insert(pos),
                    "two qubits share cell {} under {} ({config:?})",
                    pos,
                    mapper.name()
                );
                assert!(pos.row < layout.mapping.height());
                assert!(pos.col < layout.mapping.width());
            }
        }
    }
}

#[test]
fn asap_schedules_respect_dependencies() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let config = small_factory_config(&mut rng);
        let factory = Factory::build(&config).unwrap();
        let circuit = factory.circuit();
        let schedule = Schedule::asap(circuit);
        assert_eq!(schedule.num_gates(), circuit.num_gates(), "{config:?}");
        // Gates sharing a qubit never share a timestep.
        for step in schedule.steps() {
            let mut used: std::collections::HashSet<u32> = Default::default();
            for g in step.gates() {
                for q in circuit.gate(*g).qubits() {
                    assert!(
                        used.insert(q.raw()),
                        "qubit reused within a timestep ({config:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn simulated_latency_is_bounded_by_critical_path_and_serial_sum() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let k = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..500);
        let factory = Factory::build(&FactoryConfig::single_level(k)).unwrap();
        let layout = random_slack_layout(seed, &factory);
        let config = SimConfig::default();
        let result = Simulator::new(config)
            .run(factory.circuit(), &layout)
            .unwrap();
        let model = LatencyModel::default();
        let critical = factory.circuit().critical_path_cycles(&model);
        let serial: u64 = factory
            .circuit()
            .gates()
            .iter()
            .map(|g| model.cycles(g))
            .sum();
        assert!(result.cycles >= critical, "k={k} seed={seed}");
        assert!(
            result.cycles <= serial,
            "latency {} exceeds fully serial execution {} (k={k} seed={seed})",
            result.cycles,
            serial
        );
        assert_eq!(result.volume(), result.cycles * result.area as u64);
    }
}

/// Random layout with routing slack, as used by the Fig. 6 study.
fn random_slack_layout(seed: u64, factory: &Factory) -> msfu::layout::Layout {
    msfu::layout::Layout::new(
        RandomMapper::new(seed)
            .with_expansion(1.3)
            .map_qubits(factory.num_qubits())
            .unwrap(),
    )
}

#[test]
fn error_model_monotonicity() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let k = rng.gen_range(1usize..21);
        let eps = rng.gen_range(1e-6f64..5e-3);
        let out = error_model::output_error(k, eps);
        assert!(
            out <= eps,
            "distillation must not worsen sub-threshold states"
        );
        assert!(out >= 0.0);
        let two = error_model::error_after_levels(k, 2, eps);
        assert!(two <= out);
        let p = error_model::success_probability(k, eps);
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn pearson_correlation_is_symmetric_and_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..50);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0f64..1000.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0f64..1000.0)).collect();
        if let Some(r) = correlation::pearson(&xs, &ys) {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r_swapped = correlation::pearson(&ys, &xs).unwrap();
            assert!((r - r_swapped).abs() < 1e-9);
        }
    }
}

#[test]
fn interaction_graph_weights_match_braid_count() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..CASES {
        let config = small_factory_config(&mut rng);
        let factory = Factory::build(&config).unwrap();
        let graph = InteractionGraph::from_circuit(factory.circuit());
        let total_weight: f64 = graph.total_edge_weight();
        assert_eq!(
            total_weight as usize,
            factory.circuit().braid_count(),
            "{config:?}"
        );
        assert_eq!(graph.num_vertices(), factory.num_qubits());
    }
}
