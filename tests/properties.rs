//! Property-based tests (proptest) over the core data structures and
//! invariants of the toolchain: factory structure, mapping validity, schedule
//! legality, simulator bounds and the error model.

use proptest::prelude::*;

use msfu::circuit::{LatencyModel, Schedule};
use msfu::distill::{error_model, Factory, FactoryConfig, ReusePolicy};
use msfu::graph::{correlation, InteractionGraph};
use msfu::layout::{FactoryMapper, GraphPartitionMapper, LinearMapper, RandomMapper};
use msfu::sim::{SimConfig, Simulator};

/// Strategy for small factory configurations that build quickly.
fn small_factory_config() -> impl Strategy<Value = FactoryConfig> {
    (1usize..=6, 1usize..=2, prop::bool::ANY, prop::bool::ANY).prop_map(
        |(k, levels, reuse, barriers)| {
            FactoryConfig::new(k, levels)
                .with_reuse(if reuse { ReusePolicy::Reuse } else { ReusePolicy::NoReuse })
                .with_barriers(barriers)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn factory_structure_invariants(config in small_factory_config()) {
        let factory = Factory::build(&config).unwrap();
        // Capacity and output count agree.
        prop_assert_eq!(factory.final_outputs().len(), config.capacity());
        // Modules per round follow the block-code recursion.
        for (r, round) in factory.rounds().iter().enumerate() {
            prop_assert_eq!(round.num_modules(), config.modules_in_round(r));
        }
        // Every permutation edge connects adjacent rounds and every
        // destination module receives distinct sources.
        let mut per_dest: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            Default::default();
        for e in factory.permutation_edges() {
            let src_round = factory.modules()[e.source_module].round;
            let dst_round = factory.modules()[e.dest_module].round;
            prop_assert_eq!(dst_round, src_round + 1);
            prop_assert!(per_dest.entry(e.dest_module).or_default().insert(e.source_module));
        }
        // The circuit references only allocated qubits (validated on push),
        // and its gate count is the sum of the module gate counts plus
        // barriers.
        let barrier_count = factory.rounds().iter().filter(|r| r.barrier_gate.is_some()).count();
        let module_gates: usize = factory.modules().iter().map(|m| m.gate_range.len()).collect::<Vec<_>>().iter().sum();
        prop_assert_eq!(factory.circuit().num_gates(), module_gates + barrier_count);
    }

    #[test]
    fn mappings_are_always_injective_and_complete(
        config in small_factory_config(),
        seed in 0u64..1000,
    ) {
        let factory = Factory::build(&config).unwrap();
        let mappers: Vec<Box<dyn FactoryMapper>> = vec![
            Box::new(LinearMapper::new()),
            Box::new(RandomMapper::new(seed)),
            Box::new(GraphPartitionMapper::new(seed)),
        ];
        for mapper in mappers {
            let layout = mapper.map_factory(&factory).unwrap();
            prop_assert!(layout.mapping.is_complete());
            let mut seen = std::collections::HashSet::new();
            for q in 0..factory.num_qubits() as u32 {
                let pos = layout.mapping.position(msfu::circuit::QubitId::new(q)).unwrap();
                prop_assert!(seen.insert(pos), "two qubits share cell {} under {}", pos, mapper.name());
                prop_assert!(pos.row < layout.mapping.height());
                prop_assert!(pos.col < layout.mapping.width());
            }
        }
    }

    #[test]
    fn asap_schedules_respect_dependencies(config in small_factory_config()) {
        let factory = Factory::build(&config).unwrap();
        let circuit = factory.circuit();
        let schedule = Schedule::asap(circuit);
        prop_assert_eq!(schedule.num_gates(), circuit.num_gates());
        // Gates sharing a qubit never share a timestep.
        for step in schedule.steps() {
            let mut used: std::collections::HashSet<u32> = Default::default();
            for g in step.gates() {
                for q in circuit.gate(*g).qubits() {
                    prop_assert!(used.insert(q.raw()), "qubit reused within a timestep");
                }
            }
        }
    }

    #[test]
    fn simulated_latency_is_bounded_by_critical_path_and_serial_sum(
        k in 1usize..=4,
        seed in 0u64..500,
    ) {
        let factory = Factory::build(&FactoryConfig::single_level(k)).unwrap();
        let layout = RandomMapper::new(seed).with_expansion(1.3).map_factory(&factory).unwrap();
        let config = SimConfig::default();
        let result = Simulator::new(config).run(factory.circuit(), &layout).unwrap();
        let model = LatencyModel::default();
        let critical = factory.circuit().critical_path_cycles(&model);
        let serial: u64 = factory.circuit().gates().iter().map(|g| model.cycles(g)).sum();
        prop_assert!(result.cycles >= critical);
        prop_assert!(result.cycles <= serial, "latency {} exceeds fully serial execution {}", result.cycles, serial);
        prop_assert_eq!(result.volume(), result.cycles * result.area as u64);
    }

    #[test]
    fn error_model_monotonicity(k in 1usize..=20, eps in 1e-6f64..5e-3) {
        let out = error_model::output_error(k, eps);
        prop_assert!(out <= eps, "distillation must not worsen sub-threshold states");
        prop_assert!(out >= 0.0);
        let two = error_model::error_after_levels(k, 2, eps);
        prop_assert!(two <= out);
        let p = error_model::success_probability(k, eps);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn pearson_correlation_is_symmetric_and_bounded(
        data in prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 3..50)
    ) {
        let xs: Vec<f64> = data.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = data.iter().map(|(_, y)| *y).collect();
        if let Some(r) = correlation::pearson(&xs, &ys) {
            prop_assert!(r >= -1.0 - 1e-9 && r <= 1.0 + 1e-9);
            let r_swapped = correlation::pearson(&ys, &xs).unwrap();
            prop_assert!((r - r_swapped).abs() < 1e-9);
        }
    }

    #[test]
    fn interaction_graph_weights_match_braid_count(config in small_factory_config()) {
        let factory = Factory::build(&config).unwrap();
        let graph = InteractionGraph::from_circuit(factory.circuit());
        let total_weight: f64 = graph.total_edge_weight();
        prop_assert_eq!(total_weight as usize, factory.circuit().braid_count());
        prop_assert_eq!(graph.num_vertices(), factory.num_qubits());
    }
}
