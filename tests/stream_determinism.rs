//! Integration tests of the streaming workload path: the checked-in quick
//! spec must run byte-identically through the service façade, reproduce the
//! direct `StreamSpec::run` report exactly, and keep the scheduler line-up
//! distinguishable on the gated metrics (the whole point of comparing
//! schedulers under one traffic trace).

use msfu::core::{NoProgress, StreamReport, StreamSpec};
use msfu::service::{JobHandle, Payload, Request, Service};

fn checked_in_spec() -> StreamSpec {
    let text = std::fs::read_to_string("benches/specs/stream_quick.json")
        .expect("spec file is checked in");
    StreamSpec::from_json(&text).unwrap()
}

fn run_through_service(spec: &StreamSpec) -> StreamReport {
    let request = Request::stream(spec.name.clone(), spec.clone());
    let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
    match response.result {
        Ok(Payload::Stream(report)) => *report,
        other => panic!("expected a stream payload, got {other:?}"),
    }
}

#[test]
fn service_runs_of_the_checked_in_spec_are_byte_identical() {
    let spec = checked_in_spec();
    let first = run_through_service(&spec);
    let second = run_through_service(&spec);
    assert_eq!(first, second);
    assert_eq!(
        serde_json::to_string_pretty(&first).unwrap(),
        serde_json::to_string_pretty(&second).unwrap(),
    );
}

#[test]
fn service_path_matches_direct_run() {
    let spec = checked_in_spec();
    let direct = spec.clone().run().unwrap();
    let served = run_through_service(&spec);
    assert_eq!(served, direct);
}

#[test]
fn quick_spec_schedulers_stay_distinguishable_on_gated_metrics() {
    let report = checked_in_spec().run().unwrap();
    let gated: Vec<(&str, (u64, u64, u64))> = report
        .runs
        .iter()
        .map(|r| {
            (
                r.scheduler.as_str(),
                (
                    r.latency_p50,
                    r.latency_p99,
                    r.completed * 1_000_000 / r.makespan_cycles.max(1),
                ),
            )
        })
        .collect();
    for (name, _) in &gated {
        assert!(
            ["fifo", "priority", "capacity_aware", "reuse_aware"].contains(name),
            "unexpected scheduler `{name}` in the quick spec"
        );
    }
    for i in 0..gated.len() {
        for j in (i + 1)..gated.len() {
            assert_ne!(
                gated[i].1, gated[j].1,
                "schedulers `{}` and `{}` produced identical gated rows — \
                 retune benches/specs/stream_quick.json",
                gated[i].0, gated[j].0
            );
        }
    }
}
