//! Supervised-cluster robustness: under any declared fault plan — worker
//! crashes, sticky stalls, respawned replacements, even losing the whole
//! pool — a sharded sweep or search must return rows byte-identical to a
//! serial run, with `perf.cluster` the only field allowed to differ.

use msfu::service::{serve, FaultPlan, ServeOptions};
use serde_json::Value;

const SWEEP_LINE: &str = concat!(
    r#"{"protocol_version": 1, "id": "j", "kind": "sweep", "sweep": {"name": "m", "points": ["#,
    r#"{"label": "p0", "factory": {"k": 2}, "strategy": {"strategy": "linear"}},"#,
    r#"{"label": "p1", "factory": {"k": 2}, "strategy": {"strategy": "random", "seed": 1}},"#,
    r#"{"label": "p2", "factory": {"k": 3}, "strategy": {"strategy": "random", "seed": 2}},"#,
    r#"{"label": "p3", "factory": {"k": 2, "reuse": "NR"}, "strategy": {"strategy": "linear"}},"#,
    r#"{"label": "p4", "factory": {"k": 2}, "strategy": {"strategy": "graph_partition", "seed": 3}},"#,
    r#"{"label": "p5", "factory": {"k": 3}, "strategy": {"strategy": "linear"}},"#,
    r#"{"label": "p6", "factory": {"k": 2}, "strategy": {"strategy": "random", "seed": 4}},"#,
    r#"{"label": "p7", "factory": {"k": 3}, "strategy": {"strategy": "random", "seed": 5}}]}}"#,
    "\n",
);

const SEARCH_LINE: &str = concat!(
    r#"{"protocol_version": 1, "id": "s", "kind": "search", "search": {"#,
    r#""name": "srch", "factory": {"k": 2}, "budget": 10, "batch_size": 4, "seed": 7,"#,
    r#""portfolio": [{"strategy": {"strategy": "random"}, "seeded": true},"#,
    r#"{"strategy": {"strategy": "linear"}, "seeded": false}]}}"#,
    "\n",
);

/// Runs one serve session over the given line and returns the response with
/// the given id.
fn response(options: &ServeOptions, line: &str, id: &str) -> Value {
    let mut output: Vec<u8> = Vec::new();
    let input = std::io::Cursor::new(line.to_string().into_bytes());
    serve(input, &mut output, options).unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("output lines are JSON"))
        .find(|v: &Value| {
            v.get("type").and_then(Value::as_str) == Some("response")
                && v.get("id").and_then(Value::as_str) == Some(id)
        })
        .expect("session produced the response")
}

/// Everything that must be byte-identical between serial and supervised
/// execution: the full response minus the perf stamp.
fn stable_fields(response: &Value) -> String {
    let stripped: Vec<(String, Value)> = match response {
        Value::Object(entries) => entries
            .iter()
            .filter(|(k, _)| k != "perf")
            .cloned()
            .collect(),
        _ => panic!("responses are objects"),
    };
    serde_json::to_string(&Value::Object(stripped)).unwrap()
}

fn cluster_counter(response: &Value, key: &str) -> u64 {
    match response
        .get("perf")
        .and_then(|p| p.get("cluster"))
        .and_then(|c| c.get(key))
    {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) => u64::try_from(*n).unwrap(),
        other => panic!("perf.cluster.{key} missing or non-integer: {other:?}"),
    }
}

/// One cell of the fault matrix: plan factory + the counter that proves the
/// intended recovery path actually ran (asserted on the sweep job, whose
/// response carries the perf.cluster stamp).
struct FaultCell {
    name: &'static str,
    plan: fn(usize) -> Option<FaultPlan>,
    max_respawns: Option<u32>,
    shard_timeout_ms: Option<u64>,
    proof_counter: Option<&'static str>,
}

const MATRIX: &[FaultCell] = &[
    FaultCell {
        name: "none",
        plan: |_| None,
        max_respawns: Some(0),
        shard_timeout_ms: None,
        proof_counter: None,
    },
    FaultCell {
        name: "crash",
        plan: |_| Some(FaultPlan::default().with_crash(1, 0)),
        max_respawns: Some(0),
        shard_timeout_ms: None,
        proof_counter: Some("shards_retried"),
    },
    FaultCell {
        name: "stall",
        plan: |_| Some(FaultPlan::default().with_stall(1, 0, 60_000)),
        max_respawns: Some(0),
        shard_timeout_ms: Some(200),
        proof_counter: Some("shards_retried"),
    },
    FaultCell {
        name: "crash+respawn",
        plan: |_| Some(FaultPlan::default().with_crash(1, 0)),
        max_respawns: None, // default budget: the dead worker is replaced
        shard_timeout_ms: None,
        proof_counter: Some("workers_respawned"),
    },
    FaultCell {
        name: "pool-loss",
        plan: |workers| {
            Some(
                (0..workers).fold(FaultPlan::default().with_seed(7), |plan, rank| {
                    plan.with_crash(rank, 0)
                }),
            )
        },
        max_respawns: Some(0),
        shard_timeout_ms: None,
        proof_counter: Some("shards_local_fallback"),
    },
];

fn options_for(cell: &FaultCell, workers: usize) -> ServeOptions {
    let mut options = ServeOptions::new().with_workers(workers);
    if let Some(plan) = (cell.plan)(workers) {
        options = options.with_fault_plan(plan);
    }
    if let Some(budget) = cell.max_respawns {
        options = options.with_max_respawns(budget);
    }
    if let Some(ms) = cell.shard_timeout_ms {
        options = options.with_shard_timeout_ms(ms);
    }
    options
}

#[test]
fn sweeps_survive_every_fault_plan_byte_identically() {
    let reference = stable_fields(&response(&ServeOptions::new(), SWEEP_LINE, "j"));
    assert!(reference.contains(r#""status":"ok""#), "{reference}");
    for workers in [2usize, 4] {
        for cell in MATRIX {
            let got = response(&options_for(cell, workers), SWEEP_LINE, "j");
            assert_eq!(
                stable_fields(&got),
                reference,
                "plan `{}` at {workers} workers changed the rows",
                cell.name
            );
            if let Some(counter) = cell.proof_counter {
                assert!(
                    cluster_counter(&got, counter) >= 1,
                    "plan `{}` at {workers} workers: {counter} stayed zero, the \
                     recovery path under test never ran",
                    cell.name
                );
            }
        }
    }
}

#[test]
fn searches_survive_every_fault_plan_byte_identically() {
    let reference = stable_fields(&response(&ServeOptions::new(), SEARCH_LINE, "s"));
    assert!(reference.contains(r#""incumbent""#), "{reference}");
    for workers in [2usize, 4] {
        for cell in MATRIX {
            let got = response(&options_for(cell, workers), SEARCH_LINE, "s");
            assert_eq!(
                stable_fields(&got),
                reference,
                "plan `{}` at {workers} workers changed the search report",
                cell.name
            );
        }
    }
}
