//! Simulator edge cases: degenerate circuits and meshes, and a fully
//! contended braid network, exercised through both the event-driven engine
//! and the reference implementation.

use msfu::circuit::{CircuitBuilder, LatencyModel, QubitId, QubitRole};
use msfu::distill::{Factory, FactoryConfig};
use msfu::layout::{Coord, FactoryMapper, Layout, LinearMapper, Mapping};
use msfu::sim::{reference, SimConfig, SimEngine, SimError};

/// A zero-qubit (hence zero-gate) circuit simulates in zero cycles on any
/// non-empty mesh, under both engines.
#[test]
fn zero_qubit_circuit_is_trivial() {
    let circuit = CircuitBuilder::new("nothing").build();
    assert_eq!(circuit.num_qubits(), 0);
    let layout = Layout::new(Mapping::new(0, 3, 3));
    let config = SimConfig::default();
    let fast = SimEngine::new(config).run(&circuit, &layout).unwrap();
    let slow = reference::run(&config, &circuit, &layout).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.cycles, 0);
    assert_eq!(fast.volume(), 0);
    assert!(fast.timings.is_empty());
}

/// A zero-area mesh is an error even for an empty circuit.
#[test]
fn empty_grid_is_an_error_for_both_engines() {
    let circuit = CircuitBuilder::new("nothing").build();
    let layout = Layout::new(Mapping::new(0, 0, 0));
    let config = SimConfig::default();
    assert!(matches!(
        SimEngine::new(config).run(&circuit, &layout),
        Err(SimError::EmptyGrid)
    ));
    assert!(matches!(
        reference::run(&config, &circuit, &layout),
        Err(SimError::EmptyGrid)
    ));
}

/// The smallest possible factory — a single module — builds, maps and
/// simulates, and both engines agree on the result.
#[test]
fn single_module_factory_simulates() {
    let factory = Factory::build(&FactoryConfig::single_level(1)).unwrap();
    let layout = LinearMapper::new().map_factory(&factory).unwrap();
    let config = SimConfig::default();
    let fast = SimEngine::new(config)
        .run(factory.circuit(), &layout)
        .unwrap();
    let slow = reference::run(&config, factory.circuit(), &layout).unwrap();
    assert_eq!(fast, slow);
    assert!(fast.cycles >= factory.circuit().critical_path_cycles(&config.latency));
    assert!(fast.cycles > 0);
}

/// Fully contended braid network: qubits on one row, every CNOT's L-path
/// crosses the shared corridor, so the braids serialise completely under
/// dimension-ordered routing. The realised latency must be the full serial
/// sum, every gate but the first must stall, and both engines must agree.
#[test]
fn fully_contended_network_serialises_completely() {
    let n = 8u32;
    let mut b = CircuitBuilder::new("contended");
    let q = b.register("q", QubitRole::Data, n as usize);
    // Nested spans sharing the central cells: (0,7), (1,6), (2,5), (3,4).
    for i in 0..n / 2 {
        b.cnot(q[i as usize], q[(n - 1 - i) as usize]).unwrap();
    }
    let circuit = b.build();
    let mut m = Mapping::new(n as usize, n as usize, 1);
    for i in 0..n {
        m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
    }
    let layout = Layout::new(m);
    let config = SimConfig::dimension_ordered();
    let fast = SimEngine::new(config).run(&circuit, &layout).unwrap();
    let slow = reference::run(&config, &circuit, &layout).unwrap();
    assert_eq!(fast, slow);
    let model = LatencyModel::default();
    let gates = (n / 2) as u64;
    assert_eq!(fast.cycles, gates * model.cnot, "complete serialisation");
    assert_eq!(fast.stalled_gates as u64, gates - 1);
    // Every stalled gate retried (and failed) at least once per stall window.
    assert!(fast.routing_conflicts >= gates - 1);
    assert_eq!(
        fast.stall_cycles,
        (1..gates).map(|k| k * model.cnot).sum::<u64>()
    );
}

/// On a single-cell mesh every gate contends for the same tile: a chain of
/// single-qubit gates on one qubit runs back to back without conflicts.
#[test]
fn single_cell_mesh_runs_a_serial_chain() {
    let mut b = CircuitBuilder::new("one-cell");
    let q = b.register("q", QubitRole::Data, 1);
    for _ in 0..5 {
        b.h(q[0]).unwrap();
    }
    let circuit = b.build();
    let mut m = Mapping::new(1, 1, 1);
    m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
    let layout = Layout::new(m);
    let config = SimConfig::default();
    let fast = SimEngine::new(config).run(&circuit, &layout).unwrap();
    let slow = reference::run(&config, &circuit, &layout).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.cycles, 5 * LatencyModel::default().single_qubit);
    assert_eq!(fast.routing_conflicts, 0);
}

/// A tight cycle limit aborts both engines identically.
#[test]
fn cycle_limit_aborts_both_engines() {
    let mut b = CircuitBuilder::new("long");
    let q = b.register("q", QubitRole::Data, 2);
    for _ in 0..10 {
        b.cnot(q[0], q[1]).unwrap();
    }
    let circuit = b.build();
    let mut m = Mapping::new(2, 2, 1);
    m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
    m.place(QubitId::new(1), Coord::new(0, 1)).unwrap();
    let layout = Layout::new(m);
    let config = SimConfig::default().with_cycle_limit(3);
    assert!(matches!(
        SimEngine::new(config).run(&circuit, &layout),
        Err(SimError::CycleLimitExceeded { limit: 3 })
    ));
    assert!(matches!(
        reference::run(&config, &circuit, &layout),
        Err(SimError::CycleLimitExceeded { limit: 3 })
    ));
}
