//! Determinism guarantees of the parallel sweep engine: a parallel run must
//! produce byte-identical results to the same grid run serially (same seeds →
//! same volumes and latencies), and the shared factory cache must not change
//! any result relative to building every factory fresh.

use std::sync::Mutex;

use msfu::core::{evaluate, EvaluationConfig, Strategy, SweepSpec};
use msfu::distill::{FactoryConfig, ReusePolicy};
use msfu::layout::{ForceDirectedConfig, StitchingConfig};

/// Serialises the tests in this binary: one of them mutates the process
/// environment (RAYON_NUM_THREADS) while the others read it through the sweep
/// engine, and concurrent getenv/setenv is a data race.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A reduced fig10-style grid: both levels, both reuse policies, all five
/// strategy families (FD kept cheap).
fn fig10_style_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("determinism", EvaluationConfig::default()).with_breakdowns();
    let single: Vec<FactoryConfig> = [2usize, 4]
        .iter()
        .flat_map(|&k| {
            [ReusePolicy::Reuse, ReusePolicy::NoReuse]
                .map(|p| FactoryConfig::single_level(k).with_reuse(p))
        })
        .collect();
    let double: Vec<FactoryConfig> = [ReusePolicy::Reuse, ReusePolicy::NoReuse]
        .map(|p| FactoryConfig::two_level(2).with_reuse(p))
        .to_vec();

    let strategies = |c: &FactoryConfig| {
        let mut out = vec![
            Strategy::random(11),
            Strategy::linear(),
            Strategy::force_directed(ForceDirectedConfig {
                seed: 11,
                iterations: 4,
                repulsion_sample: 400,
                ..ForceDirectedConfig::default()
            }),
            Strategy::graph_partition(11),
        ];
        if c.levels > 1 {
            out.push(Strategy::hierarchical_stitching(StitchingConfig {
                seed: 11,
                ..StitchingConfig::default()
            }));
        }
        out
    };
    spec = spec.grid("single", &single, strategies);
    spec.grid("double", &double, strategies)
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let _guard = env_guard();
    // Force real multi-threading even on single-core CI machines so the
    // parallel code path is genuinely exercised. The variable is restored
    // before any assertion can unwind.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let spec = fig10_style_spec();
    let parallel = spec.run().unwrap();
    let serial = spec.run_serial().unwrap();
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(parallel, serial);
    // Byte-identical serialised reports, not just structural equality.
    let parallel_json = serde_json::to_string(&parallel).unwrap();
    let serial_json = serde_json::to_string(&serial).unwrap();
    assert_eq!(parallel_json, serial_json);
    assert_eq!(parallel.rows.len(), spec.points.len());
}

#[test]
fn factory_cache_matches_fresh_builds() {
    let _guard = env_guard();
    // Every distinct FactoryConfig is built once and shared across points;
    // each row must equal an evaluation against a freshly built factory.
    let spec = fig10_style_spec();
    let results = spec.run().unwrap();
    for (point, row) in spec.points.iter().zip(&results.rows) {
        let fresh = evaluate(&point.factory, &point.strategy, &spec.eval).unwrap();
        assert_eq!(
            row.evaluation,
            fresh,
            "cached factory diverged from fresh build for {:?} / {}",
            point.factory,
            point.strategy.short_name()
        );
    }
}

#[test]
fn repeated_runs_are_stable() {
    let _guard = env_guard();
    let spec = fig10_style_spec();
    let a = spec.run().unwrap();
    let b = spec.run().unwrap();
    assert_eq!(a, b);
}
