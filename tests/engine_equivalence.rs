//! Differential test: the event-driven [`SimEngine`] must produce
//! byte-identical [`msfu::sim::SimResult`]s to the preserved reference engine
//! (`msfu::sim::reference`) — same cycles, same per-gate timings, same stall
//! statistics, same routing-conflict counts — across a seeded sweep of
//! factory configurations, mapping strategies and routing policies.
//!
//! One engine instance is reused for every run, so the suite also proves the
//! arenas carry no state from one simulation into the next.

use msfu::core::Strategy;
use msfu::distill::{Factory, FactoryConfig, ReusePolicy};
use msfu::layout::{ForceDirectedConfig, StitchingConfig};
use msfu::sim::{reference, SimConfig, SimEngine};

/// A cheap force-directed configuration so the sweep stays fast.
fn cheap_fd(seed: u64) -> Strategy {
    Strategy::force_directed(ForceDirectedConfig {
        seed,
        iterations: 4,
        repulsion_sample: 500,
        ..ForceDirectedConfig::default()
    })
}

/// The seeded configuration grid: every combination of factory shape, reuse
/// policy and strategy family, with the seed perturbing the stochastic
/// mappers. 2 shapes × 2 policies × 5 strategies × 3 seeds = 60 configs.
fn seeded_configs() -> Vec<(FactoryConfig, Strategy)> {
    let mut out = Vec::new();
    for seed in 1..=3u64 {
        for base in [FactoryConfig::single_level(4), FactoryConfig::two_level(2)] {
            for policy in [ReusePolicy::Reuse, ReusePolicy::NoReuse] {
                let config = base.with_reuse(policy);
                for strategy in [
                    Strategy::random(seed),
                    Strategy::linear(),
                    cheap_fd(seed),
                    Strategy::graph_partition(seed),
                    Strategy::hierarchical_stitching(StitchingConfig {
                        seed,
                        ..StitchingConfig::default()
                    }),
                ] {
                    out.push((config, strategy));
                }
            }
        }
    }
    out
}

fn assert_equivalent(sim: SimConfig) {
    let configs = seeded_configs();
    assert!(configs.len() >= 50, "the grid covers at least 50 configs");
    // ONE engine for the whole sweep: arena reuse must not leak state.
    let mut engine = SimEngine::new(sim);
    for (i, (config, strategy)) in configs.iter().enumerate() {
        let factory = Factory::build(config).unwrap();
        let layout = strategy.map(&factory).unwrap();
        let effective = msfu::core::effective_factory(&factory, &layout).unwrap();
        let fast = engine.run(effective.circuit(), &layout).unwrap();
        let slow = reference::run(&sim, effective.circuit(), &layout).unwrap();
        assert_eq!(
            fast,
            slow,
            "config {i}: {:?} under {} diverged ({:?} routing)",
            config,
            strategy.short_name(),
            sim.routing,
        );
    }
}

#[test]
fn event_driven_engine_matches_reference_dimension_ordered() {
    assert_equivalent(SimConfig::dimension_ordered());
}

#[test]
fn event_driven_engine_matches_reference_adaptive() {
    assert_equivalent(SimConfig::default());
}
