//! Integration tests spanning every crate: factory generation → interaction
//! graph → mapping → braid simulation → evaluation, checking the qualitative
//! claims of the paper on small configurations.

use msfu::core::{evaluate, evaluate_factory, pipeline, EvaluationConfig, Strategy};
use msfu::distill::{Factory, FactoryConfig, ReusePolicy};
use msfu::graph::{metrics, planarity, InteractionGraph};
use msfu::layout::{
    FactoryMapper, ForceDirectedConfig, HierarchicalStitchingMapper, LinearMapper, StitchingConfig,
};
use msfu::sim::{SimConfig, Simulator};

fn cheap_fd(seed: u64) -> Strategy {
    Strategy::force_directed(ForceDirectedConfig {
        seed,
        iterations: 6,
        repulsion_sample: 1_000,
        ..ForceDirectedConfig::default()
    })
}

#[test]
fn every_strategy_respects_the_critical_path_bound() {
    let config = FactoryConfig::single_level(4);
    for strategy in [
        Strategy::random(1),
        Strategy::linear(),
        cheap_fd(1),
        Strategy::graph_partition(1),
    ] {
        let eval = evaluate(&config, &strategy, &EvaluationConfig::default()).unwrap();
        assert!(
            eval.latency_cycles >= eval.critical_path_cycles,
            "{} beat the lower bound",
            eval.strategy
        );
        assert!(eval.volume >= eval.critical_volume);
    }
}

#[test]
fn single_level_linear_mapping_is_near_optimal() {
    // The paper observes the hand-tuned linear mapping approaches the
    // theoretical minimum latency for single-level factories (Fig. 7a).
    let config = FactoryConfig::single_level(8);
    let eval = evaluate(&config, &Strategy::linear(), &EvaluationConfig::default()).unwrap();
    assert!(
        eval.latency_ratio_to_critical() < 2.5,
        "linear mapping latency is {}x the critical path",
        eval.latency_ratio_to_critical()
    );
}

#[test]
fn structured_mappers_beat_random_on_single_level_volume() {
    let config = FactoryConfig::single_level(8);
    let eval_cfg = EvaluationConfig::default();
    let random = evaluate(&config, &Strategy::random(5), &eval_cfg).unwrap();
    for strategy in [Strategy::linear(), Strategy::graph_partition(5)] {
        let eval = evaluate(&config, &strategy, &eval_cfg).unwrap();
        assert!(
            eval.volume < random.volume,
            "{} ({}) should beat random ({})",
            eval.strategy,
            eval.volume,
            random.volume
        );
    }
}

#[test]
fn hierarchical_stitching_beats_the_linear_baseline_on_two_level_volume() {
    // The headline claim of the paper, on a small two-level factory.
    let eval_cfg = EvaluationConfig::default();
    let linear = evaluate(
        &FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse),
        &Strategy::linear(),
        &eval_cfg,
    )
    .unwrap();
    let stitched = evaluate(
        &FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse),
        &Strategy::hierarchical_stitching(StitchingConfig::default()),
        &eval_cfg,
    )
    .unwrap();
    assert!(
        stitched.volume < linear.volume,
        "stitching ({}) should beat Line(NR) ({})",
        stitched.volume,
        linear.volume
    );
}

#[test]
fn round_interaction_graphs_are_planar_but_the_two_level_graph_is_denser() {
    let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    let round0 = InteractionGraph::from_circuit(&factory.round_circuit(0));
    let full = InteractionGraph::from_circuit(factory.circuit());
    // Single rounds satisfy the planar Euler bound comfortably.
    assert!(planarity::satisfies_euler_bound(&round0));
    // The permutation edges strictly increase the edge density.
    assert!(
        planarity::planar_density_ratio(&full) > planarity::planar_density_ratio(&round0),
        "permutation edges must increase graph density"
    );
}

#[test]
fn qubit_reuse_shrinks_area_but_adds_dependencies() {
    let reuse =
        Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse)).unwrap();
    let no_reuse =
        Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse)).unwrap();
    assert!(reuse.num_qubits() < no_reuse.num_qubits());
    // Same gates either way; the reuse factory has at least as deep a DAG
    // because of sharing-after-measurement false dependencies.
    assert_eq!(reuse.circuit().num_gates(), no_reuse.circuit().num_gates());
    let reuse_depth = reuse.circuit().dependency_dag().depth();
    let no_reuse_depth = no_reuse.circuit().dependency_dag().depth();
    assert!(reuse_depth >= no_reuse_depth);
}

#[test]
fn stitching_hops_do_not_break_simulation() {
    let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    let layout = HierarchicalStitchingMapper::new(9)
        .map_factory(&factory)
        .unwrap();
    assert!(!layout.hints.is_empty());
    // The layout's port rebinding must be applied before simulating.
    let effective = factory.apply_port_assignment(&layout.ports).unwrap();
    let result = Simulator::new(SimConfig::default())
        .run(effective.circuit(), &layout)
        .unwrap();
    assert!(
        result.cycles
            >= effective
                .circuit()
                .critical_path_cycles(&SimConfig::default().latency)
    );
}

#[test]
fn adaptive_routing_is_no_worse_than_dimension_ordered() {
    let config = FactoryConfig::single_level(6);
    let factory = Factory::build(&config).unwrap();
    let layout = LinearMapper::new().map_factory(&factory).unwrap();
    let adaptive = Simulator::new(SimConfig::default())
        .run(factory.circuit(), &layout)
        .unwrap();
    let fixed = Simulator::new(SimConfig::dimension_ordered())
        .run(factory.circuit(), &layout)
        .unwrap();
    assert!(adaptive.cycles <= fixed.cycles);
}

#[test]
fn per_round_breakdown_is_consistent_with_end_to_end_latency() {
    let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    let strategy = Strategy::graph_partition(3);
    let eval_cfg = EvaluationConfig::default();
    let eval = evaluate_factory(&factory, &strategy, &eval_cfg).unwrap();
    let layout = strategy.map(&factory).unwrap();
    let breakdown = pipeline::per_round_breakdown(&factory, &layout, &eval_cfg.sim).unwrap();
    let summed: u64 = breakdown.iter().map(|b| b.round_cycles).sum();
    // Rounds simulated in isolation can only be faster than the full circuit.
    assert!(summed <= 2 * eval.latency_cycles);
    assert!(breakdown.len() == factory.rounds().len());
}

#[test]
fn better_metrics_translate_into_lower_latency_end_to_end() {
    // A coarse version of Fig. 6: the mapping with many more crossings should
    // not be the faster one.
    let factory = Factory::build(&FactoryConfig::single_level(8)).unwrap();
    let graph = InteractionGraph::from_circuit(factory.circuit());
    let sim = Simulator::new(SimConfig::default());

    let linear = LinearMapper::new().map_factory(&factory).unwrap();
    let random = msfu::layout::RandomMapper::new(17)
        .map_factory(&factory)
        .unwrap();

    let linear_cross = metrics::edge_crossings(&graph, &linear.mapping.to_points());
    let random_cross = metrics::edge_crossings(&graph, &random.mapping.to_points());
    let linear_lat = sim.run(factory.circuit(), &linear).unwrap().cycles;
    let random_lat = sim.run(factory.circuit(), &random).unwrap().cycles;
    assert!(linear_cross < random_cross);
    assert!(linear_lat <= random_lat);
}
