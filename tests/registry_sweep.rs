//! Integration tests for the open strategy registry and data-declared
//! sweeps: a sweep written purely as JSON must reproduce the hand-coded
//! fig7 quick-mode report byte-identically, custom registered strategies
//! must flow through the sweep engine like built-ins, and the portfolio
//! search must never end worse than the best paper-lineup strategy (the
//! line-up is contained in the default portfolio).

use msfu::core::{register_strategy, EvaluationConfig, SearchSpec, Strategy, SweepSpec};
use msfu::distill::FactoryConfig;
use msfu::layout::{FactoryMapper, LinearMapper, MapperParams, ParamReader};
use msfu_bench::{fig7_spec, harness_eval_config, Mode};

#[test]
fn json_declared_fig7_quick_is_byte_identical_to_the_hand_coded_sweep() {
    let text =
        std::fs::read_to_string("benches/specs/fig7_quick.json").expect("spec file is checked in");
    let from_json = SweepSpec::from_json(&text).unwrap();
    let hand_coded = fig7_spec(Mode::Quick, 42);

    // The decoded spec is structurally identical to the Rust-built one —
    // same name, eval config, point order, strategies and parameters.
    assert_eq!(from_json, hand_coded);

    // And running it reproduces the quick-mode fig7 report byte for byte.
    let json_results = from_json.run().unwrap();
    let hand_results = hand_coded.run().unwrap();
    assert_eq!(json_results, hand_results);
    assert_eq!(
        serde_json::to_string_pretty(&json_results).unwrap(),
        serde_json::to_string_pretty(&hand_results).unwrap(),
    );
}

#[test]
fn custom_registered_strategy_sweeps_like_a_builtin() {
    // A custom strategy registered at runtime: the linear baseline under a
    // new name, parameterised by a row offset it validates strictly.
    let _ = register_strategy("offset_linear", |params| {
        let mut reader = ParamReader::new("offset_linear", params);
        let _offset = reader.u64_or("offset", 0)?;
        reader.finish()?;
        Ok(Box::new(LinearMapper::new()) as Box<dyn FactoryMapper>)
    });

    let custom = Strategy::new("offset_linear", MapperParams::new().with_u64("offset", 0))
        .with_label("OffL");
    let results = SweepSpec::new("custom", EvaluationConfig::default())
        .point("p", FactoryConfig::single_level(2), custom)
        .point("p", FactoryConfig::single_level(2), Strategy::linear())
        .run()
        .unwrap();
    assert_eq!(results.rows[0].evaluation.strategy, "OffL");
    // Identical placements -> identical evaluations, label aside.
    assert_eq!(
        results.rows[0].evaluation.volume,
        results.rows[1].evaluation.volume
    );

    // A typo in the custom strategy's parameters is a hard error.
    let typo = Strategy::new("offset_linear", MapperParams::new().with_u64("offest", 1));
    let failed = SweepSpec::new("typo", EvaluationConfig::default())
        .point("p", FactoryConfig::single_level(2), typo)
        .run();
    assert!(failed.is_err());
}

#[test]
fn search_incumbent_is_at_least_as_good_as_the_best_paper_lineup_strategy() {
    let eval = harness_eval_config();
    let config = FactoryConfig::single_level(2);

    let lineup = SweepSpec::new("lineup", eval)
        .grid("g", &[config], |_| Strategy::paper_lineup(42))
        .run()
        .unwrap();
    let best_lineup_volume = lineup
        .rows
        .iter()
        .map(|r| r.evaluation.volume)
        .min()
        .expect("lineup evaluated");

    let mut search = SearchSpec::new("vs_lineup", eval, config);
    search.seed = 42;
    search.portfolio = SearchSpec::paper_portfolio(42);
    // One batch covers candidate 0 of every entry — exactly the paper
    // line-up — so the incumbent can never be worse than its best member.
    search.batch_size = search.portfolio.len();
    search.budget = 2 * search.portfolio.len();
    let report = search.run().unwrap();
    let incumbent = report.incumbent.expect("search produced an incumbent");
    assert!(
        incumbent.value <= best_lineup_volume,
        "incumbent volume {} worse than best lineup volume {}",
        incumbent.value,
        best_lineup_volume
    );
}
