//! Delta-cost vs full-recompute force-directed refinement equivalence.
//!
//! The production `ForceDirectedMapper::refine` prices moves with the pruned
//! delta-cost evaluators over reused scratch; `msfu_layout::reference::refine`
//! is the preserved full-recompute pipeline. Both must produce *byte-identical*
//! mappings for every seeded configuration — the pruning may only skip
//! segment tests that provably cannot cross, and the scratch reuse may not
//! leak state between runs. Mirrors `tests/engine_equivalence.rs`: all
//! production refinements run through the same thread (one reused scratch)
//! to exercise arena hygiene across configurations.

use msfu_distill::{Factory, FactoryConfig};
use msfu_graph::InteractionGraph;
use msfu_layout::{
    reference, FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, LinearMapper, Mapping,
    RandomMapper,
};

fn refine_pair(cfg: &ForceDirectedConfig, graph: &InteractionGraph, initial: &Mapping) {
    let fast = ForceDirectedMapper::with_config(*cfg)
        .refine(graph, initial)
        .expect("delta-cost refinement succeeds");
    let slow = reference::refine(cfg, graph, initial).expect("reference refinement succeeds");
    assert_eq!(
        fast,
        slow,
        "delta-cost and full-recompute refinement diverged (seed {}, {} qubits)",
        cfg.seed,
        graph.num_vertices()
    );
}

#[test]
fn delta_cost_refine_matches_full_recompute_across_seeded_configs() {
    let factories = [
        FactoryConfig::single_level(2),
        FactoryConfig::single_level(4),
        FactoryConfig::single_level(6),
        FactoryConfig::two_level(2),
    ];
    for (fi, factory_config) in factories.iter().enumerate() {
        let factory = Factory::build(factory_config).expect("factory builds");
        let graph = InteractionGraph::from_circuit(factory.circuit());
        let linear = LinearMapper::new()
            .map_factory(&factory)
            .expect("linear start")
            .mapping;
        for seed in 0..5u64 {
            let cfg = ForceDirectedConfig {
                seed: seed * 31 + fi as u64,
                iterations: 12,
                repulsion_sample: 600,
                community_interval: 4,
                ..ForceDirectedConfig::default()
            };
            refine_pair(&cfg, &graph, &linear);
        }
    }
}

#[test]
fn equivalence_holds_from_random_starts_and_ablated_configs() {
    let factory = Factory::build(&FactoryConfig::single_level(4)).expect("factory builds");
    let graph = InteractionGraph::from_circuit(factory.circuit());
    for seed in 0..4u64 {
        let random = RandomMapper::new(seed)
            .map_factory(&factory)
            .expect("random start")
            .mapping;
        // Full default heuristics.
        refine_pair(
            &ForceDirectedConfig {
                seed,
                iterations: 10,
                repulsion_sample: 500,
                ..ForceDirectedConfig::default()
            },
            &graph,
            &random,
        );
        // Dipole off (no pole coloring), communities off (no Louvain), and a
        // hot temperature that accepts many uphill swaps.
        refine_pair(
            &ForceDirectedConfig {
                seed,
                iterations: 10,
                repulsion_sample: 500,
                dipole: 0.0,
                use_communities: false,
                temperature: 6.0,
                ..ForceDirectedConfig::default()
            },
            &graph,
            &random,
        );
    }
}

#[test]
fn full_mapping_path_matches_reference_refinement() {
    // The production map_factory (linear start + refine) must equal a
    // manually assembled linear start + reference refine.
    let factory = Factory::build(&FactoryConfig::two_level(2)).expect("factory builds");
    let graph = InteractionGraph::from_circuit(factory.circuit());
    let cfg = ForceDirectedConfig {
        seed: 9,
        iterations: 8,
        repulsion_sample: 400,
        ..ForceDirectedConfig::default()
    };
    let layout = ForceDirectedMapper::with_config(cfg)
        .map_factory(&factory)
        .expect("mapping succeeds");
    let linear = LinearMapper::new()
        .map_factory(&factory)
        .expect("linear start")
        .mapping;
    let slow = reference::refine(&cfg, &graph, &linear).expect("reference refinement succeeds");
    assert_eq!(layout.mapping, slow);
}
