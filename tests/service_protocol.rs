//! Integration tests of the service façade: cancellation with partial
//! results, serve-session determinism against the checked-in baselines, and
//! typed protocol errors.

use std::sync::atomic::{AtomicUsize, Ordering};

use msfu::core::{
    CancelToken, EvaluationConfig, NoProgress, ProgressEvent, ProgressSink, RunControl, Strategy,
    SweepSpec,
};
use msfu::distill::FactoryConfig;
use msfu::service::{serve, JobHandle, Payload, Request, ServeOptions, Service};
use msfu_bench::{fig7_spec, Mode};
use serde_json::Value;

/// A sink that cancels a token after observing the given number of
/// `RowCompleted` events (0 = cancel on the first batch boundary).
struct CancelAfterRows {
    token: CancelToken,
    after: usize,
    rows_seen: AtomicUsize,
}

impl CancelAfterRows {
    fn new(token: CancelToken, after: usize) -> Self {
        CancelAfterRows {
            token,
            after,
            rows_seen: AtomicUsize::new(0),
        }
    }
}

impl ProgressSink for CancelAfterRows {
    fn emit(&self, event: &ProgressEvent<'_>) {
        if let ProgressEvent::RowCompleted { .. } = event {
            let seen = self.rows_seen.fetch_add(1, Ordering::SeqCst) + 1;
            if seen >= self.after {
                self.token.cancel();
            }
        }
    }
}

/// A sweep wide enough to span several parallel batches (the batch size is
/// 32 points).
fn wide_sweep() -> SweepSpec {
    let mut spec = SweepSpec::new("wide", EvaluationConfig::default());
    for seed in 0..18u64 {
        spec = spec
            .point("g", FactoryConfig::single_level(2), Strategy::linear())
            .point("g", FactoryConfig::single_level(2), Strategy::random(seed));
    }
    spec
}

#[test]
fn mid_sweep_cancel_returns_partial_prefix_and_leaves_the_engine_reusable() {
    let spec = wide_sweep();
    let full = spec.run().unwrap();
    assert_eq!(full.rows.len(), 36);

    // Serial: cancellation is honoured between points, so cancelling after
    // row 3 yields exactly the 3-row prefix.
    let token = CancelToken::new();
    let sink = CancelAfterRows::new(token.clone(), 3);
    let ctrl = RunControl::default()
        .with_progress(&sink)
        .with_cancel(&token);
    let outcome = spec.run_serial_with(&ctrl).unwrap();
    assert!(outcome.interrupted);
    assert_eq!(outcome.results.rows.len(), 3);
    assert_eq!(outcome.results.rows[..], full.rows[..3]);

    // Parallel: cancellation is honoured between 32-point batches, so the
    // first batch completes and the second never starts.
    let token = CancelToken::new();
    let sink = CancelAfterRows::new(token.clone(), 1);
    let ctrl = RunControl::default()
        .with_progress(&sink)
        .with_cancel(&token);
    let outcome = spec.run_with(&ctrl).unwrap();
    assert!(outcome.interrupted);
    assert_eq!(outcome.results.rows.len(), 32, "one full batch completed");
    assert_eq!(outcome.results.rows[..], full.rows[..32]);

    // The engines the cancelled runs used are reused by the very next run on
    // the same threads; results must equal a fresh, uncancelled run.
    let again = spec.run_serial().unwrap();
    assert_eq!(again, full, "cancellation must not poison the engine");
}

#[test]
fn cancelled_sweep_response_carries_partial_results_and_cancelled_true() {
    let spec = wide_sweep();
    let full = spec.run().unwrap();
    let request = Request::sweep("job-1", spec);
    let handle = JobHandle::new();
    let sink = CancelAfterRows::new(handle.token().clone(), 1);
    let response = Service::new().run(&request, &handle, &sink);
    assert!(response.cancelled);
    let Ok(Payload::Sweep(results)) = &response.result else {
        panic!("a cancelled sweep still responds ok with partial results")
    };
    assert!(!results.rows.is_empty());
    assert!(results.rows.len() < full.rows.len());
    assert_eq!(results.rows[..], full.rows[..results.rows.len()]);
    let value = response.to_value();
    assert_eq!(value.get("cancelled"), Some(&Value::Bool(true)));
    assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
}

/// The acceptance gate of the service layer: the checked-in two-request
/// session (the fig7 quick sweep plus the search smoke) through `serve`
/// yields results byte-identical to the `fig7` binary's sweep and to the
/// checked-in baselines.
#[test]
fn serve_session_results_are_byte_identical_to_the_binaries_and_baselines() {
    use serde::Serialize;

    let session = std::fs::read_to_string("benches/specs/serve_session.ndjson")
        .expect("checked-in session fixture");
    let mut output: Vec<u8> = Vec::new();
    let summary = serve(
        std::io::Cursor::new(session.into_bytes()),
        &mut output,
        &ServeOptions::new(),
    )
    .unwrap();
    assert_eq!(summary.responses, 2, "two jobs served by one process");
    assert_eq!(summary.errors, 0);

    let lines: Vec<Value> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("every serve output line is JSON"))
        .collect();
    let response = |id: &str| {
        lines
            .iter()
            .find(|v| {
                v.get("type").and_then(Value::as_str) == Some("response")
                    && v.get("id").and_then(Value::as_str) == Some(id)
            })
            .unwrap_or_else(|| panic!("response for {id}"))
    };
    let progress_count = |id: &str| {
        lines
            .iter()
            .filter(|v| {
                v.get("type").and_then(Value::as_str) == Some("progress")
                    && v.get("id").and_then(Value::as_str) == Some(id)
            })
            .count()
    };
    assert!(progress_count("fig7") > 0, "sweep progress streamed");
    assert!(progress_count("search") > 0, "search progress streamed");

    // fig7 through serve == fig7 binary's sweep run == checked-in baseline.
    let via_serve = response("fig7")
        .get("result")
        .and_then(|r| r.get("results"))
        .expect("fig7 results payload");
    let direct = fig7_spec(Mode::Quick, 42).run().unwrap();
    assert_eq!(
        via_serve,
        &direct.to_value(),
        "serve result differs from the fig7 binary's sweep"
    );
    let baseline: Value = serde_json::from_str(
        &std::fs::read_to_string("benches/baselines/BENCH_fig7.json").unwrap(),
    )
    .unwrap();
    assert_eq!(
        via_serve,
        baseline.get("results").expect("baseline results"),
        "serve result differs from the checked-in baseline"
    );

    // The search response matches the serve baseline rows too. (The serve
    // session embeds its own copy of the search spec; the standalone
    // `benches/specs/search_smoke.json` has since grown a converging-ladder
    // entry for the evaluation-cache smoke, so the session's reference is
    // the serve baseline, not the bench-regression one.)
    let search_rows = response("search")
        .get("result")
        .and_then(|r| r.get("results"))
        .expect("search results payload");
    let search_baseline: Value = serde_json::from_str(
        &std::fs::read_to_string("benches/baselines/serve/BENCH_search.json").unwrap(),
    )
    .unwrap();
    assert_eq!(search_rows, search_baseline.get("results").unwrap());
}

#[test]
fn protocol_version_mismatch_is_a_typed_error_response() {
    let line = r#"{"protocol_version": 99, "id": "old-client", "kind": "sweep"}"#;
    let mut output: Vec<u8> = Vec::new();
    let summary = serve(
        std::io::Cursor::new(format!("{line}\n").into_bytes()),
        &mut output,
        &ServeOptions::new(),
    )
    .unwrap();
    assert_eq!(summary.responses, 1);
    assert_eq!(summary.errors, 1);
    let response: Value = serde_json::from_str(String::from_utf8(output).unwrap().trim()).unwrap();
    assert_eq!(
        response.get("status").and_then(Value::as_str),
        Some("error")
    );
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("E_PROTOCOL_VERSION")
    );
    assert_eq!(
        response.get("id").and_then(Value::as_str),
        Some("old-client"),
        "the error response still correlates by id"
    );
}

#[test]
fn deadline_interrupts_a_sweep_with_partial_results() {
    // Deadline 0: already past when the first batch boundary is checked.
    let request = Request::sweep("d", wide_sweep()).with_deadline_ms(0);
    let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
    assert!(response.cancelled);
    let Ok(Payload::Sweep(results)) = &response.result else {
        panic!("deadline responds ok with partial results")
    };
    assert!(results.rows.is_empty());
}
