//! Evaluation-cache correctness: sweep and search results with the
//! content-addressed cache enabled must be byte-identical to cache-disabled
//! runs, in both the parallel and the serial engines, and duplicate points
//! must actually hit the cache.

use msfu_core::{EvaluationConfig, PortfolioEntry, SearchSpec, Strategy, SweepSpec};
use msfu_distill::{FactoryConfig, ReusePolicy};
use msfu_layout::{MapperParams, StitchingConfig};
use msfu_sim::SimConfig;

fn eval() -> EvaluationConfig {
    EvaluationConfig::default().with_sim(SimConfig::dimension_ordered())
}

/// A sweep with deliberate duplicates: the same `(factory, strategy)` point
/// under two labels, a reuse-policy pair, and a port-rewiring strategy (HS)
/// whose layouts carry a port assignment in the key.
fn duplicate_heavy_spec() -> SweepSpec {
    let single = FactoryConfig::single_level(4);
    let two = FactoryConfig::two_level(2);
    SweepSpec::new("cache-test", eval())
        .point("a", single, Strategy::linear())
        .point("b", single, Strategy::linear())
        .point("a", single, Strategy::random(7))
        .point("b", single, Strategy::random(7))
        .point("r", two.with_reuse(ReusePolicy::Reuse), Strategy::linear())
        .point(
            "nr",
            two.with_reuse(ReusePolicy::NoReuse),
            Strategy::linear(),
        )
        .point(
            "hs",
            two,
            Strategy::hierarchical_stitching(StitchingConfig::default()),
        )
        .point(
            "hs2",
            two,
            Strategy::hierarchical_stitching(StitchingConfig::default()),
        )
}

#[test]
fn sweep_results_are_identical_with_and_without_the_cache() {
    let cached = duplicate_heavy_spec();
    let uncached = duplicate_heavy_spec().with_eval_cache(false);
    assert!(cached.use_eval_cache);
    assert!(!uncached.use_eval_cache);

    let cached_parallel = cached.run().unwrap();
    let cached_serial = cached.run_serial().unwrap();
    let uncached_parallel = uncached.run().unwrap();
    let uncached_serial = uncached.run_serial().unwrap();

    assert_eq!(cached_parallel, uncached_parallel);
    assert_eq!(cached_serial, uncached_serial);
    assert_eq!(cached_parallel, cached_serial);
}

#[test]
fn duplicate_sweep_points_hit_the_cache() {
    use msfu_core::progress::RunControl;
    let spec = duplicate_heavy_spec();
    // Serial: deterministic counters — every duplicate after the first is a
    // hit. The spec holds three duplicate pairs (linear, random, HS); the
    // reuse-policy pair are distinct factory configs and must NOT collide.
    let outcome = spec.run_serial_with(&RunControl::default()).unwrap();
    assert_eq!(outcome.cache.hits, 3, "stats: {:?}", outcome.cache);
    assert_eq!(outcome.cache.misses, 5);
    assert!(outcome.cache.hit_rate() > 0.3);
    // Disabled cache reports zeros.
    let disabled = spec
        .with_eval_cache(false)
        .run_serial_with(&RunControl::default())
        .unwrap();
    assert_eq!(disabled.cache.hits + disabled.cache.misses, 0);
    assert_eq!(outcome.results, disabled.results);
}

fn search_spec(cache: bool) -> SearchSpec {
    let mut spec = SearchSpec::new("cache-search", eval(), FactoryConfig::single_level(2));
    spec.budget = 18;
    spec.batch_size = 6;
    spec.patience = 0;
    spec.seed = 42;
    spec.use_eval_cache = cache;
    spec.portfolio = vec![
        PortfolioEntry::fixed(Strategy::linear()),
        PortfolioEntry::seed_scan(Strategy::graph_partition(42)),
        PortfolioEntry::seed_scan(Strategy::random(42)).with_ladder(vec![
            MapperParams::new(),
            MapperParams::new().with_f64("expansion", 1.2),
        ]),
        // Unseeded parameter ladder whose first two rungs resolve to the
        // same mapper (explicit expansion 1.0 == the default): the classic
        // converging-ladder case the cache deduplicates.
        PortfolioEntry::fixed(Strategy::random(7)).with_ladder(vec![
            MapperParams::new(),
            MapperParams::new().with_f64("expansion", 1.0),
            MapperParams::new().with_f64("expansion", 1.4),
        ]),
    ];
    spec
}

#[test]
fn search_reports_are_identical_with_and_without_the_cache() {
    let cached_parallel = search_spec(true).run().unwrap();
    let cached_serial = search_spec(true).run_serial().unwrap();
    let uncached_parallel = search_spec(false).run().unwrap();
    let uncached_serial = search_spec(false).run_serial().unwrap();

    assert_eq!(cached_parallel, uncached_parallel);
    assert_eq!(cached_serial, uncached_serial);
    assert_eq!(cached_parallel, cached_serial);
}

#[test]
fn converging_search_candidates_hit_the_cache() {
    use msfu_core::progress::RunControl;
    // Serial run: counters are deterministic. The unseeded ladder's
    // duplicate rung must be answered from the cache.
    let outcome = search_spec(true)
        .run_serial_with(&RunControl::default())
        .unwrap();
    assert!(
        outcome.cache.hits > 0,
        "expected converging ladder rungs to hit the cache: {:?}",
        outcome.cache
    );
    let disabled = search_spec(false)
        .run_serial_with(&RunControl::default())
        .unwrap();
    assert_eq!(disabled.cache.hits + disabled.cache.misses, 0);
    assert_eq!(outcome.report, disabled.report);
}
