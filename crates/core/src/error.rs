//! Error type for the end-to-end pipeline.

use std::fmt;

/// Errors produced by the end-to-end evaluation pipeline; a thin wrapper over
/// the errors of the underlying subsystems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Factory construction failed.
    Distill(msfu_distill::DistillError),
    /// Qubit placement failed.
    Layout(msfu_layout::LayoutError),
    /// Braid simulation failed.
    Sim(msfu_sim::SimError),
    /// A data-declared sweep or search specification could not be decoded.
    Spec {
        /// Explanation of the problem (field path and what was expected).
        reason: String,
    },
    /// A streaming-workload specification could not be decoded or failed
    /// validation (see [`crate::stream::StreamSpec`]).
    StreamSpec {
        /// Explanation of the problem (field path and what was expected).
        reason: String,
    },
    /// A stream job named a scheduler that is not registered.
    UnknownScheduler {
        /// The requested scheduler name.
        name: String,
        /// The registered scheduler names, sorted.
        known: Vec<String>,
    },
    /// A remote worker failed, or its payload could not be decoded.
    ///
    /// `code` carries the service-level error-code string reported by (or
    /// assigned to) the failure, opaque to this crate; the service layer maps
    /// known codes back onto their original identity so a clustered run
    /// reports the same code a serial run would. `Display` prints only the
    /// message, for the same reason.
    Remote {
        /// Stable error-code string of the underlying failure.
        code: String,
        /// Human-readable explanation (the remote error's own message).
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Distill(e) => write!(f, "factory construction failed: {e}"),
            CoreError::Layout(e) => write!(f, "qubit placement failed: {e}"),
            CoreError::Sim(e) => write!(f, "braid simulation failed: {e}"),
            CoreError::Spec { reason } => write!(f, "invalid specification: {reason}"),
            CoreError::StreamSpec { reason } => {
                write!(f, "invalid stream specification: {reason}")
            }
            CoreError::UnknownScheduler { name, known } => write!(
                f,
                "unknown stream scheduler `{name}` (known: {})",
                known.join(", ")
            ),
            CoreError::Remote { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Distill(e) => Some(e),
            CoreError::Layout(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Spec { .. }
            | CoreError::StreamSpec { .. }
            | CoreError::UnknownScheduler { .. }
            | CoreError::Remote { .. } => None,
        }
    }
}

impl From<msfu_distill::DistillError> for CoreError {
    fn from(value: msfu_distill::DistillError) -> Self {
        CoreError::Distill(value)
    }
}

impl From<msfu_layout::LayoutError> for CoreError {
    fn from(value: msfu_layout::LayoutError) -> Self {
        CoreError::Layout(value)
    }
}

impl From<msfu_sim::SimError> for CoreError {
    fn from(value: msfu_sim::SimError) -> Self {
        CoreError::Sim(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_all_subsystem_errors() {
        let d = CoreError::from(msfu_distill::DistillError::ZeroCapacity);
        let l = CoreError::from(msfu_layout::LayoutError::Unmapped {
            qubit: msfu_circuit::QubitId::new(0),
        });
        let s = CoreError::from(msfu_sim::SimError::EmptyGrid);
        for e in [d, l, s] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
