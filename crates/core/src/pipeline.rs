//! Per-round breakdown of a mapped factory (the iterative flow of Fig. 3 and
//! the permutation-step study of Fig. 9c/9d).
//!
//! The end-to-end simulation of [`crate::evaluate`] reports the total latency;
//! this module additionally simulates each round's circuit and each
//! inter-round permutation step in isolation under the same layout, which is
//! how the paper quantifies where multi-level factories spend their time.

use serde::{Deserialize, Serialize};

use msfu_distill::Factory;
use msfu_layout::Layout;
use msfu_sim::{SimConfig, SimEngine};

use crate::evaluate::with_thread_engine;
use crate::Result;

/// Latency breakdown of one round of a mapped factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// Round index (0-based).
    pub round: usize,
    /// Cycles spent executing the round's own gates (simulated in isolation).
    pub round_cycles: u64,
    /// Cycles spent on the permutation step that feeds the *next* round
    /// (zero for the final round).
    pub permutation_cycles: u64,
}

/// Simulates every round and every inter-round permutation step of a mapped
/// factory in isolation.
///
/// The sum of the per-round figures generally differs from the end-to-end
/// latency (rounds overlap slightly at their boundaries unless barriers are
/// present), but the split shows where the time goes — in particular how
/// expensive the permutation steps are for each mapping strategy.
///
/// # Errors
///
/// Propagates simulation failures (e.g. unplaced qubits).
pub fn per_round_breakdown(
    factory: &Factory,
    layout: &Layout,
    sim: &SimConfig,
) -> Result<Vec<RoundBreakdown>> {
    with_thread_engine(*sim, |engine| {
        per_round_breakdown_with(engine, factory, layout, sim)
    })
}

/// [`per_round_breakdown`] against a caller-held [`SimEngine`]: the round and
/// permutation circuits all run through one set of arenas.
///
/// # Errors
///
/// Propagates simulation failures (e.g. unplaced qubits).
pub fn per_round_breakdown_with(
    engine: &mut SimEngine,
    factory: &Factory,
    layout: &Layout,
    sim: &SimConfig,
) -> Result<Vec<RoundBreakdown>> {
    engine.set_config(*sim);
    let mut out = Vec::with_capacity(factory.rounds().len());
    for round in 0..factory.rounds().len() {
        let round_circuit = factory.round_circuit(round);
        let round_cycles = engine.run(&round_circuit, layout)?.cycles;
        let permutation_cycles = if round + 1 < factory.rounds().len() {
            let perm = factory.permutation_circuit(round);
            engine.run(&perm, layout)?.cycles
        } else {
            0
        };
        out.push(RoundBreakdown {
            round,
            round_cycles,
            permutation_cycles,
        });
    }
    Ok(out)
}

/// Total permutation cycles across all rounds (the quantity plotted in
/// Fig. 9d).
pub fn total_permutation_cycles(breakdown: &[RoundBreakdown]) -> u64 {
    breakdown.iter().map(|b| b.permutation_cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::FactoryConfig;
    use msfu_layout::{FactoryMapper, HierarchicalStitchingMapper, LinearMapper};

    #[test]
    fn breakdown_covers_every_round() {
        let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let layout = LinearMapper::new().map_factory(&factory).unwrap();
        let breakdown = per_round_breakdown(&factory, &layout, &SimConfig::default()).unwrap();
        assert_eq!(breakdown.len(), 2);
        assert!(breakdown[0].round_cycles > 0);
        assert!(breakdown[0].permutation_cycles > 0);
        assert_eq!(breakdown[1].permutation_cycles, 0);
        assert!(total_permutation_cycles(&breakdown) > 0);
    }

    #[test]
    fn single_level_has_no_permutation_step() {
        let factory = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let layout = LinearMapper::new().map_factory(&factory).unwrap();
        let breakdown = per_round_breakdown(&factory, &layout, &SimConfig::default()).unwrap();
        assert_eq!(breakdown.len(), 1);
        assert_eq!(total_permutation_cycles(&breakdown), 0);
    }

    #[test]
    fn stitching_layout_also_breaks_down() {
        let mut factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let layout = HierarchicalStitchingMapper::new(1)
            .map_factory_optimized(&mut factory)
            .unwrap();
        let breakdown = per_round_breakdown(&factory, &layout, &SimConfig::default()).unwrap();
        assert_eq!(breakdown.len(), 2);
        assert!(breakdown.iter().all(|b| b.round_cycles > 0));
    }
}
