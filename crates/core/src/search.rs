//! Portfolio search over the open strategy registry.
//!
//! The paper compares a fixed line-up of five strategies; with the
//! event-driven engine making simulation cheap and strategies being plain
//! registry data, a better question becomes *which strategy variant and seed
//! minimises the objective for this factory*. This module answers it with a
//! portfolio search: a set of [`PortfolioEntry`] templates (e.g. randomised
//! placement over an expansion ladder, force-directed over a temperature
//! ladder, graph partitioning over seeds) is expanded into a deterministic
//! candidate stream, evaluated in parallel batches — one reusable
//! [`msfu_sim::SimEngine`] per worker thread — with the best-so-far
//! *incumbent* tracked after every batch and the search stopping early when
//! the incumbent stops improving (or a target is reached).
//!
//! Results are deterministic: [`SearchSpec::run`] equals
//! [`SearchSpec::run_serial`] regardless of thread count, because candidate
//! generation is index-based, every evaluation is a pure function of the
//! candidate, and incumbents are folded in candidate order.
//!
//! # Example
//!
//! ```
//! use msfu_core::{EvaluationConfig, SearchSpec};
//! use msfu_distill::FactoryConfig;
//!
//! let mut spec = SearchSpec::new(
//!     "demo",
//!     EvaluationConfig::default(),
//!     FactoryConfig::single_level(2),
//! );
//! spec.budget = 8;
//! spec.batch_size = 4;
//! spec.portfolio = SearchSpec::paper_portfolio(0);
//! let report = spec.run().unwrap();
//! assert!(report.evaluations <= 8);
//! assert!(report.incumbent.is_some());
//! ```

use std::sync::Arc;

use rayon::prelude::*;
use serde::{Serialize, Value};

use msfu_distill::{Factory, FactoryConfig};
use msfu_layout::{ForceDirectedConfig, MapperParams, ParamValue, StitchingConfig};

use crate::cache::{evaluation_key, open_eval_cache, CacheStats, EvalCache};
use crate::evaluate::{effective_factory, evaluate_mapped_with, with_thread_engine};
use crate::progress::{ProgressEvent, RunControl};
use crate::spec::{eval_from_json, factory_from_json, params_from_json, strategy_from_json};
use crate::strategy::ResolvedStrategy;
use crate::sweep::{SweepResults, SweepRow};
use crate::{CoreError, Evaluation, EvaluationConfig, Result, Strategy};

/// What the search minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum Objective {
    /// Realised circuit latency in cycles.
    Latency,
    /// Space-time (quantum) volume — the paper's headline metric.
    #[default]
    Volume,
}

impl Objective {
    /// The objective's value on an evaluation.
    pub fn value(self, evaluation: &Evaluation) -> u64 {
        match self {
            Objective::Latency => evaluation.latency_cycles,
            Objective::Volume => evaluation.volume,
        }
    }

    /// Short name used by specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Latency => "latency",
            Objective::Volume => "volume",
        }
    }

    /// Parses [`Objective::name`] back.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "latency" => Some(Objective::Latency),
            "volume" => Some(Objective::Volume),
            _ => None,
        }
    }
}

/// Why a search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub enum StopReason {
    /// The evaluation budget was exhausted.
    BudgetExhausted,
    /// Every portfolio entry ran out of distinct candidates before the
    /// budget did (only possible when no entry is seeded).
    PortfolioExhausted,
    /// No batch improved the incumbent for `patience` consecutive batches.
    Converged,
    /// The incumbent reached the requested target value.
    TargetReached,
    /// The run was cancelled (or hit its deadline) at a batch boundary; the
    /// report covers the batches that completed.
    Cancelled,
}

/// One template of the search portfolio: a strategy plus the parameter
/// ladder and seeding rule its candidates are expanded from.
///
/// `#[non_exhaustive]`: construct with [`PortfolioEntry::seed_scan`] or
/// [`PortfolioEntry::fixed`] and refine with the builder methods.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PortfolioEntry {
    /// Report label for candidates of this entry (becomes
    /// [`Evaluation::strategy`]).
    pub label: String,
    /// The base strategy (registry key + base parameters).
    pub template: Strategy,
    /// Parameter overrides cycled over the entry's candidate stream
    /// (candidate *n* applies `ladder[n % ladder.len()]`); empty for a plain
    /// seed scan.
    pub ladder: Vec<MapperParams>,
    /// Whether candidate *n* overrides the `seed` parameter with
    /// `base seed + n` (disable for deterministic mappers such as `linear`,
    /// which reject a seed parameter).
    pub seeded: bool,
}

impl PortfolioEntry {
    /// A seeded entry with no parameter ladder, labelled by the template's
    /// short name.
    pub fn seed_scan(template: Strategy) -> Self {
        PortfolioEntry {
            label: template.short_name().to_string(),
            template,
            ladder: Vec::new(),
            seeded: true,
        }
    }

    /// A single fixed candidate (no ladder, no seeding) — e.g. the
    /// deterministic linear baseline.
    pub fn fixed(template: Strategy) -> Self {
        PortfolioEntry {
            label: template.short_name().to_string(),
            template,
            ladder: Vec::new(),
            seeded: false,
        }
    }

    /// Attaches a parameter ladder (builder style).
    pub fn with_ladder(mut self, ladder: Vec<MapperParams>) -> Self {
        self.ladder = ladder;
        self
    }

    /// How many *distinct* candidates the entry can produce: unbounded for
    /// seeded entries, one per ladder rung otherwise. The search skips an
    /// entry once its distinct candidates are used up, so a fixed entry (the
    /// linear baseline) is evaluated exactly once instead of burning budget
    /// on identical re-runs every round-robin pass.
    fn distinct_candidates(&self) -> usize {
        if self.seeded {
            usize::MAX
        } else {
            self.ladder.len().max(1)
        }
    }

    /// The entry's `n`-th candidate strategy, derived from `base_seed`.
    fn candidate(&self, n: usize, base_seed: u64) -> Strategy {
        let mut strategy = self.template.clone().with_label(self.label.clone());
        if !self.ladder.is_empty() {
            for (key, value) in self.ladder[n % self.ladder.len()].iter() {
                strategy = strategy.with_param(key, value.clone());
            }
        }
        if self.seeded {
            let seed = match self.template.params().get("seed") {
                Some(ParamValue::U64(s)) => *s,
                _ => base_seed,
            };
            strategy = strategy.with_param("seed", ParamValue::U64(seed.wrapping_add(n as u64)));
        }
        strategy
    }
}

/// A declarative portfolio search: one factory configuration, an objective,
/// a candidate budget and the portfolio to draw candidates from.
///
/// `#[non_exhaustive]`: construct with [`SearchSpec::new`] (fields remain
/// public for reads and assignment) so the spec — and the JSON protocol
/// carrying it — can grow fields without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchSpec {
    /// Search name (carried into reports).
    pub name: String,
    /// Simulator configuration shared by every candidate.
    pub eval: EvaluationConfig,
    /// The factory configuration to optimise (built once, shared immutably).
    pub factory: FactoryConfig,
    /// The metric to minimise.
    pub objective: Objective,
    /// Maximum number of candidate evaluations.
    pub budget: usize,
    /// Candidates evaluated per parallel batch (early stopping is checked
    /// between batches).
    pub batch_size: usize,
    /// Stop after this many consecutive batches without incumbent
    /// improvement; `0` disables convergence-based stopping.
    pub patience: usize,
    /// Stop as soon as the incumbent objective is ≤ this value.
    pub target: Option<u64>,
    /// Base seed for entries whose template carries no explicit `seed`.
    pub seed: u64,
    /// The candidate templates, interleaved round-robin.
    pub portfolio: Vec<PortfolioEntry>,
    /// Share one content-addressed [`EvalCache`] across the search's workers
    /// so candidates converging to the same layout simulate once. Enabled by
    /// default; reports are byte-identical either way.
    pub use_eval_cache: bool,
    /// Root directory of the persistent cache tier (see
    /// [`SweepSpec::cache_dir`](crate::SweepSpec)): candidates already
    /// simulated by an earlier run — or by another process sharing the
    /// directory — are served from disk. Reports are byte-identical with or
    /// without it. `None` (default) keeps the cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl SearchSpec {
    /// Creates a search with an empty portfolio and defaults: volume
    /// objective, budget 64, batch size 16, patience 2, no target, seed 0.
    pub fn new(name: impl Into<String>, eval: EvaluationConfig, factory: FactoryConfig) -> Self {
        SearchSpec {
            name: name.into(),
            eval,
            factory,
            objective: Objective::Volume,
            budget: 64,
            batch_size: 16,
            patience: 2,
            target: None,
            seed: 0,
            portfolio: Vec::new(),
            use_eval_cache: true,
            cache_dir: None,
        }
    }

    /// The default portfolio built from the paper line-up: the deterministic
    /// linear baseline, a graph-partitioning seed scan, randomised placement
    /// over an expansion ladder (packed → slack), a force-directed
    /// temperature ladder, and hierarchical stitching over seeds (HS targets
    /// multi-level factories but maps single-level ones too, so it is always
    /// included). Candidate 0 of every entry is the exact paper line-up
    /// member, so the search incumbent is never worse than the best paper
    /// strategy once one full round-robin pass has been evaluated.
    pub fn paper_portfolio(seed: u64) -> Vec<PortfolioEntry> {
        vec![
            PortfolioEntry::fixed(Strategy::linear()),
            PortfolioEntry::seed_scan(Strategy::graph_partition(seed)),
            PortfolioEntry::seed_scan(Strategy::random(seed)).with_ladder(vec![
                MapperParams::new(),
                MapperParams::new().with_f64("expansion", 1.2),
                MapperParams::new().with_f64("expansion", 1.5),
            ]),
            PortfolioEntry::seed_scan(Strategy::force_directed(ForceDirectedConfig {
                seed,
                ..ForceDirectedConfig::default()
            }))
            .with_ladder(vec![
                MapperParams::new(),
                MapperParams::new().with_f64("temperature", 1.0),
                MapperParams::new().with_f64("temperature", 4.0),
            ]),
            PortfolioEntry::seed_scan(Strategy::hierarchical_stitching(StitchingConfig {
                seed,
                ..StitchingConfig::default()
            })),
        ]
    }

    /// The `g`-th candidate of the interleaved stream: entries round-robin,
    /// each advancing its own ladder/seed counter.
    fn candidate(&self, g: usize) -> Strategy {
        let entries = self.portfolio.len();
        let entry = &self.portfolio[g % entries];
        entry.candidate(g / entries, self.seed)
    }

    fn validate(&self) -> Result<()> {
        let fail = |reason: &str| {
            Err(CoreError::Spec {
                reason: format!("search `{}`: {reason}", self.name),
            })
        };
        if self.portfolio.is_empty() {
            return fail("the portfolio is empty");
        }
        if self.budget == 0 {
            return fail("budget must be at least 1");
        }
        if self.batch_size == 0 {
            return fail("batch_size must be at least 1");
        }
        Ok(())
    }

    /// Runs the search with batches evaluated across all cores.
    ///
    /// # Errors
    ///
    /// Returns a spec error for an empty portfolio or zero budget/batch
    /// size, and propagates the first (in candidate order) factory, mapping
    /// or simulation failure.
    pub fn run(&self) -> Result<SearchReport> {
        Ok(self.execute(false, &RunControl::default())?.report)
    }

    /// Runs the search sequentially on the calling thread (reference
    /// implementation; results are identical to [`SearchSpec::run`]).
    ///
    /// # Errors
    ///
    /// As [`SearchSpec::run`].
    pub fn run_serial(&self) -> Result<SearchReport> {
        Ok(self.execute(true, &RunControl::default())?.report)
    }

    /// [`SearchSpec::run`] under a [`RunControl`]: incumbent improvements and
    /// batch completions stream to the control's sink, and
    /// cancellation/deadline are honoured between batches. An interrupted
    /// search ends with [`StopReason::Cancelled`] and reports the candidates
    /// evaluated so far.
    ///
    /// # Errors
    ///
    /// As [`SearchSpec::run`].
    pub fn run_with(&self, ctrl: &RunControl<'_>) -> Result<SearchOutcome> {
        self.execute(false, ctrl)
    }

    /// [`SearchSpec::run_serial`] under a [`RunControl`] (see
    /// [`SearchSpec::run_with`]).
    ///
    /// # Errors
    ///
    /// As [`SearchSpec::run`].
    pub fn run_serial_with(&self, ctrl: &RunControl<'_>) -> Result<SearchOutcome> {
        self.execute(true, ctrl)
    }

    fn execute(&self, serial: bool, ctrl: &RunControl<'_>) -> Result<SearchOutcome> {
        self.validate()?;
        let factory = Arc::new(Factory::build(&self.factory)?);
        // Resolve each entry's registry mapper once; every candidate of the
        // entry (seed scan, ladder rung) reuses the handle instead of
        // re-entering the registry per evaluation.
        let resolved: Vec<ResolvedStrategy> = self
            .portfolio
            .iter()
            .map(|entry| entry.template.resolve())
            .collect::<Result<_>>()?;
        let cache = open_eval_cache(self.use_eval_cache, self.cache_dir.as_deref())?;
        let mut outcome = self.run_with_evaluator(ctrl, |batch| {
            let evaluate = |(g, s): &(usize, Strategy)| {
                self.evaluate_candidate(
                    &resolved[g % self.portfolio.len()],
                    s,
                    &factory,
                    cache.as_ref(),
                )
            };
            Ok(if serial {
                batch.iter().map(evaluate).collect()
            } else {
                batch.par_iter().map(evaluate).collect()
            })
        })?;
        outcome.cache = cache.map(|c| c.stats()).unwrap_or_default();
        Ok(outcome)
    }

    /// The search fold with candidate evaluation delegated to a caller
    /// closure: the batch-building, incumbent-tracking and stopping logic of
    /// [`SearchSpec::run_with`], with each batch of `(position, candidate)`
    /// pairs handed to `evaluate_batch` instead of being evaluated locally.
    ///
    /// This is the hook a cluster coordinator uses to fan candidate batches
    /// out to remote workers while keeping the fold — and therefore the
    /// report, trajectory and stop reason — byte-identical to a serial run.
    /// The closure must return exactly one `Result<Evaluation>` per
    /// candidate, in batch order; a batch-level failure (`Err` on the outer
    /// `Result`) aborts the search. The returned outcome carries default
    /// (all-zero) cache counters, since this fold never sees a cache.
    ///
    /// # Errors
    ///
    /// Returns a spec error for an empty portfolio or zero budget/batch
    /// size, and propagates the first (in candidate order) evaluation error
    /// the closure reports.
    pub fn run_with_evaluator<F>(
        &self,
        ctrl: &RunControl<'_>,
        mut evaluate_batch: F,
    ) -> Result<SearchOutcome>
    where
        F: FnMut(&[(usize, Strategy)]) -> Result<Vec<Result<Evaluation>>>,
    {
        self.validate()?;

        // Positions in the stream beyond an entry's distinct-candidate count
        // are skipped, so the effective budget is capped by the number of
        // distinct candidates the whole portfolio can produce.
        let distinct: Vec<usize> = self
            .portfolio
            .iter()
            .map(PortfolioEntry::distinct_candidates)
            .collect();
        let total_distinct = distinct
            .iter()
            .fold(0usize, |acc, &d| acc.saturating_add(d));
        let effective_budget = self.budget.min(total_distinct);
        let exhausted = |evaluated: usize| {
            if evaluated >= self.budget {
                StopReason::BudgetExhausted
            } else {
                StopReason::PortfolioExhausted
            }
        };

        let mut incumbent: Option<Incumbent> = None;
        let mut entry_bests: Vec<Option<Incumbent>> = vec![None; self.portfolio.len()];
        let mut trajectory: Vec<TrajectoryPoint> = Vec::new();
        let mut evaluated = 0usize;
        let mut batches = 0usize;
        let mut stalled = 0usize;
        let mut next_g = 0usize;
        let stop;

        'search: loop {
            if ctrl.interrupted() {
                stop = StopReason::Cancelled;
                break;
            }
            let mut batch: Vec<(usize, Strategy)> = Vec::with_capacity(self.batch_size);
            // Terminates: the stream holds at least `effective_budget`
            // distinct positions, and `evaluated + batch.len()` is bounded
            // by it.
            while batch.len() < self.batch_size && evaluated + batch.len() < effective_budget {
                let g = next_g;
                next_g += 1;
                if g / self.portfolio.len() >= distinct[g % self.portfolio.len()] {
                    continue; // this entry has no further distinct candidates
                }
                batch.push((g, self.candidate(g)));
            }
            if batch.is_empty() {
                stop = exhausted(evaluated);
                break;
            }
            let evaluations = evaluate_batch(&batch)?;
            if evaluations.len() != batch.len() {
                return Err(CoreError::Remote {
                    code: "E_REMOTE".to_string(),
                    message: format!(
                        "search `{}`: evaluator returned {} evaluations for a batch of {}",
                        self.name,
                        evaluations.len(),
                        batch.len()
                    ),
                });
            }

            let mut improved = false;
            for ((g, strategy), evaluation) in batch.iter().zip(evaluations) {
                let evaluation = evaluation?;
                evaluated += 1;
                let value = self.objective.value(&evaluation);
                let entry = g % self.portfolio.len();
                let candidate = Incumbent {
                    candidate: *g,
                    entry: entry as u64,
                    strategy: strategy.clone(),
                    value,
                    evaluation,
                };
                if entry_bests[entry]
                    .as_ref()
                    .map_or(true, |best| value < best.value)
                {
                    entry_bests[entry] = Some(candidate.clone());
                }
                if incumbent.as_ref().map_or(true, |best| value < best.value) {
                    trajectory.push(TrajectoryPoint {
                        evaluation: *g as u64,
                        value,
                    });
                    ctrl.emit(&ProgressEvent::IncumbentImproved {
                        name: &self.name,
                        candidate: *g,
                        value,
                        strategy,
                    });
                    incumbent = Some(candidate);
                    improved = true;
                }
                if let (Some(target), Some(best)) = (self.target, &incumbent) {
                    if best.value <= target {
                        batches += 1;
                        self.emit_batch(ctrl, batches, evaluated, &incumbent);
                        stop = StopReason::TargetReached;
                        break 'search;
                    }
                }
            }
            batches += 1;
            self.emit_batch(ctrl, batches, evaluated, &incumbent);
            stalled = if improved { 0 } else { stalled + 1 };
            if evaluated >= effective_budget {
                stop = exhausted(evaluated);
                break;
            }
            if self.patience > 0 && stalled >= self.patience {
                stop = StopReason::Converged;
                break;
            }
        }

        Ok(SearchOutcome {
            interrupted: stop == StopReason::Cancelled,
            cache: CacheStats::default(),
            report: SearchReport {
                name: self.name.clone(),
                objective: self.objective,
                factory: self.factory,
                evaluations: evaluated,
                batches,
                stop,
                incumbent,
                trajectory,
                entry_bests: entry_bests.into_iter().flatten().collect(),
            },
        })
    }

    /// Emits one `SearchBatchFinished` event.
    fn emit_batch(
        &self,
        ctrl: &RunControl<'_>,
        batch: usize,
        evaluated: usize,
        incumbent: &Option<Incumbent>,
    ) {
        ctrl.emit(&ProgressEvent::SearchBatchFinished {
            name: &self.name,
            batch,
            evaluated,
            incumbent: incumbent.as_ref().map(|i| i.value),
        });
    }

    fn evaluate_candidate(
        &self,
        resolved: &ResolvedStrategy,
        strategy: &Strategy,
        factory: &Factory,
        cache: Option<&EvalCache>,
    ) -> Result<Evaluation> {
        let layout = resolved.map(strategy, factory)?;
        let effective = effective_factory(factory, &layout)?;
        let simulate = |engine: &mut msfu_sim::SimEngine| {
            evaluate_mapped_with(
                engine,
                &effective,
                &layout,
                strategy.short_name(),
                &self.eval,
            )
        };
        match cache {
            Some(cache) => cache.get_or_compute(
                evaluation_key(&self.factory, &layout, &self.eval),
                strategy.short_name(),
                || with_thread_engine(self.eval.sim, simulate),
            ),
            None => with_thread_engine(self.eval.sim, simulate),
        }
    }

    /// Decodes a search declared as JSON data.
    ///
    /// The document mirrors [`SweepSpec::from_json`](crate::SweepSpec) for
    /// the shared pieces (`eval`, `factory`, strategy objects) and adds:
    /// `objective` (`"latency"`/`"volume"`), `budget`, `batch_size`,
    /// `patience`, `target`, `seed`, and `portfolio` — an array of
    /// `{label?, strategy, ladder?, seeded?}` entries whose `ladder` is an
    /// array of parameter-override objects.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Spec`] naming the offending field.
    pub fn from_json(text: &str) -> Result<Self> {
        let root = serde_json::from_str(text).map_err(|e| CoreError::Spec {
            reason: format!("search spec is not valid JSON: {e}"),
        })?;
        Self::from_value(&root)
    }

    /// Decodes an already-parsed search-spec document — the embedded form
    /// used by the service protocol, where the spec is one field of a
    /// request object.
    ///
    /// # Errors
    ///
    /// As [`SearchSpec::from_json`].
    pub fn from_value(root: &Value) -> Result<Self> {
        let fail = |reason: String| CoreError::Spec { reason };
        let str_field = |key: &str| match root.get(key) {
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(fail(format!("search: `{key}` must be a string"))),
            None => Ok(None),
        };
        let u64_field = |key: &str| match root.get(key) {
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| fail(format!("search: `{key}` must be a non-negative integer"))),
            None => Ok(None),
        };
        let name = str_field("name")?.ok_or_else(|| fail("search: missing `name`".to_string()))?;
        let eval = match root.get("eval") {
            Some(v) => eval_from_json(v)?,
            None => EvaluationConfig::default(),
        };
        let factory = root
            .get("factory")
            .ok_or_else(|| fail("search: missing `factory`".to_string()))
            .and_then(factory_from_json)?;
        let mut spec = SearchSpec::new(name, eval, factory);
        if let Some(objective) = str_field("objective")? {
            spec.objective = Objective::from_name(&objective).ok_or_else(|| {
                fail(format!(
                    "search: unknown objective `{objective}` (expected latency or volume)"
                ))
            })?;
        }
        if let Some(budget) = u64_field("budget")? {
            spec.budget = budget as usize;
        }
        if let Some(batch) = u64_field("batch_size")? {
            spec.batch_size = batch as usize;
        }
        if let Some(patience) = u64_field("patience")? {
            spec.patience = patience as usize;
        }
        spec.target = u64_field("target")?;
        if let Some(seed) = u64_field("seed")? {
            spec.seed = seed;
        }
        match root.get("cache") {
            None => {}
            Some(Value::Bool(b)) => spec.use_eval_cache = *b,
            Some(_) => return Err(fail("search: `cache` must be a boolean".to_string())),
        }
        match root.get("cache_dir") {
            None => {}
            Some(Value::Str(dir)) => spec.cache_dir = Some(std::path::PathBuf::from(dir)),
            Some(_) => return Err(fail("search: `cache_dir` must be a string".to_string())),
        }
        if let Value::Object(entries) = root {
            for (key, _) in entries {
                if !matches!(
                    key.as_str(),
                    "name"
                        | "eval"
                        | "factory"
                        | "objective"
                        | "budget"
                        | "batch_size"
                        | "patience"
                        | "target"
                        | "seed"
                        | "cache"
                        | "cache_dir"
                        | "portfolio"
                ) {
                    return Err(fail(format!("search: unknown field `{key}`")));
                }
            }
        }
        let portfolio = root
            .get("portfolio")
            .and_then(Value::as_array)
            .ok_or_else(|| fail("search: missing `portfolio` array".to_string()))?;
        for (i, entry) in portfolio.iter().enumerate() {
            let ctx = format!("portfolio[{i}]");
            if let Value::Object(fields) = entry {
                for (key, _) in fields {
                    if !matches!(key.as_str(), "label" | "strategy" | "ladder" | "seeded") {
                        return Err(fail(format!("{ctx}: unknown field `{key}`")));
                    }
                }
            } else {
                return Err(fail(format!("{ctx}: expected an object")));
            }
            let template = entry
                .get("strategy")
                .ok_or_else(|| fail(format!("{ctx}: missing `strategy`")))
                .and_then(strategy_from_json)?;
            let label = match entry.get("label") {
                Some(Value::Str(s)) => s.clone(),
                Some(_) => return Err(fail(format!("{ctx}: `label` must be a string"))),
                None => template.short_name().to_string(),
            };
            let ladder = match entry.get("ladder") {
                None => Vec::new(),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| fail(format!("{ctx}: `ladder` must be an array")))?
                    .iter()
                    .map(params_from_json)
                    .collect::<Result<_>>()?,
            };
            let seeded = match entry.get("seeded") {
                None => true,
                Some(Value::Bool(b)) => *b,
                Some(_) => return Err(fail(format!("{ctx}: `seeded` must be a boolean"))),
            };
            spec.portfolio.push(PortfolioEntry {
                label,
                template,
                ladder,
                seeded,
            });
        }
        Ok(spec)
    }
}

/// A best-so-far candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Incumbent {
    /// Global candidate index (order in the deterministic stream).
    pub candidate: usize,
    /// Index of the portfolio entry the candidate came from.
    pub entry: u64,
    /// The concrete strategy (key + resolved parameters).
    pub strategy: Strategy,
    /// Objective value.
    pub value: u64,
    /// Full evaluation record.
    pub evaluation: Evaluation,
}

impl Serialize for Incumbent {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("candidate".to_string(), Value::UInt(self.candidate as u64)),
            ("entry".to_string(), Value::UInt(self.entry)),
            ("strategy".to_string(), self.strategy.to_value()),
            ("value".to_string(), Value::UInt(self.value)),
            ("evaluation".to_string(), self.evaluation.to_value()),
        ])
    }
}

/// One improvement of the incumbent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TrajectoryPoint {
    /// Candidate index at which the improvement happened.
    pub evaluation: u64,
    /// The new incumbent objective value.
    pub value: u64,
}

/// The outcome of a controllable search run: the report, plus whether the
/// run was interrupted (cancelled or past its deadline) before stopping on
/// its own.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchOutcome {
    /// The search report (its [`SearchReport::stop`] is
    /// [`StopReason::Cancelled`] when `interrupted`).
    pub report: SearchReport,
    /// `true` when the run stopped at a batch boundary before finishing.
    pub interrupted: bool,
    /// Evaluation-cache counters of this run (all zero when the cache is
    /// disabled). Each distinct key misses exactly once — racing workers
    /// serialize on the slot's compute guard, so late arrivals count as hits
    /// — and the report itself is identical for serial, parallel, cached and
    /// uncached runs.
    pub cache: CacheStats,
}

/// The outcome of a portfolio search.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchReport {
    /// The search's name.
    pub name: String,
    /// The minimised objective.
    pub objective: Objective,
    /// The factory configuration searched over.
    pub factory: FactoryConfig,
    /// Number of candidates evaluated.
    pub evaluations: usize,
    /// Number of batches executed.
    pub batches: usize,
    /// Why the search ended.
    pub stop: StopReason,
    /// The best candidate found (`None` only for an unreachable empty run —
    /// validation requires budget ≥ 1, so a completed search always has one).
    pub incumbent: Option<Incumbent>,
    /// Incumbent improvements in candidate order.
    pub trajectory: Vec<TrajectoryPoint>,
    /// The best candidate of every portfolio entry that produced one.
    pub entry_bests: Vec<Incumbent>,
}

impl SearchReport {
    /// Renders the report as [`SweepResults`] rows so search outputs plug
    /// into the existing report tooling (`bench-diff` gating, JSON reports):
    /// one `portfolio/<label>` row per entry best plus an `incumbent` row.
    pub fn to_sweep_results(&self) -> SweepResults {
        let mut rows: Vec<SweepRow> = self
            .entry_bests
            .iter()
            .map(|best| SweepRow {
                label: "portfolio".to_string(),
                evaluation: best.evaluation.clone(),
                breakdown: None,
                metrics: None,
            })
            .collect();
        if let Some(incumbent) = &self.incumbent {
            rows.push(SweepRow {
                label: "incumbent".to_string(),
                evaluation: incumbent.evaluation.clone(),
                breakdown: None,
                metrics: None,
            });
        }
        SweepResults {
            name: self.name.clone(),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_sim::SimConfig;

    fn quick_spec() -> SearchSpec {
        let eval = EvaluationConfig::default().with_sim(SimConfig::dimension_ordered());
        let mut spec = SearchSpec::new("t", eval, FactoryConfig::single_level(2));
        spec.budget = 12;
        spec.batch_size = 4;
        spec.patience = 2;
        spec.portfolio = vec![
            PortfolioEntry::fixed(Strategy::linear()),
            PortfolioEntry::seed_scan(Strategy::random(1)).with_ladder(vec![
                MapperParams::new(),
                MapperParams::new().with_f64("expansion", 1.5),
            ]),
        ];
        spec
    }

    #[test]
    fn parallel_and_serial_searches_are_identical() {
        let spec = quick_spec();
        let parallel = spec.run().unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn incumbent_is_the_minimum_of_all_entry_bests() {
        let report = quick_spec().run().unwrap();
        let incumbent = report.incumbent.as_ref().unwrap();
        let min = report
            .entry_bests
            .iter()
            .map(|b| b.value)
            .min()
            .expect("entries produced candidates");
        assert_eq!(incumbent.value, min);
        // Trajectory is strictly decreasing and ends at the incumbent.
        for pair in report.trajectory.windows(2) {
            assert!(pair[1].value < pair[0].value);
        }
        assert_eq!(report.trajectory.last().unwrap().value, incumbent.value);
    }

    #[test]
    fn budget_caps_evaluations() {
        let mut spec = quick_spec();
        spec.patience = 0; // never converge
        spec.budget = 5;
        spec.batch_size = 4;
        let report = spec.run().unwrap();
        assert_eq!(report.evaluations, 5);
        assert_eq!(report.stop, StopReason::BudgetExhausted);
        assert_eq!(report.batches, 2);
    }

    #[test]
    fn target_stops_the_search_early() {
        let mut spec = quick_spec();
        spec.target = Some(u64::MAX); // any candidate reaches it
        let report = spec.run().unwrap();
        assert_eq!(report.stop, StopReason::TargetReached);
        assert_eq!(report.evaluations, 1);
    }

    #[test]
    fn convergence_respects_patience() {
        let mut spec = quick_spec();
        // Two unseeded ladder rungs produce identical layouts (only the
        // grid expansion rounds to the same side), so batch 2 cannot
        // improve on batch 1 and patience 1 converges the search.
        spec.portfolio = vec![PortfolioEntry::fixed(Strategy::random(5)).with_ladder(vec![
            MapperParams::new().with_f64("expansion", 1.0),
            MapperParams::new().with_f64("expansion", 1.001),
            MapperParams::new().with_f64("expansion", 1.002),
        ])];
        spec.batch_size = 1;
        spec.patience = 1;
        spec.budget = 100;
        let report = spec.run().unwrap();
        assert_eq!(report.stop, StopReason::Converged);
        // Batch 1 improves; batch 2 stalls.
        assert_eq!(report.evaluations, 2);
    }

    #[test]
    fn fixed_entries_are_evaluated_exactly_once() {
        let mut spec = quick_spec();
        spec.portfolio = vec![PortfolioEntry::fixed(Strategy::linear())];
        spec.batch_size = 4;
        spec.patience = 0;
        spec.budget = 100;
        let report = spec.run().unwrap();
        // One distinct candidate exists; the search must not re-simulate it.
        assert_eq!(report.evaluations, 1);
        assert_eq!(report.stop, StopReason::PortfolioExhausted);
    }

    #[test]
    fn paper_portfolio_contains_the_full_lineup_as_first_candidates() {
        let seed = 42;
        let portfolio = SearchSpec::paper_portfolio(seed);
        let candidate_zeros: Vec<Strategy> = portfolio
            .iter()
            .map(|e| e.candidate(0, seed).with_label(e.template.short_name()))
            .collect();
        for lineup in Strategy::paper_lineup(seed) {
            assert!(
                candidate_zeros.contains(&lineup),
                "{} missing from the portfolio's first round",
                lineup.short_name()
            );
        }
    }

    #[test]
    fn empty_portfolio_and_zero_budget_are_spec_errors() {
        let mut spec = quick_spec();
        spec.portfolio.clear();
        assert!(spec.run().is_err());
        let mut spec = quick_spec();
        spec.budget = 0;
        assert!(spec.run().is_err());
        let mut spec = quick_spec();
        spec.batch_size = 0;
        assert!(spec.run().is_err());
    }

    #[test]
    fn seeded_entries_vary_their_seed_per_candidate() {
        let entry = PortfolioEntry::seed_scan(Strategy::random(10));
        let a = entry.candidate(0, 0);
        let b = entry.candidate(1, 0);
        assert_eq!(a.params().get("seed"), Some(&ParamValue::U64(10)));
        assert_eq!(b.params().get("seed"), Some(&ParamValue::U64(11)));
        // Ladder cycling composes with seeding.
        let laddered = entry.with_ladder(vec![
            MapperParams::new(),
            MapperParams::new().with_f64("expansion", 1.5),
        ]);
        let c = laddered.candidate(3, 0);
        assert_eq!(c.params().get("expansion"), Some(&ParamValue::F64(1.5)));
        assert_eq!(c.params().get("seed"), Some(&ParamValue::U64(13)));
    }

    #[test]
    fn search_spec_parses_from_json() {
        let json = r#"{
            "name": "smoke",
            "eval": {"routing": "dimension-ordered"},
            "factory": {"k": 2},
            "objective": "latency",
            "budget": 6,
            "batch_size": 3,
            "patience": 1,
            "seed": 9,
            "portfolio": [
                {"strategy": {"strategy": "linear"}, "seeded": false},
                {"label": "Rnd", "strategy": {"strategy": "random"},
                 "ladder": [{"expansion": 1.5}]}
            ]
        }"#;
        let spec = SearchSpec::from_json(json).unwrap();
        assert_eq!(spec.objective, Objective::Latency);
        assert_eq!(spec.budget, 6);
        assert_eq!(spec.portfolio.len(), 2);
        assert!(!spec.portfolio[0].seeded);
        assert_eq!(spec.portfolio[1].label, "Rnd");
        assert_eq!(spec.portfolio[1].ladder.len(), 1);
        let report = spec.run().unwrap();
        assert!(report.incumbent.is_some());

        for (bad, needle) in [
            (r#"{"factory": {"k": 2}, "portfolio": []}"#, "name"),
            (r#"{"name": "x", "portfolio": []}"#, "factory"),
            (r#"{"name": "x", "factory": {"k": 2}}"#, "portfolio"),
            (
                r#"{"name": "x", "factory": {"k": 2}, "objective": "beauty", "portfolio": []}"#,
                "objective",
            ),
            // A typo must not silently fall back to a default.
            (
                r#"{"name": "x", "factory": {"k": 2}, "bugdet": 9,
                    "portfolio": [{"strategy": {"strategy": "linear"}}]}"#,
                "bugdet",
            ),
            (
                r#"{"name": "x", "factory": {"k": 2},
                    "portfolio": [{"strategy": {"strategy": "linear"}, "sedeed": true}]}"#,
                "sedeed",
            ),
        ] {
            let err = SearchSpec::from_json(bad).expect_err("must fail");
            assert!(err.to_string().contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn report_rows_plug_into_sweep_results() {
        let report = quick_spec().run().unwrap();
        let results = report.to_sweep_results();
        assert_eq!(results.rows.len(), report.entry_bests.len() + 1);
        assert_eq!(results.rows.last().unwrap().label, "incumbent");
    }
}
