//! # msfu-core
//!
//! End-to-end pipeline of the MSFU reproduction (Ding et al., MICRO 2018):
//! build a Bravyi-Haah block-code factory, map it with one of the paper's
//! placement strategies, simulate the braid schedule on a 2-D surface-code
//! mesh, and report latency, area and space-time (quantum) volume.
//!
//! The crate glues the substrates together:
//!
//! * [`Strategy`] — mapping strategies as *registry keys*: the Table I
//!   built-ins (`Random`, `Line`, `FD`, `GP`, `HS`) plus anything added
//!   through [`register_strategy`].
//! * [`evaluate`] — one factory configuration × one strategy → an
//!   [`Evaluation`] record (realised latency, area, volume, stalls, and the
//!   critical-path lower bound).
//! * [`pipeline`] — the per-round breakdown of Fig. 3 / Fig. 9: round
//!   latencies and inter-round permutation latencies under a given layout.
//! * [`sweep`] — the parallel sweep engine: declarative
//!   `FactoryConfig × Strategy` grids executed across all cores with a shared
//!   immutable factory cache; every figure/table of the paper is a thin
//!   [`SweepSpec`] over it.
//! * [`spec`] — sweep and search specifications as JSON *data*: grids of
//!   strategies, factory configs, seeds and routing policies declared with no
//!   Rust code.
//! * [`search`] — the portfolio searcher: multi-seed batches of randomised
//!   strategies evaluated in parallel with early stopping and a best-so-far
//!   incumbent report.
//! * [`stream`] — the streaming workload: stochastic online distillation
//!   traffic (Poisson / bursty / adversarial-trace arrivals) scheduled over
//!   a fixed factory fleet by pluggable, registry-keyed schedulers, with
//!   latency-percentile / throughput / utilization reports.
//! * [`stats`] — the shared nearest-rank percentile helpers behind those
//!   reports.
//! * [`report`] — small helpers for formatting the tables the paper prints.
//! * [`serdes`] / [`persist`] — the compact binary storage codec and the
//!   on-disk persistent tier of the evaluation cache (the `"cache_dir"`
//!   spec field), which warm-starts repeated runs and serve clusters.
//!
//! # Example
//!
//! ```
//! use msfu_core::{evaluate, EvaluationConfig, Strategy};
//! use msfu_distill::FactoryConfig;
//!
//! let eval = evaluate(
//!     &FactoryConfig::single_level(2),
//!     &Strategy::linear(),
//!     &EvaluationConfig::default(),
//! )
//! .unwrap();
//! assert!(eval.latency_cycles >= eval.critical_path_cycles);
//! assert_eq!(eval.volume, eval.latency_cycles * eval.area as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
mod error;
mod evaluate;
pub mod persist;
pub mod pipeline;
pub mod progress;
pub mod report;
pub mod search;
pub mod serdes;
pub mod spec;
pub mod stats;
mod strategy;
pub mod stream;
pub mod sweep;
pub mod throughput;
pub mod wire;

pub use cache::{process_cache_stats, CacheStats, EvalCache};
pub use error::CoreError;
pub use evaluate::{
    effective_factory, evaluate, evaluate_factory, evaluate_factory_with, evaluate_mapped,
    evaluate_mapped_with, Evaluation, EvaluationConfig,
};
pub use persist::{
    compact_dir, damage_segment, verify_dir, CompactReport, PersistWarning, SegmentDamage,
    VerifyReport, NUM_BUCKETS,
};
pub use progress::{CancelToken, NoProgress, ProgressEvent, ProgressSink, RunControl};
pub use search::{
    Incumbent, Objective, PortfolioEntry, SearchOutcome, SearchReport, SearchSpec, StopReason,
    TrajectoryPoint,
};
pub use serdes::{BinCodec, CodecError, FORMAT_VERSION};
pub use stats::{nearest_rank, percentiles, Percentiles};
pub use strategy::{register_strategy, registered_strategies, ResolvedStrategy, Strategy};
pub use stream::{
    register_stream_scheduler, registered_stream_schedulers, ArrivalProcess, JobClass,
    SchedulerRegistry, SchedulerRun, StreamOutcome, StreamReport, StreamScheduler, StreamSpec,
};
pub use sweep::{
    process_batch_stats, BatchStats, SweepIndex, SweepOutcome, SweepPoint, SweepResults, SweepRow,
    SweepSpec, DEFAULT_LANES,
};

/// Convenience result alias used by fallible APIs in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
