//! Compact binary codec for cache storage.
//!
//! The persistent evaluation-cache tier ([`crate::persist`]) stores millions
//! of small `(key, Evaluation)` records; a self-describing format (JSON)
//! would spend most of each record on field names. This module provides a
//! minimal storage codec instead: [`BinCodec`] encodes values as
//! little-endian fixed-width scalars with varint-prefixed lengths and **no**
//! field names, tags or padding. JSON remains the wire format of the service
//! protocol — this codec is for on-disk storage only.
//!
//! # Format
//!
//! * `u8`/`bool`: one byte (`bool` is `0`/`1`; any other byte is a decode
//!   error).
//! * `u32`/`u64`: fixed-width little-endian.
//! * `usize`: encoded as `u64` (checked on decode, so 32-bit readers reject
//!   out-of-range values instead of truncating).
//! * `f64`: the IEEE-754 bit pattern (`to_bits`) little-endian — exact, no
//!   text round-trip loss.
//! * `String`/`Vec<T>`: varint (LEB128) element count, then the bytes /
//!   elements.
//! * `Option<T>`: one tag byte (`0` = `None`, `1` = `Some`), then the value.
//! * structs: fields in declaration order, nothing else.
//! * enums: one `u8` variant tag in declaration order.
//!
//! # Compatibility rule
//!
//! The layout is positional, so **any** change to an encoded type — a field
//! added, removed, reordered or widened; an enum variant added or reordered —
//! changes the meaning of existing bytes. Whenever such a change lands,
//! [`FORMAT_VERSION`] MUST be bumped in the same commit. Decoders never
//! attempt cross-version repair: the persistent tier skips records from any
//! other version (they are re-simulated and re-persisted under the current
//! one), so a version bump costs one cold run, while a missed bump would
//! silently mis-decode. When in doubt, bump.

use std::fmt;

/// Version byte leading every persisted record. Bump on ANY layout change to
/// an encoded type (see the module-level compatibility rule).
pub const FORMAT_VERSION: u8 = 1;

/// A decode failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum/option/bool tag byte had no corresponding variant.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran past 10 bytes (no valid `u64` does).
    VarintOverflow,
    /// A decoded integer does not fit the target type on this platform.
    OutOfRange {
        /// What was being decoded.
        what: &'static str,
    },
    /// String bytes were not valid UTF-8.
    NonUtf8String,
    /// `decode_exact` finished with input left over.
    TrailingBytes {
        /// Number of undecoded bytes.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "input ended while decoding {what}")
            }
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag byte {tag} while decoding {what}")
            }
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::OutOfRange { what } => {
                write!(f, "decoded value out of range for {what}")
            }
            CodecError::NonUtf8String => write!(f, "string bytes are not valid UTF-8"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after the value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Binary encode/decode for cache storage. See the module docs for the
/// format and the compatibility rule.
pub trait BinCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the bytes do not form a valid value.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// The encoding of `self` as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a value that must consume `input` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::TrailingBytes`] when bytes remain after the
    /// value, or any error of [`BinCodec::decode`].
    fn decode_exact(mut input: &[u8]) -> Result<Self, CodecError> {
        let value = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(value)
        } else {
            Err(CodecError::TrailingBytes {
                remaining: input.len(),
            })
        }
    }
}

/// Takes the first `n` bytes of `input`, advancing it.
fn take<'a>(input: &mut &'a [u8], n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::UnexpectedEof { what });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Appends the LEB128 varint encoding of `value`.
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `input`.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] on a truncated varint and
/// [`CodecError::VarintOverflow`] past 10 bytes.
pub fn decode_varint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut value = 0u64;
    for shift in 0..10 {
        let byte = take(input, 1, "varint")?[0];
        value |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(CodecError::VarintOverflow)
}

impl BinCodec for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(take(input, 1, "u8")?[0])
    }
}

impl BinCodec for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag { what: "bool", tag }),
        }
    }
}

impl BinCodec for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes = take(input, 4, "u32")?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

impl BinCodec for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let bytes = take(input, 8, "u64")?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

impl BinCodec for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        usize::try_from(u64::decode(input)?).map_err(|_| CodecError::OutOfRange { what: "usize" })
    }
}

impl BinCodec for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl BinCodec for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        encode_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::try_from(decode_varint(input)?).map_err(|_| CodecError::OutOfRange {
            what: "string length",
        })?;
        let bytes = take(input, len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::NonUtf8String)
    }
}

impl<T: BinCodec> BinCodec for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode_into(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1, "option tag")?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            tag => Err(CodecError::InvalidTag {
                what: "option tag",
                tag,
            }),
        }
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        encode_varint(self.len() as u64, out);
        for item in self {
            item.encode_into(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::try_from(decode_varint(input)?)
            .map_err(|_| CodecError::OutOfRange { what: "vec length" })?;
        // A corrupt length must not pre-allocate unbounded memory: the cap
        // only seeds the allocation, decoding still fails at EOF.
        let mut items = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
}

impl BinCodec for msfu_distill::ReusePolicy {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            msfu_distill::ReusePolicy::Reuse => 0,
            msfu_distill::ReusePolicy::NoReuse => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1, "ReusePolicy")?[0] {
            0 => Ok(msfu_distill::ReusePolicy::Reuse),
            1 => Ok(msfu_distill::ReusePolicy::NoReuse),
            tag => Err(CodecError::InvalidTag {
                what: "ReusePolicy",
                tag,
            }),
        }
    }
}

impl BinCodec for msfu_distill::FactoryConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.k.encode_into(out);
        self.levels.encode_into(out);
        self.reuse.encode_into(out);
        self.barriers.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(msfu_distill::FactoryConfig {
            k: usize::decode(input)?,
            levels: usize::decode(input)?,
            reuse: msfu_distill::ReusePolicy::decode(input)?,
            barriers: bool::decode(input)?,
        })
    }
}

impl BinCodec for msfu_sim::RoutingPolicy {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(match self {
            msfu_sim::RoutingPolicy::DimensionOrdered => 0,
            msfu_sim::RoutingPolicy::Adaptive => 1,
        });
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1, "RoutingPolicy")?[0] {
            0 => Ok(msfu_sim::RoutingPolicy::DimensionOrdered),
            1 => Ok(msfu_sim::RoutingPolicy::Adaptive),
            tag => Err(CodecError::InvalidTag {
                what: "RoutingPolicy",
                tag,
            }),
        }
    }
}

impl BinCodec for msfu_circuit::LatencyModel {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.single_qubit.encode_into(out);
        self.t_gate.encode_into(out);
        self.cnot.encode_into(out);
        self.cxx_per_target.encode_into(out);
        self.inject.encode_into(out);
        self.measure.encode_into(out);
        self.init.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(msfu_circuit::LatencyModel {
            single_qubit: u64::decode(input)?,
            t_gate: u64::decode(input)?,
            cnot: u64::decode(input)?,
            cxx_per_target: u64::decode(input)?,
            inject: u64::decode(input)?,
            measure: u64::decode(input)?,
            init: u64::decode(input)?,
        })
    }
}

impl BinCodec for msfu_sim::SimConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.latency.encode_into(out);
        self.routing.encode_into(out);
        self.cycle_limit.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        // SimConfig is #[non_exhaustive]; fields stay individually assignable.
        let mut config = msfu_sim::SimConfig::default();
        config.latency = msfu_circuit::LatencyModel::decode(input)?;
        config.routing = msfu_sim::RoutingPolicy::decode(input)?;
        config.cycle_limit = u64::decode(input)?;
        Ok(config)
    }
}

impl BinCodec for crate::EvaluationConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.sim.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(crate::EvaluationConfig::default().with_sim(msfu_sim::SimConfig::decode(input)?))
    }
}

impl BinCodec for crate::Evaluation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.strategy.encode_into(out);
        self.factory.encode_into(out);
        self.latency_cycles.encode_into(out);
        self.area.encode_into(out);
        self.volume.encode_into(out);
        self.stall_cycles.encode_into(out);
        self.routing_conflicts.encode_into(out);
        self.critical_path_cycles.encode_into(out);
        self.critical_volume.encode_into(out);
        self.logical_qubits.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(crate::Evaluation {
            strategy: String::decode(input)?,
            factory: msfu_distill::FactoryConfig::decode(input)?,
            latency_cycles: u64::decode(input)?,
            area: usize::decode(input)?,
            volume: u64::decode(input)?,
            stall_cycles: u64::decode(input)?,
            routing_conflicts: u64::decode(input)?,
            critical_path_cycles: u64::decode(input)?,
            critical_volume: u64::decode(input)?,
            logical_qubits: usize::decode(input)?,
        })
    }
}

impl BinCodec for crate::CacheStats {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.hits.encode_into(out);
        self.misses.encode_into(out);
        self.disk_hits.encode_into(out);
        self.loaded.encode_into(out);
        self.persisted.encode_into(out);
        self.warnings.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(crate::CacheStats {
            hits: u64::decode(input)?,
            misses: u64::decode(input)?,
            disk_hits: u64::decode(input)?,
            loaded: u64::decode(input)?,
            persisted: u64::decode(input)?,
            warnings: u64::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheStats, Evaluation, EvaluationConfig};
    use msfu_circuit::LatencyModel;
    use msfu_distill::{FactoryConfig, ReusePolicy};
    use msfu_sim::{RoutingPolicy, SimConfig};

    fn round_trip<T: BinCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let back = T::decode_exact(&bytes).expect("round-trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        for v in [0u8, 1, 0x7f, 0xff] {
            round_trip(v);
        }
        round_trip(true);
        round_trip(false);
        for v in [0u32, 1, u32::MAX] {
            round_trip(v);
        }
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(v);
        }
        for v in [0usize, 7, usize::MAX] {
            round_trip(v);
        }
        for v in [
            0.0f64,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn f64_bit_patterns_are_exact() {
        // NaN payloads compare unequal as floats but the *bits* must survive.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = nan.to_bytes();
        let back = f64::decode_exact(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
        // 0.1 has no finite decimal expansion; text formats round it.
        round_trip(0.1f64);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(String::new());
        round_trip("κ-distillation".to_string());
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(vec!["a".to_string(), String::new()]);
        round_trip(vec![Some(1u8), None]);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 0x7f, 0x80, 0x3fff, 0x4000, u64::MAX] {
            let mut out = Vec::new();
            encode_varint(v, &mut out);
            let mut slice = out.as_slice();
            assert_eq!(decode_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
        assert_eq!(u64::MAX.to_le_bytes().len(), 8);
        let mut eleven = vec![0x80u8; 11];
        let mut slice = eleven.as_mut_slice() as &[u8];
        assert_eq!(decode_varint(&mut slice), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(ReusePolicy::Reuse);
        round_trip(ReusePolicy::NoReuse);
        round_trip(RoutingPolicy::DimensionOrdered);
        round_trip(RoutingPolicy::Adaptive);
        round_trip(LatencyModel::default());
        round_trip(SimConfig::default());
        round_trip(SimConfig::dimension_ordered().with_cycle_limit(123));
        round_trip(EvaluationConfig::default().with_sim(SimConfig::dimension_ordered()));
        round_trip(FactoryConfig::two_level(3).with_reuse(ReusePolicy::NoReuse));
        round_trip(FactoryConfig::single_level(2).with_barriers(false));
        round_trip(CacheStats {
            hits: 1,
            misses: 2,
            disk_hits: 3,
            loaded: 4,
            persisted: 5,
            warnings: 6,
        });
    }

    #[test]
    fn evaluation_round_trips() {
        let evaluation = crate::evaluate(
            &FactoryConfig::single_level(2),
            &crate::Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap();
        round_trip(evaluation);
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let full = crate::evaluate(
            &FactoryConfig::single_level(2),
            &crate::Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap()
        .to_bytes();
        for cut in 0..full.len() {
            assert!(
                Evaluation::decode_exact(&full[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected_by_decode_exact() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert_eq!(
            u64::decode_exact(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn invalid_tags_are_typed_errors() {
        assert_eq!(
            bool::decode_exact(&[2]),
            Err(CodecError::InvalidTag {
                what: "bool",
                tag: 2
            })
        );
        assert!(matches!(
            ReusePolicy::decode_exact(&[9]),
            Err(CodecError::InvalidTag { .. })
        ));
        assert!(matches!(
            Option::<u8>::decode_exact(&[3]),
            Err(CodecError::InvalidTag { .. })
        ));
        assert!(String::decode_exact(&[2, 0xff, 0xfe]).is_err());
    }

    #[test]
    fn errors_display_without_panicking() {
        let errors = [
            CodecError::UnexpectedEof { what: "u64" },
            CodecError::InvalidTag {
                what: "bool",
                tag: 9,
            },
            CodecError::VarintOverflow,
            CodecError::OutOfRange { what: "usize" },
            CodecError::NonUtf8String,
            CodecError::TrailingBytes { remaining: 3 },
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }
}
