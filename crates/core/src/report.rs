//! Formatting helpers for the tables and figure-series the benchmark harness
//! prints (Table I and Figs. 6–10 of the paper).

use serde::{Deserialize, Serialize};

/// A named data series (one line of a figure): x values with matching y
/// values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. "Graph Partitioning").
    pub label: String,
    /// X coordinates (e.g. factory capacities).
    pub x: Vec<f64>,
    /// Y coordinates (e.g. latency in cycles).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A labelled table with one row per entry and one column per header, as
/// printed by the `table1` and figure binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers (the first column is the row label).
    pub headers: Vec<String>,
    /// Rows: a label plus one value per remaining header.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. `values` may contain `None` for cells the paper leaves
    /// blank (e.g. hierarchical stitching on single-level factories).
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        self.rows.push((label.into(), values));
    }

    /// Renders the table as aligned plain text with scientific-notation cells,
    /// matching the style of Table I.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i == 0 {
                header_line.push_str(&format!("{h:<14}"));
            } else {
                header_line.push_str(&format!("{h:>12}"));
            }
        }
        out.push_str(&header_line);
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:<14}"));
            for v in values {
                match v {
                    Some(x) => out.push_str(&format!("{:>12}", format_scientific(*x))),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a value in the short scientific notation used by Table I of the
/// paper (e.g. `6.53e3`); values below 1000 are printed plainly.
pub fn format_scientific(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    if value.abs() < 1000.0 {
        if (value.fract()).abs() < 1e-9 {
            return format!("{}", value as i64);
        }
        return format!("{value:.2}");
    }
    let exponent = value.abs().log10().floor() as i32;
    let mantissa = value / 10f64.powi(exponent);
    format!("{mantissa:.2}e{exponent}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("FD");
        assert!(s.is_empty());
        s.push(2.0, 100.0);
        s.push(4.0, 180.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label, "FD");
    }

    #[test]
    fn scientific_format_matches_paper_style() {
        assert_eq!(format_scientific(6530.0), "6.53e3");
        assert_eq!(format_scientific(1.19e6), "1.19e6");
        assert_eq!(format_scientific(0.0), "0");
        assert_eq!(format_scientific(42.0), "42");
        assert_eq!(format_scientific(3.5), "3.50");
    }

    #[test]
    fn table_renders_labels_values_and_blanks() {
        let mut t = Table::new(
            "Quantum volumes",
            vec!["Procedure".into(), "K=2".into(), "K=4".into()],
        );
        t.push_row("Line(R)", vec![Some(6530.0), Some(11000.0)]);
        t.push_row("HS", vec![None, Some(2.32e5)]);
        let text = t.to_text();
        assert!(text.contains("Quantum volumes"));
        assert!(text.contains("6.53e3"));
        assert!(text.contains("1.10e4"));
        assert!(text.contains("2.32e5"));
        assert!(text.contains('-'));
        assert!(text.lines().count() >= 4);
    }
}
