//! Formatting helpers for the tables and figure-series the benchmark harness
//! prints (Table I and Figs. 6–10 of the paper).

use serde::{Deserialize, Serialize};

/// A named data series (one line of a figure): x values with matching y
/// values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label (e.g. "Graph Partitioning").
    pub label: String,
    /// X coordinates (e.g. factory capacities).
    pub x: Vec<f64>,
    /// Y coordinates (e.g. latency in cycles).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A labelled table with one row per entry and one column per header, as
/// printed by the `table1` and figure binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers (the first column is the row label).
    pub headers: Vec<String>,
    /// Rows: a label plus one value per remaining header.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. `values` may contain `None` for cells the paper leaves
    /// blank (e.g. hierarchical stitching on single-level factories).
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        self.rows.push((label.into(), values));
    }

    /// Renders the table as aligned plain text with scientific-notation cells,
    /// matching the style of Table I.
    ///
    /// Alignment is content-safe: blank (`None`) and missing trailing cells
    /// render as `-` in their own column, and columns widen past the default
    /// widths (label 14, values 12) when a label, header or cell would
    /// otherwise overflow and shift every column after it.
    pub fn to_text(&self) -> String {
        let value_columns = self.headers.len().saturating_sub(1);
        // Render every cell first so column widths can account for them; rows
        // shorter than the header count are padded with blank cells so each
        // header always has a column under it.
        let rendered: Vec<(&str, Vec<String>)> = self
            .rows
            .iter()
            .map(|(label, values)| {
                let mut cells: Vec<String> = values
                    .iter()
                    .map(|v| match v {
                        Some(x) => format_scientific(*x),
                        None => "-".to_string(),
                    })
                    .collect();
                while cells.len() < value_columns {
                    cells.push("-".to_string());
                }
                (label.as_str(), cells)
            })
            .collect();
        let label_width = std::iter::once(self.headers.first().map_or(0, String::len))
            .chain(rendered.iter().map(|(label, _)| label.len()))
            .map(|w| w + 1)
            .max()
            .unwrap_or(0)
            .max(14);
        let cell_width = self
            .headers
            .iter()
            .skip(1)
            .map(String::len)
            .chain(
                rendered
                    .iter()
                    .flat_map(|(_, cells)| cells.iter().map(String::len)),
            )
            .map(|w| w + 1)
            .max()
            .unwrap_or(0)
            .max(12);

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        for (i, h) in self.headers.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{h:<label_width$}"));
            } else {
                out.push_str(&format!("{h:>cell_width$}"));
            }
        }
        out.push('\n');
        for (label, cells) in &rendered {
            out.push_str(&format!("{label:<label_width$}"));
            for cell in cells {
                out.push_str(&format!("{cell:>cell_width$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a value in the short scientific notation used by Table I of the
/// paper (e.g. `6.53e3`); values below 1000 are printed plainly.
pub fn format_scientific(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    if value.abs() < 1000.0 {
        if (value.fract()).abs() < 1e-9 {
            return format!("{}", value as i64);
        }
        return format!("{value:.2}");
    }
    let exponent = value.abs().log10().floor() as i32;
    let mantissa = value / 10f64.powi(exponent);
    format!("{mantissa:.2}e{exponent}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("FD");
        assert!(s.is_empty());
        s.push(2.0, 100.0);
        s.push(4.0, 180.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label, "FD");
    }

    #[test]
    fn scientific_format_matches_paper_style() {
        assert_eq!(format_scientific(6530.0), "6.53e3");
        assert_eq!(format_scientific(1.19e6), "1.19e6");
        assert_eq!(format_scientific(0.0), "0");
        assert_eq!(format_scientific(42.0), "42");
        assert_eq!(format_scientific(3.5), "3.50");
    }

    #[test]
    fn series_and_table_share_the_json_path_of_service_responses() {
        // Figure reports and service responses serialise through the same
        // derive; pin the wire shape so clients can rely on it.
        let mut s = Series::new("FD");
        s.push(2.0, 100.0);
        assert_eq!(
            serde_json::to_string(&s).unwrap(),
            r#"{"label":"FD","x":[2.0],"y":[100.0]}"#
        );
        let mut t = Table::new("T", vec!["P".into(), "K".into()]);
        t.push_row("Line", vec![None]);
        assert_eq!(
            serde_json::to_string(&t).unwrap(),
            r#"{"title":"T","headers":["P","K"],"rows":[["Line",[null]]]}"#
        );
    }

    #[test]
    fn default_widths_render_byte_identically_to_the_paper_style() {
        let mut t = Table::new("T", vec!["Procedure".into(), "K = 2".into()]);
        t.push_row("Line(R)", vec![Some(6530.0)]);
        t.push_row("HS", vec![None]);
        assert_eq!(
            t.to_text(),
            "# T\nProcedure            K = 2\nLine(R)             6.53e3\nHS                       -\n"
        );
    }

    #[test]
    fn blank_cells_stay_aligned_under_their_headers() {
        let mut t = Table::new("T", vec!["P".into(), "A".into(), "B".into(), "C".into()]);
        t.push_row("full", vec![Some(1.0), Some(2.0), Some(3.0)]);
        t.push_row("holes", vec![None, Some(2.0), None]);
        t.push_row("short", vec![Some(1.0)]); // missing trailing cells pad as '-'
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        let width = lines[1].len();
        for line in &lines[1..] {
            assert_eq!(line.len(), width, "misaligned row: {line:?}\n{text}");
        }
        // Every '-' sits exactly where the numbers of other rows end.
        let full = lines[2];
        let holes = lines[3];
        for (i, c) in holes.char_indices() {
            if c == '-' {
                assert_ne!(full.as_bytes()[i], b' ', "blank cell drifted\n{text}");
            }
        }
        assert_eq!(lines[4].matches('-').count(), 2, "{text}");
    }

    #[test]
    fn wide_labels_and_cells_widen_their_columns_instead_of_shifting() {
        let mut t = Table::new(
            "T",
            vec!["Procedure".into(), "K = 2".into(), "K = 4".into()],
        );
        t.push_row("a-very-long-strategy-name", vec![Some(1.0), None]);
        t.push_row("HS", vec![None, Some(2.32e5)]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        let width = lines[1].len();
        for line in &lines[1..] {
            assert_eq!(line.len(), width, "misaligned row: {line:?}\n{text}");
        }
        // Both rows' final cells end in the same column.
        assert!(lines[2].ends_with('-'));
        assert!(lines[3].ends_with("2.32e5"));
    }

    #[test]
    fn table_renders_labels_values_and_blanks() {
        let mut t = Table::new(
            "Quantum volumes",
            vec!["Procedure".into(), "K=2".into(), "K=4".into()],
        );
        t.push_row("Line(R)", vec![Some(6530.0), Some(11000.0)]);
        t.push_row("HS", vec![None, Some(2.32e5)]);
        let text = t.to_text();
        assert!(text.contains("Quantum volumes"));
        assert!(text.contains("6.53e3"));
        assert!(text.contains("1.10e4"));
        assert!(text.contains("2.32e5"));
        assert!(text.contains('-'));
        assert!(text.lines().count() >= 4);
    }
}
