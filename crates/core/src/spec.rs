//! Sweep grids declared as JSON data.
//!
//! With strategies rebased onto registry keys, an entire sweep —
//! strategies, their parameters, factory configurations, seeds and the
//! routing policy — is expressible as data, with no Rust changes. This
//! module decodes that JSON form into a [`SweepSpec`] via the workspace's
//! `serde_json` shim.
//!
//! # Format
//!
//! ```json
//! {
//!   "name": "demo",
//!   "eval": { "routing": "dimension-ordered", "cycle_limit": 50000000 },
//!   "collect_breakdowns": false,
//!   "collect_mapping_metrics": false,
//!   "points": [
//!     { "label": "hs",
//!       "factory": { "k": 2, "levels": 2 },
//!       "strategy": { "strategy": "hierarchical_stitching", "seed": 42 } }
//!   ],
//!   "grids": [
//!     { "label": "single",
//!       "factories": [ { "capacity": 4, "levels": 1, "reuse": "R" } ],
//!       "strategies": [
//!         { "strategy": "force_directed", "seed": 42, "iterations": 15 },
//!         { "strategy": "graph_partition", "seed": 42 }
//!       ] }
//!   ]
//! }
//! ```
//!
//! * `eval` (optional) — `routing` is `"adaptive"` or `"dimension-ordered"`
//!   ([`RoutingPolicy::name`]); `cycle_limit` and the per-gate `latency`
//!   model fields default to [`SimConfig::default`].
//! * `factory` / `factories` — either per-level `k` or total `capacity`
//!   (which must be an exact `levels`-th power); `levels` defaults to 1,
//!   `reuse` (`"R"`/`"NR"`, or the long spellings) to `"R"`, `barriers` to
//!   `true`.
//! * `strategy` / `strategies` — `strategy` names a registry key (built-in or
//!   custom); every other field is passed to the mapper's builder as a typed
//!   parameter, so unknown keys and type mismatches are errors, not silent
//!   defaults. An optional `label` overrides the report label (built-ins
//!   default to their Table I row names).
//! * `grids` may carry a `seeds` array: every strategy of the grid is then
//!   instantiated once per seed (innermost loop) with its `seed` parameter
//!   overridden — note the `linear` built-in takes no seed and must live in a
//!   seedless grid. A duplicated seed is a spec error (it would silently
//!   duplicate every row of the grid).
//! * `lanes` (optional, default 8) — lane-batching width of the sweep's
//!   simulation phase; `0` disables batching. Results are byte-identical at
//!   any width.
//!
//! Points are appended in document order: the `points` array first, then
//! every grid (factories × strategies × seeds). A spec decoded from JSON is
//! structurally equal ([`PartialEq`]) to the same spec built in Rust, and
//! running it produces byte-identical results.

use msfu_circuit::LatencyModel;
use msfu_distill::{FactoryConfig, ReusePolicy};
use msfu_layout::{MapperParams, ParamValue};
use msfu_sim::{RoutingPolicy, SimConfig};
use serde_json::Value;

use crate::{CoreError, EvaluationConfig, Result, Strategy, SweepSpec};

fn spec_err(reason: impl Into<String>) -> CoreError {
    CoreError::Spec {
        reason: reason.into(),
    }
}

/// The entries of `value` when it is a JSON object.
fn as_object<'a>(value: &'a Value, ctx: &str) -> Result<&'a [(String, Value)]> {
    match value {
        Value::Object(entries) => Ok(entries),
        _ => Err(spec_err(format!("{ctx}: expected an object"))),
    }
}

/// The elements of `value` when it is a JSON array.
fn as_array<'a>(value: &'a Value, ctx: &str) -> Result<&'a [Value]> {
    value
        .as_array()
        .map(Vec::as_slice)
        .ok_or_else(|| spec_err(format!("{ctx}: expected an array")))
}

fn get_str(value: &Value, key: &str, ctx: &str) -> Result<Option<String>> {
    match value.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(spec_err(format!("{ctx}: `{key}` must be a string"))),
    }
}

fn get_u64(value: &Value, key: &str, ctx: &str) -> Result<Option<u64>> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("{ctx}: `{key}` must be a non-negative integer"))),
    }
}

fn get_bool(value: &Value, key: &str, ctx: &str) -> Result<Option<bool>> {
    match value.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(spec_err(format!("{ctx}: `{key}` must be a boolean"))),
    }
}

/// Decodes a factory configuration object (see the module docs for the
/// format).
///
/// # Errors
///
/// Returns [`CoreError::Spec`] for missing/contradictory capacity fields and
/// propagates [`FactoryConfig::from_total_capacity`] errors.
pub fn factory_from_json(value: &Value) -> Result<FactoryConfig> {
    let ctx = "factory";
    as_object(value, ctx)?;
    let levels = get_u64(value, "levels", ctx)?.unwrap_or(1) as usize;
    let k = get_u64(value, "k", ctx)?;
    let capacity = get_u64(value, "capacity", ctx)?;
    let mut config = match (k, capacity) {
        (Some(k), None) => FactoryConfig::new(k as usize, levels),
        (None, Some(capacity)) => FactoryConfig::from_total_capacity(capacity as usize, levels)?,
        (Some(_), Some(_)) => {
            return Err(spec_err(format!(
                "{ctx}: give either `k` (per level) or `capacity` (total), not both"
            )))
        }
        (None, None) => return Err(spec_err(format!("{ctx}: missing `k` or `capacity`"))),
    };
    if let Some(reuse) = get_str(value, "reuse", ctx)? {
        config.reuse = match reuse.as_str() {
            "R" | "Reuse" | "reuse" => ReusePolicy::Reuse,
            "NR" | "NoReuse" | "no-reuse" => ReusePolicy::NoReuse,
            other => {
                return Err(spec_err(format!(
                    "{ctx}: unknown reuse policy `{other}` (expected R or NR)"
                )))
            }
        };
    }
    if let Some(barriers) = get_bool(value, "barriers", ctx)? {
        config.barriers = barriers;
    }
    for (key, _) in as_object(value, ctx)? {
        if !matches!(
            key.as_str(),
            "k" | "capacity" | "levels" | "reuse" | "barriers"
        ) {
            return Err(spec_err(format!("{ctx}: unknown field `{key}`")));
        }
    }
    Ok(config)
}

/// Converts one JSON value into a typed mapper parameter. Non-negative
/// integers become `U64` (seeds, counts), everything else numeric becomes
/// `F64`.
fn param_value_from_json(field: &str, value: &Value, ctx: &str) -> Result<ParamValue> {
    match value {
        Value::UInt(u) => Ok(ParamValue::U64(*u)),
        Value::Int(i) if *i >= 0 => Ok(ParamValue::U64(*i as u64)),
        Value::Int(i) => Ok(ParamValue::F64(*i as f64)),
        Value::Float(f) => Ok(ParamValue::F64(*f)),
        Value::Bool(b) => Ok(ParamValue::Bool(*b)),
        Value::Str(s) => Ok(ParamValue::Str(s.clone())),
        _ => Err(spec_err(format!(
            "{ctx}: parameter `{field}` must be a number, boolean or string"
        ))),
    }
}

/// Decodes a JSON object into a [`MapperParams`] bag (every field becomes a
/// typed parameter — used for ladder entries of a search portfolio).
///
/// # Errors
///
/// Returns [`CoreError::Spec`] when the value is not an object of scalars.
pub fn params_from_json(value: &Value) -> Result<MapperParams> {
    let ctx = "params";
    let mut params = MapperParams::new();
    for (field, v) in as_object(value, ctx)? {
        params.set(field.clone(), param_value_from_json(field, v, ctx)?);
    }
    Ok(params)
}

/// The Table I labels the built-in registry keys default to, mirroring the
/// [`Strategy`] constructors.
fn default_label(key: &str, params: &MapperParams) -> Option<&'static str> {
    match key {
        "random" => Some(if params.get("expansion").is_some() {
            "Random+S"
        } else {
            "Random"
        }),
        "linear" => Some("Line"),
        "force_directed" => Some("FD"),
        "graph_partition" => Some("GP"),
        "hierarchical_stitching" => Some("HS"),
        _ => None,
    }
}

/// Decodes a strategy object: `strategy` names the registry key, `label`
/// optionally overrides the report label, every other field becomes a typed
/// mapper parameter.
///
/// # Errors
///
/// Returns [`CoreError::Spec`] for a missing key or a parameter value that
/// is not a number, boolean or string. (An *unknown* registry key or
/// parameter name only surfaces when the strategy is built, because the
/// registry is open — the key may be registered after parsing.)
pub fn strategy_from_json(value: &Value) -> Result<Strategy> {
    let ctx = "strategy";
    let entries = as_object(value, ctx)?;
    let key = get_str(value, "strategy", ctx)?
        .ok_or_else(|| spec_err(format!("{ctx}: missing `strategy` (the registry key)")))?;
    let label = get_str(value, "label", ctx)?;
    let mut params = MapperParams::new();
    for (field, v) in entries {
        if field == "strategy" || field == "label" {
            continue;
        }
        params.set(field.clone(), param_value_from_json(field, v, ctx)?);
    }
    let label = label
        .or_else(|| default_label(&key, &params).map(str::to_string))
        .unwrap_or_else(|| key.clone());
    Ok(Strategy::new(key, params).with_label(label))
}

/// Decodes an evaluation configuration object (`routing`, `cycle_limit` and
/// optional `latency` model overrides).
///
/// # Errors
///
/// Returns [`CoreError::Spec`] on unknown routing policies or fields.
pub fn eval_from_json(value: &Value) -> Result<EvaluationConfig> {
    let ctx = "eval";
    let mut sim = SimConfig::default();
    if let Some(routing) = get_str(value, "routing", ctx)? {
        sim.routing = match routing.as_str() {
            "adaptive" => RoutingPolicy::Adaptive,
            "dimension-ordered" => RoutingPolicy::DimensionOrdered,
            other => {
                return Err(spec_err(format!(
                    "{ctx}: unknown routing policy `{other}` (expected adaptive or \
                     dimension-ordered)"
                )))
            }
        };
    }
    if let Some(limit) = get_u64(value, "cycle_limit", ctx)? {
        sim.cycle_limit = limit;
    }
    if let Some(latency) = value.get("latency") {
        sim.latency = latency_from_json(latency)?;
    }
    for (key, _) in as_object(value, ctx)? {
        if !matches!(key.as_str(), "routing" | "cycle_limit" | "latency") {
            return Err(spec_err(format!("{ctx}: unknown field `{key}`")));
        }
    }
    Ok(EvaluationConfig::default().with_sim(sim))
}

fn latency_from_json(value: &Value) -> Result<LatencyModel> {
    let ctx = "eval.latency";
    let mut model = LatencyModel::default();
    for (key, _) in as_object(value, ctx)? {
        let field = match key.as_str() {
            "single_qubit" => &mut model.single_qubit,
            "t_gate" => &mut model.t_gate,
            "cnot" => &mut model.cnot,
            "cxx_per_target" => &mut model.cxx_per_target,
            "inject" => &mut model.inject,
            "measure" => &mut model.measure,
            "init" => &mut model.init,
            other => return Err(spec_err(format!("{ctx}: unknown field `{other}`"))),
        };
        *field = get_u64(value, key, ctx)?.expect("key iterated from the object");
    }
    Ok(model)
}

impl SweepSpec {
    /// Decodes a sweep declared as JSON data (see the [module docs](self) for
    /// the format).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Spec`] describing the offending field on any
    /// malformed input, and propagates factory-configuration errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let root = serde_json::from_str(text)
            .map_err(|e| spec_err(format!("sweep spec is not valid JSON: {e}")))?;
        Self::from_value(&root)
    }

    /// Decodes an already-parsed sweep-spec document — the embedded form used
    /// by the service protocol, where the spec is one field of a request
    /// object.
    ///
    /// # Errors
    ///
    /// As [`SweepSpec::from_json`].
    pub fn from_value(root: &Value) -> Result<Self> {
        let ctx = "sweep";
        let name = get_str(root, "name", ctx)?
            .ok_or_else(|| spec_err(format!("{ctx}: missing `name`")))?;
        let eval = match root.get("eval") {
            Some(v) => eval_from_json(v)?,
            None => EvaluationConfig::default(),
        };
        let mut spec = SweepSpec::new(name, eval);
        if get_bool(root, "collect_breakdowns", ctx)?.unwrap_or(false) {
            spec = spec.with_breakdowns();
        }
        if get_bool(root, "collect_mapping_metrics", ctx)?.unwrap_or(false) {
            spec = spec.with_mapping_metrics();
        }
        if let Some(cache) = get_bool(root, "cache", ctx)? {
            spec = spec.with_eval_cache(cache);
        }
        if let Some(lanes) = get_u64(root, "lanes", ctx)? {
            spec = spec.with_lanes(lanes as usize);
        }
        if let Some(dir) = get_str(root, "cache_dir", ctx)? {
            spec = spec.with_cache_dir(dir);
        }
        if let Some(points) = root.get("points") {
            for (i, point) in as_array(points, "points")?.iter().enumerate() {
                let ctx = format!("points[{i}]");
                let label = get_str(point, "label", &ctx)?
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `label`")))?;
                let factory = point
                    .get("factory")
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `factory`")))
                    .and_then(factory_from_json)?;
                let strategy = point
                    .get("strategy")
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `strategy`")))
                    .and_then(strategy_from_json)?;
                spec = spec.point(label, factory, strategy);
            }
        }
        if let Some(grids) = root.get("grids") {
            for (i, grid) in as_array(grids, "grids")?.iter().enumerate() {
                let ctx = format!("grids[{i}]");
                let label = get_str(grid, "label", &ctx)?
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `label`")))?;
                let factories: Vec<FactoryConfig> = grid
                    .get("factories")
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `factories`")))
                    .and_then(|v| as_array(v, &format!("{ctx}.factories")))?
                    .iter()
                    .map(factory_from_json)
                    .collect::<Result<_>>()?;
                let strategies: Vec<Strategy> = grid
                    .get("strategies")
                    .ok_or_else(|| spec_err(format!("{ctx}: missing `strategies`")))
                    .and_then(|v| as_array(v, &format!("{ctx}.strategies")))?
                    .iter()
                    .map(strategy_from_json)
                    .collect::<Result<_>>()?;
                let seeds: Option<Vec<u64>> = match grid.get("seeds") {
                    None => None,
                    Some(v) => {
                        let seeds: Vec<u64> = as_array(v, &format!("{ctx}.seeds"))?
                            .iter()
                            .map(|s| {
                                s.as_u64().ok_or_else(|| {
                                    spec_err(format!("{ctx}.seeds: expected non-negative integers"))
                                })
                            })
                            .collect::<Result<_>>()?;
                        // A repeated seed would silently duplicate every row
                        // of the grid; reject it as a spec error instead.
                        let mut sorted = seeds.clone();
                        sorted.sort_unstable();
                        if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
                            return Err(spec_err(format!(
                                "{ctx}.seeds: duplicate seed {}",
                                dup[0]
                            )));
                        }
                        Some(seeds)
                    }
                };
                for factory in &factories {
                    for strategy in &strategies {
                        match &seeds {
                            None => spec = spec.point(label.clone(), *factory, strategy.clone()),
                            Some(seeds) => {
                                for &seed in seeds {
                                    spec = spec.point(
                                        label.clone(),
                                        *factory,
                                        strategy.clone().with_param("seed", ParamValue::U64(seed)),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        for (key, _) in as_object(root, ctx)? {
            if !matches!(
                key.as_str(),
                "name"
                    | "eval"
                    | "collect_breakdowns"
                    | "collect_mapping_metrics"
                    | "cache"
                    | "cache_dir"
                    | "lanes"
                    | "points"
                    | "grids"
            ) {
                return Err(spec_err(format!("{ctx}: unknown field `{key}`")));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_accepts_k_or_capacity() {
        let by_k =
            factory_from_json(&serde_json::from_str(r#"{"k": 4, "levels": 2}"#).unwrap()).unwrap();
        assert_eq!(by_k, FactoryConfig::two_level(4));
        let by_cap = factory_from_json(
            &serde_json::from_str(r#"{"capacity": 16, "levels": 2, "reuse": "NR"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            by_cap,
            FactoryConfig::two_level(4).with_reuse(ReusePolicy::NoReuse)
        );
        for bad in [
            r#"{"levels": 2}"#,
            r#"{"k": 2, "capacity": 4}"#,
            r#"{"k": 2, "reuse": "maybe"}"#,
            r#"{"k": 2, "unknown": 1}"#,
            r#"{"capacity": 5, "levels": 2}"#,
        ] {
            assert!(
                factory_from_json(&serde_json::from_str(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn strategies_parse_to_constructor_equivalents() {
        let cases: Vec<(&str, Strategy)> = vec![
            (r#"{"strategy": "random", "seed": 7}"#, Strategy::random(7)),
            (
                r#"{"strategy": "random", "seed": 7, "expansion": 1.5}"#,
                Strategy::random_with_slack(7, 1.5),
            ),
            (r#"{"strategy": "linear"}"#, Strategy::linear()),
            (
                r#"{"strategy": "graph_partition", "seed": 42}"#,
                Strategy::graph_partition(42),
            ),
        ];
        for (text, expected) in cases {
            let parsed = strategy_from_json(&serde_json::from_str(text).unwrap()).unwrap();
            assert_eq!(parsed, expected, "{text}");
        }
    }

    #[test]
    fn custom_labels_and_keys_pass_through() {
        let parsed = strategy_from_json(
            &serde_json::from_str(r#"{"strategy": "my_mapper", "label": "Mine", "alpha": 0.5}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(parsed.key(), "my_mapper");
        assert_eq!(parsed.short_name(), "Mine");
        assert_eq!(parsed.params().get("alpha"), Some(&ParamValue::F64(0.5)));
    }

    #[test]
    fn eval_parses_routing_and_limits() {
        let eval = eval_from_json(
            &serde_json::from_str(r#"{"routing": "dimension-ordered", "cycle_limit": 1000}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(eval.sim.routing, RoutingPolicy::DimensionOrdered);
        assert_eq!(eval.sim.cycle_limit, 1000);
        assert!(
            eval_from_json(&serde_json::from_str(r#"{"routing": "psychic"}"#).unwrap()).is_err()
        );
    }

    #[test]
    fn sweep_spec_round_trips_a_hand_built_grid() {
        let json = r#"{
            "name": "demo",
            "eval": {"routing": "dimension-ordered"},
            "grids": [
                {"label": "g",
                 "factories": [{"k": 2}, {"k": 4}],
                 "strategies": [{"strategy": "linear"},
                                 {"strategy": "random", "seed": 7}]}
            ],
            "points": [
                {"label": "hs", "factory": {"k": 2, "levels": 2},
                 "strategy": {"strategy": "hierarchical_stitching"}}
            ]
        }"#;
        let parsed = SweepSpec::from_json(json).unwrap();
        let eval = EvaluationConfig::default().with_sim(SimConfig::dimension_ordered());
        let hand = SweepSpec::new("demo", eval)
            .point(
                "hs",
                FactoryConfig::two_level(2),
                Strategy::hierarchical_stitching(Default::default()),
            )
            .grid(
                "g",
                &[
                    FactoryConfig::single_level(2),
                    FactoryConfig::single_level(4),
                ],
                |_| vec![Strategy::linear(), Strategy::random(7)],
            );
        assert_eq!(parsed, hand);
    }

    #[test]
    fn grid_seeds_multiply_strategies() {
        let json = r#"{
            "name": "seeded",
            "grids": [
                {"label": "g",
                 "factories": [{"k": 2}],
                 "strategies": [{"strategy": "random"}],
                 "seeds": [1, 2, 3]}
            ]
        }"#;
        let spec = SweepSpec::from_json(json).unwrap();
        assert_eq!(spec.points.len(), 3);
        let expected: Vec<Strategy> = [1u64, 2, 3].iter().map(|&s| Strategy::random(s)).collect();
        for (point, want) in spec.points.iter().zip(expected) {
            assert_eq!(point.strategy, want);
        }
    }

    #[test]
    fn lanes_knob_decodes_and_defaults() {
        let spec = SweepSpec::from_json(r#"{"name": "x", "lanes": 4}"#).unwrap();
        assert_eq!(spec.lanes, 4);
        let off = SweepSpec::from_json(r#"{"name": "x", "lanes": 0}"#).unwrap();
        assert_eq!(off.lanes, 0);
        let default = SweepSpec::from_json(r#"{"name": "x"}"#).unwrap();
        assert_eq!(default.lanes, crate::DEFAULT_LANES);
        assert!(SweepSpec::from_json(r#"{"name": "x", "lanes": "many"}"#).is_err());
    }

    #[test]
    fn duplicate_grid_seeds_are_rejected() {
        let json = r#"{
            "name": "seeded",
            "grids": [
                {"label": "g",
                 "factories": [{"k": 2}],
                 "strategies": [{"strategy": "random"}],
                 "seeds": [1, 2, 1]}
            ]
        }"#;
        let err = SweepSpec::from_json(json).expect_err("duplicate seeds must fail");
        let msg = err.to_string();
        assert!(msg.contains("duplicate seed 1"), "{msg}");
        assert!(msg.contains("grids[0].seeds"), "{msg}");
    }

    #[test]
    fn malformed_specs_name_the_offending_field() {
        for (bad, needle) in [
            (r#"{"eval": {}}"#, "name"),
            (r#"{"name": "x", "bogus": 1}"#, "bogus"),
            (r#"{"name": "x", "grids": [{"label": "g"}]}"#, "factories"),
            (
                r#"{"name": "x", "points": [{"label": "p", "factory": {"k": 2}}]}"#,
                "strategy",
            ),
            (r#"not json"#, "JSON"),
        ] {
            let err = SweepSpec::from_json(bad).expect_err("must fail");
            assert!(err.to_string().contains(needle), "{bad} -> {err}");
        }
    }
}
