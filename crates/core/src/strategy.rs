//! The mapping strategies evaluated by Table I of the paper.

use msfu_distill::Factory;
use msfu_layout::{
    FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, GraphPartitionMapper,
    HierarchicalStitchingMapper, Layout, LinearMapper, RandomMapper, StitchingConfig,
};

use crate::Result;

/// A qubit-mapping strategy, matching the rows of Table I.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Uniformly random placement.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// The Fowler-style hand-tuned linear baseline.
    Linear,
    /// Force-directed annealing (Section VI-B1).
    ForceDirected(ForceDirectedConfig),
    /// Recursive graph-partitioning embedding (Section VI-B2).
    GraphPartition {
        /// RNG seed.
        seed: u64,
    },
    /// Hierarchical stitching (Section VII). Port reassignment is applied when
    /// evaluation owns the factory.
    HierarchicalStitching(StitchingConfig),
}

impl Strategy {
    /// Short name matching the paper's Table I row labels.
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::Random { .. } => "Random",
            Strategy::Linear => "Line",
            Strategy::ForceDirected(_) => "FD",
            Strategy::GraphPartition { .. } => "GP",
            Strategy::HierarchicalStitching(_) => "HS",
        }
    }

    /// The default strategy line-up of the paper's evaluation, with the given
    /// seed applied to every randomised component.
    pub fn paper_lineup(seed: u64) -> Vec<Strategy> {
        vec![
            Strategy::Random { seed },
            Strategy::Linear,
            Strategy::ForceDirected(ForceDirectedConfig {
                seed,
                ..ForceDirectedConfig::default()
            }),
            Strategy::GraphPartition { seed },
            Strategy::HierarchicalStitching(StitchingConfig {
                seed,
                ..StitchingConfig::default()
            }),
        ]
    }

    /// Returns `true` for the hierarchical-stitching strategy, which benefits
    /// from mutable access to the factory (output-port reassignment).
    pub fn wants_factory_mutation(&self) -> bool {
        matches!(self, Strategy::HierarchicalStitching(_))
    }

    /// Maps a factory using this strategy. When the strategy is hierarchical
    /// stitching the factory may be rewired in place (port reassignment); all
    /// other strategies leave it untouched.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from the underlying mapper.
    pub fn map(&self, factory: &mut Factory) -> Result<Layout> {
        let layout = match self {
            Strategy::Random { seed } => RandomMapper::new(*seed).map_factory(factory)?,
            Strategy::Linear => LinearMapper::new().map_factory(factory)?,
            Strategy::ForceDirected(cfg) => {
                ForceDirectedMapper::with_config(*cfg).map_factory(factory)?
            }
            Strategy::GraphPartition { seed } => {
                GraphPartitionMapper::new(*seed).map_factory(factory)?
            }
            Strategy::HierarchicalStitching(cfg) => {
                HierarchicalStitchingMapper::with_config(*cfg).map_factory_optimized(factory)?
            }
        };
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::FactoryConfig;

    #[test]
    fn paper_lineup_has_five_strategies_with_distinct_names() {
        let lineup = Strategy::paper_lineup(1);
        assert_eq!(lineup.len(), 5);
        let names: std::collections::HashSet<_> = lineup.iter().map(|s| s.short_name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn only_stitching_wants_mutation() {
        for s in Strategy::paper_lineup(1) {
            assert_eq!(
                s.wants_factory_mutation(),
                s.short_name() == "HS",
                "{}",
                s.short_name()
            );
        }
    }

    #[test]
    fn every_strategy_maps_a_small_factory() {
        for strategy in Strategy::paper_lineup(3) {
            // Keep force-directed cheap in tests.
            let strategy = match strategy {
                Strategy::ForceDirected(mut cfg) => {
                    cfg.iterations = 3;
                    cfg.repulsion_sample = 200;
                    Strategy::ForceDirected(cfg)
                }
                other => other,
            };
            let mut factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
            let layout = strategy.map(&mut factory).unwrap();
            assert!(
                layout.mapping.is_complete(),
                "strategy {} left qubits unplaced",
                strategy.short_name()
            );
        }
    }
}
