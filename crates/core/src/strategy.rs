//! The mapping strategies evaluated by Table I of the paper.

use msfu_distill::Factory;
use msfu_layout::{
    FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, GraphPartitionMapper,
    HierarchicalStitchingMapper, Layout, LinearMapper, RandomMapper, StitchingConfig,
};

use crate::Result;

/// A qubit-mapping strategy, matching the rows of Table I.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Uniformly random placement.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Uniformly random placement on an expanded grid (the randomised mapping
    /// generator of the Fig. 6 correlation study). `expansion` ≥ 1.0 scales
    /// the grid area, leaving free cells as routing slack.
    RandomWithSlack {
        /// RNG seed.
        seed: u64,
        /// Grid-area expansion factor (clamped to ≥ 1.0 by the mapper).
        expansion: f64,
    },
    /// The Fowler-style hand-tuned linear baseline.
    Linear,
    /// Force-directed annealing (Section VI-B1).
    ForceDirected(ForceDirectedConfig),
    /// Recursive graph-partitioning embedding (Section VI-B2).
    GraphPartition {
        /// RNG seed.
        seed: u64,
    },
    /// Hierarchical stitching (Section VII). The output-port reassignment it
    /// wants is carried on the returned [`Layout`] as a
    /// [`msfu_distill::PortAssignment`] and applied by the evaluation layer.
    HierarchicalStitching(StitchingConfig),
}

impl Strategy {
    /// Short name matching the paper's Table I row labels.
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::Random { .. } | Strategy::RandomWithSlack { .. } => "Random",
            Strategy::Linear => "Line",
            Strategy::ForceDirected(_) => "FD",
            Strategy::GraphPartition { .. } => "GP",
            Strategy::HierarchicalStitching(_) => "HS",
        }
    }

    /// The default strategy line-up of the paper's evaluation, with the given
    /// seed applied to every randomised component.
    pub fn paper_lineup(seed: u64) -> Vec<Strategy> {
        vec![
            Strategy::Random { seed },
            Strategy::Linear,
            Strategy::ForceDirected(ForceDirectedConfig {
                seed,
                ..ForceDirectedConfig::default()
            }),
            Strategy::GraphPartition { seed },
            Strategy::HierarchicalStitching(StitchingConfig {
                seed,
                ..StitchingConfig::default()
            }),
        ]
    }

    /// Maps a factory using this strategy. The factory is never mutated:
    /// strategies that want the factory's output ports rewired (hierarchical
    /// stitching) record the rebinding on the returned [`Layout`], which the
    /// evaluation layer applies to a private copy before simulating.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from the underlying mapper.
    pub fn map(&self, factory: &Factory) -> Result<Layout> {
        let layout = match self {
            Strategy::Random { seed } => RandomMapper::new(*seed).map_factory(factory)?,
            Strategy::RandomWithSlack { seed, expansion } => RandomMapper::new(*seed)
                .with_expansion(*expansion)
                .map_factory(factory)?,
            Strategy::Linear => LinearMapper::new().map_factory(factory)?,
            Strategy::ForceDirected(cfg) => {
                ForceDirectedMapper::with_config(*cfg).map_factory(factory)?
            }
            Strategy::GraphPartition { seed } => {
                GraphPartitionMapper::new(*seed).map_factory(factory)?
            }
            Strategy::HierarchicalStitching(cfg) => {
                HierarchicalStitchingMapper::with_config(*cfg).map_factory(factory)?
            }
        };
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::FactoryConfig;

    #[test]
    fn paper_lineup_has_five_strategies_with_distinct_names() {
        let lineup = Strategy::paper_lineup(1);
        assert_eq!(lineup.len(), 5);
        let names: std::collections::HashSet<_> = lineup.iter().map(|s| s.short_name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn only_stitching_requests_port_rewiring() {
        let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        for s in Strategy::paper_lineup(1) {
            let s = match s {
                Strategy::ForceDirected(mut cfg) => {
                    cfg.iterations = 3;
                    cfg.repulsion_sample = 200;
                    Strategy::ForceDirected(cfg)
                }
                other => other,
            };
            let layout = s.map(&factory).unwrap();
            assert_eq!(
                layout.requires_port_rewiring(),
                s.short_name() == "HS",
                "{}",
                s.short_name()
            );
        }
    }

    #[test]
    fn every_strategy_maps_a_small_factory() {
        for strategy in Strategy::paper_lineup(3) {
            // Keep force-directed cheap in tests.
            let strategy = match strategy {
                Strategy::ForceDirected(mut cfg) => {
                    cfg.iterations = 3;
                    cfg.repulsion_sample = 200;
                    Strategy::ForceDirected(cfg)
                }
                other => other,
            };
            let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
            let layout = strategy.map(&factory).unwrap();
            assert!(
                layout.mapping.is_complete(),
                "strategy {} left qubits unplaced",
                strategy.short_name()
            );
        }
    }

    #[test]
    fn mapping_leaves_the_factory_untouched() {
        let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let before = factory.clone();
        for s in Strategy::paper_lineup(2) {
            let s = match s {
                Strategy::ForceDirected(mut cfg) => {
                    cfg.iterations = 3;
                    cfg.repulsion_sample = 200;
                    Strategy::ForceDirected(cfg)
                }
                other => other,
            };
            s.map(&factory).unwrap();
            assert_eq!(factory, before, "{} mutated the factory", s.short_name());
        }
    }
}
