//! Mapping strategies as registry keys.
//!
//! A [`Strategy`] names an entry of the process-wide mapper registry (see
//! [`register_strategy`]) plus the parameter bag to instantiate it with and a
//! short display label. The five strategies of the paper's Table I are
//! pre-registered built-ins with dedicated constructors
//! ([`Strategy::random`], [`Strategy::linear`], [`Strategy::force_directed`],
//! [`Strategy::graph_partition`], [`Strategy::hierarchical_stitching`]), but
//! the line-up is open: any mapper registered through [`register_strategy`]
//! can be swept, searched and benchmarked exactly like the built-ins, and a
//! strategy is plain *data* — constructible from a JSON sweep spec with no
//! Rust changes (see [`crate::spec`]).

use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard};

use msfu_distill::Factory;
use msfu_layout::{
    FactoryMapper, ForceDirectedConfig, Layout, MapperBuilder, MapperParams, MapperRegistry,
    ParamValue, Result as LayoutResult, StitchingConfig,
};
use serde::{Serialize, Value};

use crate::Result;

/// The process-wide strategy registry behind [`Strategy::map`].
fn global_registry() -> &'static RwLock<MapperRegistry> {
    static REGISTRY: OnceLock<RwLock<MapperRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(MapperRegistry::with_builtins()))
}

fn read_registry() -> RwLockReadGuard<'static, MapperRegistry> {
    global_registry()
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Registers a custom mapping strategy under `name` in the process-wide
/// registry, making it usable by every [`Strategy`], sweep and search in the
/// process.
///
/// # Errors
///
/// Returns [`msfu_layout::LayoutError::DuplicateMapper`] if the name is
/// already registered (the five paper built-ins are pre-registered).
///
/// # Example
///
/// ```
/// use msfu_core::{register_strategy, Strategy};
/// use msfu_layout::{FactoryMapper, LinearMapper, ParamReader};
///
/// // Idempotent in doctests: ignore the duplicate error on re-run.
/// let _ = register_strategy("linear_again", |params| {
///     ParamReader::new("linear_again", params).finish()?;
///     Ok(Box::new(LinearMapper::new()) as Box<dyn FactoryMapper>)
/// });
/// assert!(msfu_core::registered_strategies().contains(&"linear_again".to_string()));
/// ```
pub fn register_strategy(
    name: impl Into<String>,
    builder: impl Fn(&MapperParams) -> LayoutResult<Box<dyn FactoryMapper>> + Send + Sync + 'static,
) -> Result<()> {
    global_registry()
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .register(name, builder)
        .map_err(Into::into)
}

/// The names currently registered in the process-wide strategy registry,
/// sorted.
pub fn registered_strategies() -> Vec<String> {
    read_registry().names()
}

/// A qubit-mapping strategy: a registry key, its instantiation parameters and
/// a report label.
///
/// Equality is structural (same key, same label, same parameters), and the
/// whole value is plain data — no closures, no trait objects — so strategies
/// can be compared, hashed into sweep grids, serialized into reports and
/// declared in JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    key: String,
    label: String,
    params: MapperParams,
}

impl Strategy {
    /// Creates a strategy for registry entry `key` with `params`; the label
    /// defaults to the key (see [`Strategy::with_label`]).
    pub fn new(key: impl Into<String>, params: MapperParams) -> Self {
        let key = key.into();
        Strategy {
            label: key.clone(),
            key,
            params,
        }
    }

    /// Replaces the report label (the paper's Table I row name for the
    /// built-ins).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Returns the strategy with one parameter overridden (e.g. a per-batch
    /// seed in a portfolio search).
    pub fn with_param(mut self, key: impl Into<String>, value: ParamValue) -> Self {
        self.params.set(key, value);
        self
    }

    /// The registry key the strategy resolves through.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The instantiation parameters.
    pub fn params(&self) -> &MapperParams {
        &self.params
    }

    /// Short report label, matching the paper's Table I row labels for the
    /// built-in line-up ("Random", "Random+S", "Line", "FD", "GP", "HS").
    pub fn short_name(&self) -> &str {
        &self.label
    }

    /// Uniformly random placement ("Random" in Table I).
    pub fn random(seed: u64) -> Self {
        Strategy::new("random", MapperParams::new().with_u64("seed", seed)).with_label("Random")
    }

    /// Uniformly random placement on an expanded grid (the randomised mapping
    /// generator of the Fig. 6 correlation study). `expansion` ≥ 1.0 scales
    /// the grid area, leaving free cells as routing slack. Labelled
    /// "Random+S" so slack rows stay distinguishable from packed "Random"
    /// rows in sweep reports.
    pub fn random_with_slack(seed: u64, expansion: f64) -> Self {
        Strategy::new(
            "random",
            MapperParams::new()
                .with_u64("seed", seed)
                .with_f64("expansion", expansion),
        )
        .with_label("Random+S")
    }

    /// The Fowler-style hand-tuned linear baseline ("Line" in Table I).
    pub fn linear() -> Self {
        Strategy::new("linear", MapperParams::new()).with_label("Line")
    }

    /// Force-directed annealing (Section VI-B1; "FD" in Table I).
    pub fn force_directed(config: ForceDirectedConfig) -> Self {
        Strategy::new("force_directed", MapperParams::from(config)).with_label("FD")
    }

    /// Recursive graph-partitioning embedding (Section VI-B2; "GP" in
    /// Table I).
    pub fn graph_partition(seed: u64) -> Self {
        Strategy::new(
            "graph_partition",
            MapperParams::new().with_u64("seed", seed),
        )
        .with_label("GP")
    }

    /// Hierarchical stitching (Section VII; "HS" in Table I). The output-port
    /// reassignment it wants is carried on the returned [`Layout`] as a
    /// [`msfu_distill::PortAssignment`] and applied by the evaluation layer.
    pub fn hierarchical_stitching(config: StitchingConfig) -> Self {
        Strategy::new("hierarchical_stitching", MapperParams::from(config)).with_label("HS")
    }

    /// The default strategy line-up of the paper's evaluation, with the given
    /// seed applied to every randomised component.
    pub fn paper_lineup(seed: u64) -> Vec<Strategy> {
        vec![
            Strategy::random(seed),
            Strategy::linear(),
            Strategy::force_directed(ForceDirectedConfig {
                seed,
                ..ForceDirectedConfig::default()
            }),
            Strategy::graph_partition(seed),
            Strategy::hierarchical_stitching(StitchingConfig {
                seed,
                ..StitchingConfig::default()
            }),
        ]
    }

    /// Maps a factory using this strategy, resolving the mapper through the
    /// process-wide registry. The factory is never mutated: strategies that
    /// want the factory's output ports rewired (hierarchical stitching)
    /// record the rebinding on the returned [`Layout`], which the evaluation
    /// layer applies to a private copy before simulating.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown registry key or rejected parameters,
    /// and propagates mapping failures from the underlying mapper.
    pub fn map(&self, factory: &Factory) -> Result<Layout> {
        let mapper = read_registry().build(&self.key, &self.params)?;
        Ok(mapper.map_factory(factory)?)
    }

    /// Resolves the strategy's registry entry once, returning a handle that
    /// maps without re-entering the registry. Hot loops that expand one
    /// strategy template into many parameterisations — a portfolio entry's
    /// seed ladder — resolve per template instead of per candidate.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown registry key.
    pub fn resolve(&self) -> Result<ResolvedStrategy> {
        Ok(ResolvedStrategy {
            builder: read_registry().resolve(&self.key)?,
        })
    }
}

/// A pre-resolved registry entry: the shared builder of one mapper key,
/// detached from the registry lock (see [`Strategy::resolve`]).
#[derive(Clone)]
pub struct ResolvedStrategy {
    builder: Arc<MapperBuilder>,
}

impl std::fmt::Debug for ResolvedStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedStrategy").finish_non_exhaustive()
    }
}

impl ResolvedStrategy {
    /// Maps `factory` with `strategy`'s parameters through the pre-resolved
    /// builder. `strategy` must carry the key this handle was resolved from
    /// (candidates derived from the same template always do).
    ///
    /// # Errors
    ///
    /// Propagates parameter rejections and mapping failures.
    pub fn map(&self, strategy: &Strategy, factory: &Factory) -> Result<Layout> {
        let mapper = (self.builder)(strategy.params())?;
        Ok(mapper.map_factory(factory)?)
    }
}

impl Serialize for Strategy {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("strategy".to_string(), Value::Str(self.key.clone())),
            ("label".to_string(), Value::Str(self.label.clone())),
            ("params".to_string(), self.params.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::FactoryConfig;

    /// The fixture line-up with force-directed kept cheap for tests.
    fn cheap_lineup(seed: u64) -> Vec<Strategy> {
        Strategy::paper_lineup(seed)
            .into_iter()
            .map(|s| {
                if s.key() == "force_directed" {
                    Strategy::force_directed(ForceDirectedConfig {
                        seed,
                        iterations: 3,
                        repulsion_sample: 200,
                        ..ForceDirectedConfig::default()
                    })
                } else {
                    s
                }
            })
            .collect()
    }

    #[test]
    fn paper_lineup_has_five_strategies_with_distinct_names() {
        let lineup = Strategy::paper_lineup(1);
        assert_eq!(lineup.len(), 5);
        let names: std::collections::HashSet<_> = lineup.iter().map(|s| s.short_name()).collect();
        assert_eq!(names.len(), 5);
        let keys: std::collections::HashSet<_> = lineup.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn slack_variant_is_labelled_distinctly_from_packed_random() {
        let packed = Strategy::random(1);
        let slack = Strategy::random_with_slack(1, 1.5);
        assert_eq!(packed.short_name(), "Random");
        assert_eq!(slack.short_name(), "Random+S");
        assert_eq!(packed.key(), slack.key());
        assert_ne!(packed, slack);
    }

    #[test]
    fn only_stitching_requests_port_rewiring() {
        let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        for s in cheap_lineup(1) {
            let layout = s.map(&factory).unwrap();
            assert_eq!(
                layout.requires_port_rewiring(),
                s.short_name() == "HS",
                "{}",
                s.short_name()
            );
        }
    }

    #[test]
    fn every_strategy_maps_a_small_factory() {
        for strategy in cheap_lineup(3) {
            let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
            let layout = strategy.map(&factory).unwrap();
            assert!(
                layout.mapping.is_complete(),
                "strategy {} left qubits unplaced",
                strategy.short_name()
            );
        }
    }

    #[test]
    fn mapping_leaves_the_factory_untouched() {
        let factory = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let before = factory.clone();
        for s in cheap_lineup(2) {
            s.map(&factory).unwrap();
            assert_eq!(factory, before, "{} mutated the factory", s.short_name());
        }
    }

    #[test]
    fn unknown_key_surfaces_a_registry_error() {
        let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
        let err = Strategy::new("no_such_mapper", MapperParams::new())
            .map(&factory)
            .expect_err("unknown key fails");
        assert!(err.to_string().contains("no_such_mapper"), "{err}");
        assert!(err.to_string().contains("linear"), "{err}");
    }

    #[test]
    fn registered_custom_strategy_is_mappable() {
        use msfu_layout::{LinearMapper, ParamReader};
        // Global registry: register once, tolerate re-runs in the same
        // process.
        let _ = register_strategy("test_custom_linear", |params| {
            ParamReader::new("test_custom_linear", params).finish()?;
            Ok(Box::new(LinearMapper::new()) as Box<dyn FactoryMapper>)
        });
        assert!(registered_strategies().contains(&"test_custom_linear".to_string()));

        let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
        let custom = Strategy::new("test_custom_linear", MapperParams::new());
        let builtin = Strategy::linear();
        assert_eq!(
            custom.map(&factory).unwrap(),
            builtin.map(&factory).unwrap()
        );
    }

    #[test]
    fn duplicate_global_registration_errors() {
        let _ = register_strategy("test_dup", |params| {
            msfu_layout::ParamReader::new("test_dup", params).finish()?;
            Ok(Box::new(msfu_layout::LinearMapper::new()) as Box<dyn FactoryMapper>)
        });
        let second = register_strategy("test_dup", |params| {
            msfu_layout::ParamReader::new("test_dup", params).finish()?;
            Ok(Box::new(msfu_layout::LinearMapper::new()) as Box<dyn FactoryMapper>)
        });
        assert!(second.is_err());
    }
}
