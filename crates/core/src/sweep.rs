//! The parallel sweep engine: declarative grids of
//! `FactoryConfig × Strategy` points evaluated with a shared factory cache.
//!
//! The paper's entire evaluation (Figs. 6–10, Table I) is a grid sweep over
//! factory capacity, level count, reuse policy, mapping strategy and seed.
//! This module turns such a sweep into data: a [`SweepSpec`] lists the points
//! once, and [`SweepSpec::run`] executes them in parallel with each distinct
//! [`FactoryConfig`] built exactly once and shared (immutably, via `Arc`)
//! across every strategy and seed that maps it. Strategies never mutate the
//! factory — port-rewiring decisions travel on the layout as a
//! `PortAssignment` and are applied to a private copy per point — which is
//! what makes the sharing sound.
//!
//! Results are deterministic: [`SweepSpec::run`] and [`SweepSpec::run_serial`]
//! produce identical [`SweepResults`] regardless of thread count or
//! interleaving, because every point's evaluation is a pure function of the
//! point and row order follows point order.
//!
//! # Example
//!
//! ```
//! use msfu_core::{EvaluationConfig, Strategy, SweepSpec};
//! use msfu_distill::FactoryConfig;
//!
//! let results = SweepSpec::new("demo", EvaluationConfig::default())
//!     .point("a", FactoryConfig::single_level(2), Strategy::linear())
//!     .point("b", FactoryConfig::single_level(2), Strategy::random(1))
//!     .run()
//!     .unwrap();
//! assert_eq!(results.rows.len(), 2);
//! // The linear baseline beats random placement on volume.
//! assert!(results.rows[0].evaluation.volume < results.rows[1].evaluation.volume);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use msfu_distill::{Factory, FactoryConfig};
use msfu_graph::{metrics::MappingMetrics, InteractionGraph};
use msfu_layout::Layout;
use msfu_sim::{BatchLane, SimEngine, MAX_LANES};

use crate::cache::{evaluation_key, open_eval_cache, CacheStats, EvalCache};
use crate::evaluate::{
    effective_factory, evaluate_mapped_with, with_thread_batch_engine, with_thread_engine,
};
use crate::pipeline::{per_round_breakdown_with, RoundBreakdown};
use crate::progress::{ProgressEvent, RunControl};
use crate::{CoreError, Evaluation, EvaluationConfig, Result, Strategy};

/// Points evaluated per parallel batch. Cancellation and deadlines are
/// honoured between batches, so this bounds how much work a cancelled sweep
/// still finishes; it is a fixed constant (not thread-count derived) so the
/// progress-event stream of a given spec is identical on every machine.
const SWEEP_BATCH: usize = 32;

/// Default lane-batching width of a [`SweepSpec`]: compatible points are
/// simulated up to this many at a time through one
/// [`BatchEngine`](msfu_sim::BatchEngine).
pub const DEFAULT_LANES: usize = 8;

/// One point of a sweep grid: map `factory` with `strategy` and simulate.
///
/// `#[non_exhaustive]`: construct with [`SweepPoint::new`] (or the
/// [`SweepSpec::point`]/[`SweepSpec::grid`] builders) so new per-point knobs
/// can be added without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepPoint {
    /// Caller-chosen tag used to select rows out of the results (e.g. the
    /// figure panel the point belongs to).
    pub label: String,
    /// The factory configuration to build (deduplicated across points).
    pub factory: FactoryConfig,
    /// The mapping strategy to apply.
    pub strategy: Strategy,
}

/// A declarative sweep: an evaluation configuration plus the list of points.
///
/// `#[non_exhaustive]`: construct with [`SweepSpec::new`] and the builder
/// methods so the spec (and the JSON protocol carrying it) can grow fields
/// without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepSpec {
    /// Sweep name (carried into [`SweepResults`] and JSON reports).
    pub name: String,
    /// Simulator configuration shared by every point.
    pub eval: EvaluationConfig,
    /// The grid, in result order.
    pub points: Vec<SweepPoint>,
    /// Also simulate each round / permutation step in isolation
    /// ([`SweepRow::breakdown`]).
    pub collect_breakdowns: bool,
    /// Also compute the Fig. 6 congestion metrics of each mapping
    /// ([`SweepRow::metrics`]).
    pub collect_mapping_metrics: bool,
    /// Share one content-addressed [`EvalCache`] across the run's workers so
    /// duplicate `(factory, layout, eval config)` points simulate once.
    /// Enabled by default; results are byte-identical either way (the cache
    /// key is the full content, never a lossy hash).
    pub use_eval_cache: bool,
    /// Lane-batching width: lane-compatible points (same built factory, same
    /// grid dimensions) are simulated up to `lanes` at a time through one
    /// shared event wheel ([`BatchEngine`](msfu_sim::BatchEngine)). Rows are
    /// byte-identical at any width; `0` or `1` disables batching. Defaults to
    /// [`DEFAULT_LANES`]; values above [`MAX_LANES`] are clamped.
    pub lanes: usize,
    /// Root directory of the persistent cache tier: previously simulated
    /// evaluations load from hash-bucketed segment files under it on open,
    /// and new simulations append to them, so repeated runs — and cluster
    /// workers sharing one directory — warm each other across processes.
    /// Rows are byte-identical with or without it. `None` (default) keeps
    /// the cache memory-only; ignored when `use_eval_cache` is off.
    pub cache_dir: Option<std::path::PathBuf>,
}

/// The outcome of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The point's label.
    pub label: String,
    /// End-to-end evaluation (latency, area, volume, bounds).
    pub evaluation: Evaluation,
    /// Per-round latency breakdown, when requested.
    pub breakdown: Option<Vec<RoundBreakdown>>,
    /// Congestion metrics of the mapping, when requested.
    pub metrics: Option<MappingMetrics>,
}

/// All rows of an executed sweep, in point order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults {
    /// The sweep's name.
    pub name: String,
    /// One row per point, in the spec's point order.
    pub rows: Vec<SweepRow>,
}

/// The outcome of a controllable sweep run: the rows that completed, plus
/// whether the run was interrupted (cancelled or past its deadline) before
/// evaluating every point.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepOutcome {
    /// The completed rows, in point order — all of them when
    /// `interrupted == false`, a prefix otherwise.
    pub results: SweepResults,
    /// `true` when the run stopped at a batch boundary before finishing.
    pub interrupted: bool,
    /// Evaluation-cache counters of this run (all zero when the cache is
    /// disabled). Each distinct key misses exactly once — racing workers
    /// serialize on the slot's compute guard, so late arrivals count as hits
    /// — making the counters identical for parallel and serial runs of a
    /// completed sweep.
    pub cache: CacheStats,
    /// Lane-batching occupancy counters of this run (all zero when batching
    /// is disabled). Planning is chunk-sequential and content-addressed, so
    /// the counters are identical for parallel and serial runs of a
    /// completed sweep.
    pub batch: BatchStats,
}

/// Lane-occupancy counters of one sweep run (or of the whole process, see
/// [`process_batch_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct BatchStats {
    /// The lane width the run batched at (0 when batching was disabled).
    pub lane_capacity: usize,
    /// Batches dispatched to the batch engine (singleton groups included).
    pub batches: u64,
    /// Total lanes occupied across all batches.
    pub lanes_filled: u64,
    /// Points that occupied a batch lane.
    pub points_batched: u64,
    /// Points simulated solo (port-rewired circuits and other
    /// lane-incompatible points).
    pub points_solo: u64,
    /// Points that never occupied a lane because the evaluation cache
    /// already held (or was about to hold) their content address.
    pub points_from_cache: u64,
}

impl BatchStats {
    /// Mean fraction of lanes occupied per batch:
    /// `lanes_filled / (batches × lane_capacity)`, or 0 for an unbatched run.
    pub fn occupancy(&self) -> f64 {
        if self.batches == 0 || self.lane_capacity == 0 {
            return 0.0;
        }
        self.lanes_filled as f64 / (self.batches * self.lane_capacity as u64) as f64
    }

    /// Counter increments since `earlier` (for sampling the process-wide
    /// totals around one run). `lane_capacity` is carried from `self`.
    pub fn since(&self, earlier: &BatchStats) -> BatchStats {
        BatchStats {
            lane_capacity: self.lane_capacity,
            batches: self.batches.saturating_sub(earlier.batches),
            lanes_filled: self.lanes_filled.saturating_sub(earlier.lanes_filled),
            points_batched: self.points_batched.saturating_sub(earlier.points_batched),
            points_solo: self.points_solo.saturating_sub(earlier.points_solo),
            points_from_cache: self
                .points_from_cache
                .saturating_sub(earlier.points_from_cache),
        }
    }
}

static PROCESS_LANE_CAPACITY: AtomicU64 = AtomicU64::new(0);
static PROCESS_BATCHES: AtomicU64 = AtomicU64::new(0);
static PROCESS_LANES_FILLED: AtomicU64 = AtomicU64::new(0);
static PROCESS_POINTS_BATCHED: AtomicU64 = AtomicU64::new(0);
static PROCESS_POINTS_SOLO: AtomicU64 = AtomicU64::new(0);
static PROCESS_POINTS_FROM_CACHE: AtomicU64 = AtomicU64::new(0);

/// Cumulative lane-batching counters across every sweep of the process
/// (`lane_capacity` is the largest width any run batched at). Sample before
/// and after a run and diff with [`BatchStats::since`] to attribute counts
/// to that run.
pub fn process_batch_stats() -> BatchStats {
    BatchStats {
        lane_capacity: PROCESS_LANE_CAPACITY.load(Ordering::Relaxed) as usize,
        batches: PROCESS_BATCHES.load(Ordering::Relaxed),
        lanes_filled: PROCESS_LANES_FILLED.load(Ordering::Relaxed),
        points_batched: PROCESS_POINTS_BATCHED.load(Ordering::Relaxed),
        points_solo: PROCESS_POINTS_SOLO.load(Ordering::Relaxed),
        points_from_cache: PROCESS_POINTS_FROM_CACHE.load(Ordering::Relaxed),
    }
}

/// Folds one chunk's counter increments into the process-wide totals.
fn record_process_batch(delta: &BatchStats) {
    PROCESS_LANE_CAPACITY.fetch_max(delta.lane_capacity as u64, Ordering::Relaxed);
    PROCESS_BATCHES.fetch_add(delta.batches, Ordering::Relaxed);
    PROCESS_LANES_FILLED.fetch_add(delta.lanes_filled, Ordering::Relaxed);
    PROCESS_POINTS_BATCHED.fetch_add(delta.points_batched, Ordering::Relaxed);
    PROCESS_POINTS_SOLO.fetch_add(delta.points_solo, Ordering::Relaxed);
    PROCESS_POINTS_FROM_CACHE.fetch_add(delta.points_from_cache, Ordering::Relaxed);
}

impl SweepResults {
    /// Rows carrying the given label, in order.
    pub fn labeled<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SweepRow> {
        self.rows.iter().filter(move |r| r.label == label)
    }

    /// The first row matching label, strategy short name and total factory
    /// capacity.
    ///
    /// This is a linear scan; callers looping over table cells should build a
    /// [`SweepIndex`] once via [`SweepResults::index`] instead.
    pub fn find(&self, label: &str, strategy: &str, capacity: usize) -> Option<&SweepRow> {
        self.rows.iter().find(|r| {
            r.label == label
                && r.evaluation.strategy == strategy
                && r.evaluation.factory.capacity() == capacity
        })
    }

    /// Builds the `(label, strategy, capacity)` row index in one pass over
    /// the results, making every subsequent per-cell lookup O(1). The figure
    /// and table binaries print grids of `labels × strategies × capacities`,
    /// which a [`SweepResults::find`] per cell turns quadratic.
    pub fn index(&self) -> SweepIndex<'_> {
        let mut by_key: IndexMap<'_> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            by_key
                .entry(row.label.as_str())
                .or_default()
                .entry(row.evaluation.strategy.as_str())
                .or_default()
                .entry(row.evaluation.factory.capacity())
                .or_default()
                .push(i);
        }
        SweepIndex {
            results: self,
            by_key,
        }
    }
}

/// Nested borrowed-key maps so lookups with short-lived `&str`s allocate
/// nothing: `label -> strategy -> capacity -> row indices`.
type IndexMap<'a> = HashMap<&'a str, HashMap<&'a str, HashMap<usize, Vec<usize>>>>;

/// A one-pass index over [`SweepResults`] rows keyed by
/// `(label, strategy short name, total factory capacity)`.
#[derive(Debug)]
pub struct SweepIndex<'a> {
    results: &'a SweepResults,
    by_key: IndexMap<'a>,
}

impl<'a> SweepIndex<'a> {
    /// All rows under the key, in point order.
    pub fn rows(
        &self,
        label: &str,
        strategy: &str,
        capacity: usize,
    ) -> impl Iterator<Item = &'a SweepRow> + '_ {
        self.by_key
            .get(label)
            .and_then(|by_strategy| by_strategy.get(strategy))
            .and_then(|by_capacity| by_capacity.get(&capacity))
            .into_iter()
            .flatten()
            .map(|&i| &self.results.rows[i])
    }

    /// The first row under the key ([`SweepResults::find`], indexed).
    pub fn find(&self, label: &str, strategy: &str, capacity: usize) -> Option<&'a SweepRow> {
        self.rows(label, strategy, capacity).next()
    }

    /// Of the rows under the key, the one with the smallest quantum volume —
    /// how the paper picks each strategy's better reuse policy for its final
    /// plots (Section VIII-C1).
    pub fn best_reuse(&self, label: &str, strategy: &str, capacity: usize) -> Option<&'a SweepRow> {
        self.rows(label, strategy, capacity)
            .min_by_key(|r| r.evaluation.volume)
    }
}

impl SweepPoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, factory: FactoryConfig, strategy: Strategy) -> Self {
        SweepPoint {
            label: label.into(),
            factory,
            strategy,
        }
    }
}

impl SweepSpec {
    /// Creates an empty sweep.
    pub fn new(name: impl Into<String>, eval: EvaluationConfig) -> Self {
        SweepSpec {
            name: name.into(),
            eval,
            points: Vec::new(),
            collect_breakdowns: false,
            collect_mapping_metrics: false,
            use_eval_cache: true,
            lanes: DEFAULT_LANES,
            cache_dir: None,
        }
    }

    /// Enables or disables the shared evaluation cache (builder style). Rows
    /// are byte-identical either way; disabling only forces duplicate points
    /// to re-simulate (the reference mode of the cache-correctness tests).
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        self.use_eval_cache = enabled;
        self
    }

    /// Sets the lane-batching width (builder style). `0` or `1` disables
    /// batching; rows are byte-identical at any width.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Attaches the persistent cache tier rooted at `dir` (builder style):
    /// evaluations already on disk are served without simulating, new ones
    /// are appended. Rows are byte-identical with or without the tier.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The sub-sweep covering `points[range]` — the shard a cluster
    /// coordinator dispatches to one worker. Every other knob (eval config,
    /// cache, lanes, collection flags, name) is carried unchanged, so
    /// concatenating the rows of the slices `0..a`, `a..b`, …, `z..len` in
    /// order reproduces the full sweep's rows byte-for-byte: each row is a
    /// pure function of its point and the shared configuration.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, like slice indexing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> SweepSpec {
        let mut shard = self.clone();
        shard.points = self.points[range].to_vec();
        shard
    }

    /// Appends one point (builder style).
    pub fn point(
        mut self,
        label: impl Into<String>,
        factory: FactoryConfig,
        strategy: Strategy,
    ) -> Self {
        self.points.push(SweepPoint {
            label: label.into(),
            factory,
            strategy,
        });
        self
    }

    /// Appends the full `factories × strategies(factory)` grid under one
    /// label. The strategy list may depend on the factory (e.g. size-scaled
    /// force-directed parameters).
    pub fn grid(
        mut self,
        label: impl Into<String>,
        factories: &[FactoryConfig],
        strategies: impl Fn(&FactoryConfig) -> Vec<Strategy>,
    ) -> Self {
        let label = label.into();
        for factory in factories {
            for strategy in strategies(factory) {
                self.points.push(SweepPoint {
                    label: label.clone(),
                    factory: *factory,
                    strategy,
                });
            }
        }
        self
    }

    /// Requests per-round latency breakdowns on every row.
    pub fn with_breakdowns(mut self) -> Self {
        self.collect_breakdowns = true;
        self
    }

    /// Requests Fig. 6 congestion metrics on every row.
    pub fn with_mapping_metrics(mut self) -> Self {
        self.collect_mapping_metrics = true;
        self
    }

    /// Executes every point in parallel across the machine's cores.
    ///
    /// Each distinct `FactoryConfig` is built once, shared immutably by all
    /// points that use it. Results are in point order and identical to
    /// [`SweepSpec::run_serial`].
    ///
    /// # Errors
    ///
    /// Returns the first (in point order) factory-construction, placement or
    /// simulation error.
    pub fn run(&self) -> Result<SweepResults> {
        Ok(self.run_with(&RunControl::default())?.results)
    }

    /// [`SweepSpec::run`] under a [`RunControl`]: progress events stream to
    /// the control's sink as batches complete, and cancellation/deadline are
    /// honoured between batches of [`SWEEP_BATCH`](self) points. An
    /// interrupted run returns the rows completed so far with
    /// [`SweepOutcome::interrupted`] set, never an error.
    ///
    /// Row values are identical to [`SweepSpec::run`]; a run with the default
    /// control behaves byte-for-byte like it.
    ///
    /// # Errors
    ///
    /// Returns the first (in point order) factory-construction, placement or
    /// simulation error among the batches that ran.
    pub fn run_with(&self, ctrl: &RunControl<'_>) -> Result<SweepOutcome> {
        let total = self.points.len();
        let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
        let mut interrupted = ctrl.interrupted();
        let eval_cache = open_eval_cache(self.use_eval_cache, self.cache_dir.as_deref())?;
        let mut batch_stats = self.fresh_batch_stats();

        if !interrupted {
            // Build each distinct factory once, in parallel.
            let mut distinct: Vec<FactoryConfig> = Vec::new();
            for p in &self.points {
                if !distinct.contains(&p.factory) {
                    distinct.push(p.factory);
                }
            }
            let built: Vec<crate::Result<Arc<FactoryEntry>>> = distinct
                .par_iter()
                .map(|config| Ok(Arc::new(FactoryEntry::build(config)?)))
                .collect();
            let mut cache: FactoryCache = HashMap::new();
            for (config, entry) in distinct.iter().zip(built) {
                cache.insert(*config, entry?);
            }

            for chunk in self.points.chunks(SWEEP_BATCH) {
                if ctrl.interrupted() {
                    interrupted = true;
                    break;
                }
                let batch: Vec<crate::Result<SweepRow>> = if self.lanes > 1 {
                    let entries: Vec<Result<Arc<FactoryEntry>>> = chunk
                        .iter()
                        .map(|point| {
                            Ok(cache
                                .get(&point.factory)
                                .expect("every point's config was pre-built")
                                .clone())
                        })
                        .collect();
                    self.evaluate_chunk_batched(
                        chunk,
                        &entries,
                        eval_cache.as_ref(),
                        &mut batch_stats,
                        true,
                    )
                } else {
                    chunk
                        .par_iter()
                        .map(|point| {
                            let entry = cache
                                .get(&point.factory)
                                .expect("every point's config was pre-built")
                                .clone();
                            // Each worker thread reuses one simulator engine
                            // across every point it evaluates (arena reuse;
                            // results are unaffected).
                            with_thread_engine(self.eval.sim, |engine| {
                                self.evaluate_point(point, &entry, engine, eval_cache.as_ref())
                            })
                        })
                        .collect()
                };
                for row in batch {
                    let index = rows.len();
                    rows.push(row?);
                    ctrl.emit(&ProgressEvent::RowCompleted {
                        name: &self.name,
                        index,
                        total,
                        row: &rows[index],
                    });
                }
                ctrl.emit(&ProgressEvent::BatchFinished {
                    name: &self.name,
                    completed: rows.len(),
                    total,
                });
            }
        }

        Ok(SweepOutcome {
            results: SweepResults {
                name: self.name.clone(),
                rows,
            },
            interrupted,
            cache: eval_cache.map(|c| c.stats()).unwrap_or_default(),
            batch: batch_stats,
        })
    }

    /// Executes every point sequentially on the calling thread (reference
    /// implementation for determinism tests, and a baseline for measuring the
    /// parallel speedup). The factory cache applies here too.
    ///
    /// # Errors
    ///
    /// Returns the first factory-construction, placement or simulation error.
    pub fn run_serial(&self) -> Result<SweepResults> {
        Ok(self.run_serial_with(&RunControl::default())?.results)
    }

    /// [`SweepSpec::run_serial`] under a [`RunControl`]: rows stream to the
    /// control's sink as each point completes, and cancellation/deadline are
    /// honoured between points (a serial "batch" is one point).
    ///
    /// The calling thread's simulator engine is reused across calls, so a
    /// long-lived process (e.g. `msfu serve`) pays the arena allocations
    /// once, not per job.
    ///
    /// # Errors
    ///
    /// Returns the first factory-construction, placement or simulation error
    /// among the points that ran.
    pub fn run_serial_with(&self, ctrl: &RunControl<'_>) -> Result<SweepOutcome> {
        if self.lanes > 1 {
            return self.run_serial_batched_with(ctrl);
        }
        let total = self.points.len();
        let mut cache: FactoryCache = HashMap::new();
        let eval_cache = open_eval_cache(self.use_eval_cache, self.cache_dir.as_deref())?;
        with_thread_engine(self.eval.sim, |engine| {
            let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
            let mut interrupted = false;
            for point in &self.points {
                if ctrl.interrupted() {
                    interrupted = true;
                    break;
                }
                let entry = self.entry_for(&mut cache, point.factory)?;
                let index = rows.len();
                rows.push(self.evaluate_point(point, &entry, engine, eval_cache.as_ref())?);
                ctrl.emit(&ProgressEvent::RowCompleted {
                    name: &self.name,
                    index,
                    total,
                    row: &rows[index],
                });
            }
            ctrl.emit(&ProgressEvent::BatchFinished {
                name: &self.name,
                completed: rows.len(),
                total,
            });
            Ok(SweepOutcome {
                results: SweepResults {
                    name: self.name.clone(),
                    rows,
                },
                interrupted,
                cache: eval_cache.map(|c| c.stats()).unwrap_or_default(),
                batch: BatchStats::default(),
            })
        })
    }

    /// [`SweepSpec::run_serial_with`] when lane batching is on: chunks are
    /// planned exactly like the parallel run (same groups, same counters) but
    /// every group and solo point simulates on the calling thread.
    /// Cancellation is honoured between chunks and between row emissions, so
    /// a cancelled run still streams the same row prefix the unbatched serial
    /// path would.
    fn run_serial_batched_with(&self, ctrl: &RunControl<'_>) -> Result<SweepOutcome> {
        let total = self.points.len();
        let mut cache: FactoryCache = HashMap::new();
        let eval_cache = open_eval_cache(self.use_eval_cache, self.cache_dir.as_deref())?;
        let mut batch_stats = self.fresh_batch_stats();
        let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
        let mut interrupted = false;
        'chunks: for chunk in self.points.chunks(SWEEP_BATCH) {
            if ctrl.interrupted() {
                interrupted = true;
                break;
            }
            let entries: Vec<Result<Arc<FactoryEntry>>> = chunk
                .iter()
                .map(|point| self.entry_for(&mut cache, point.factory))
                .collect();
            let batch = self.evaluate_chunk_batched(
                chunk,
                &entries,
                eval_cache.as_ref(),
                &mut batch_stats,
                false,
            );
            for row in batch {
                if ctrl.interrupted() {
                    interrupted = true;
                    break 'chunks;
                }
                let index = rows.len();
                rows.push(row?);
                ctrl.emit(&ProgressEvent::RowCompleted {
                    name: &self.name,
                    index,
                    total,
                    row: &rows[index],
                });
            }
        }
        ctrl.emit(&ProgressEvent::BatchFinished {
            name: &self.name,
            completed: rows.len(),
            total,
        });
        Ok(SweepOutcome {
            results: SweepResults {
                name: self.name.clone(),
                rows,
            },
            interrupted,
            cache: eval_cache.map(|c| c.stats()).unwrap_or_default(),
            batch: batch_stats,
        })
    }

    /// Zeroed run-level counters carrying this spec's effective lane width.
    fn fresh_batch_stats(&self) -> BatchStats {
        BatchStats {
            lane_capacity: if self.lanes > 1 {
                self.lanes.min(MAX_LANES)
            } else {
                0
            },
            ..BatchStats::default()
        }
    }

    fn entry_for(
        &self,
        cache: &mut FactoryCache,
        config: FactoryConfig,
    ) -> Result<Arc<FactoryEntry>> {
        if let Some(entry) = cache.get(&config) {
            return Ok(entry.clone());
        }
        let entry = Arc::new(FactoryEntry::build(&config)?);
        cache.insert(config, entry.clone());
        Ok(entry)
    }

    /// Evaluates one point against a shared, immutable factory, simulating
    /// through the caller's reusable engine. With a cache, the mapping phase
    /// always runs (it produces the content address) but the simulation of a
    /// duplicate `(factory, layout, eval)` is answered from the shared map.
    fn evaluate_point(
        &self,
        point: &SweepPoint,
        entry: &FactoryEntry,
        engine: &mut SimEngine,
        cache: Option<&EvalCache>,
    ) -> Result<SweepRow> {
        let factory = &entry.factory;
        let layout = point.strategy.map(factory)?;
        let effective = effective_factory(factory, &layout)?;
        let simulate = |engine: &mut SimEngine| {
            evaluate_mapped_with(
                engine,
                &effective,
                &layout,
                point.strategy.short_name(),
                &self.eval,
            )
        };
        let evaluation = match cache {
            Some(cache) => cache.get_or_compute(
                evaluation_key(factory.config(), &layout, &self.eval),
                point.strategy.short_name(),
                || simulate(engine),
            )?,
            None => simulate(engine)?,
        };
        let breakdown = if self.collect_breakdowns {
            Some(per_round_breakdown_with(
                engine,
                &effective,
                &layout,
                &self.eval.sim,
            )?)
        } else {
            None
        };
        let metrics = if self.collect_mapping_metrics {
            // The interaction graph depends only on the circuit, so points
            // sharing an unrewired factory share one lazily built graph; a
            // port-rewired circuit differs and gets its own.
            let computed;
            let graph = if layout.requires_port_rewiring() {
                computed = InteractionGraph::from_circuit(effective.circuit());
                &computed
            } else {
                entry
                    .graph
                    .get_or_init(|| InteractionGraph::from_circuit(factory.circuit()))
            };
            Some(MappingMetrics::compute(graph, &layout.mapping.to_points()))
        } else {
            None
        };
        Ok(SweepRow {
            label: point.label.clone(),
            evaluation,
            breakdown,
            metrics,
        })
    }

    /// Maps one point: layout, rewired factory copy (for port-rewiring
    /// strategies) and content address (when the evaluation cache is on).
    fn map_point(&self, point: &SweepPoint, entry: &FactoryEntry) -> Result<MappedPoint> {
        let layout = point.strategy.map(&entry.factory)?;
        let rewired = if layout.requires_port_rewiring() {
            Some(entry.factory.apply_port_assignment(&layout.ports)?)
        } else {
            None
        };
        let key = self
            .use_eval_cache
            .then(|| evaluation_key(entry.factory.config(), &layout, &self.eval));
        Ok(MappedPoint {
            layout,
            rewired,
            key,
        })
    }

    /// Evaluates one chunk with lane batching: maps every point, plans
    /// lane-compatible groups, simulates each group through one
    /// [`BatchEngine`](msfu_sim::BatchEngine), then finalizes rows in point
    /// order through the same cache accounting as the unbatched path — so
    /// rows, errors and cache counters are byte-identical to it.
    fn evaluate_chunk_batched(
        &self,
        chunk: &[SweepPoint],
        entries: &[Result<Arc<FactoryEntry>>],
        eval_cache: Option<&EvalCache>,
        stats: &mut BatchStats,
        parallel: bool,
    ) -> Vec<Result<SweepRow>> {
        let len = chunk.len();
        let indices: Vec<usize> = (0..len).collect();

        // Phase A: map every point. The mapping phase always runs (it
        // produces the content address), exactly as in the unbatched path.
        let map_one = |i: usize| -> Result<MappedPoint> {
            let entry = entries[i].as_ref().map_err(Clone::clone)?;
            self.map_point(&chunk[i], entry)
        };
        let mapped: Vec<Result<MappedPoint>> = if parallel {
            indices.par_iter().map(|&i| map_one(i)).collect()
        } else {
            indices.iter().map(|&i| map_one(i)).collect()
        };

        // Phase B: plan lanes, sequentially in point order so the grouping
        // (and the counters) are identical for serial and parallel runs. The
        // first occurrence of each cacheable key gets a lane; chunk-internal
        // duplicates follow that lane; keys the cache already holds never
        // occupy a lane; port-rewired points simulate a private circuit and
        // go solo.
        let before = *stats;
        let lane_cap = self.lanes.min(MAX_LANES);
        let mut roles: Vec<Option<PointRole>> = vec![None; len];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut open: HashMap<(usize, usize, usize), usize> = HashMap::new();
        let mut seen: HashSet<&str> = HashSet::new();
        for i in 0..len {
            let Ok(entry) = entries[i].as_ref() else {
                continue;
            };
            let Ok(m) = mapped[i].as_ref() else {
                continue;
            };
            if let (Some(cache), Some(key)) = (eval_cache, m.key.as_deref()) {
                if seen.contains(key) {
                    roles[i] = Some(PointRole::Follower);
                    stats.points_from_cache += 1;
                    continue;
                }
                if cache.peek(key) {
                    roles[i] = Some(PointRole::Cached);
                    stats.points_from_cache += 1;
                    continue;
                }
            }
            let gates = entry.factory.circuit().num_gates() as u64;
            if m.rewired.is_some() || (lane_cap as u64).saturating_mul(gates) > u64::from(u32::MAX)
            {
                roles[i] = Some(PointRole::Solo);
                stats.points_solo += 1;
                continue;
            }
            let group_key = (
                Arc::as_ptr(entry) as usize,
                m.layout.mapping.width(),
                m.layout.mapping.height(),
            );
            let slot = match open.get(&group_key) {
                Some(&gi) if groups[gi].len() < lane_cap => gi,
                _ => {
                    groups.push(Vec::new());
                    let gi = groups.len() - 1;
                    open.insert(group_key, gi);
                    gi
                }
            };
            groups[slot].push(i);
            roles[i] = Some(PointRole::Lane);
            stats.points_batched += 1;
            if let Some(key) = m.key.as_deref() {
                seen.insert(key);
            }
        }
        stats.batches += groups.len() as u64;
        for members in &groups {
            stats.lanes_filled += members.len() as u64;
        }
        record_process_batch(&stats.since(&before));

        // Phase C: simulate each group through one shared event wheel. The
        // Evaluation assembly mirrors `evaluate_mapped_with` field for field;
        // the batch engine guarantees each lane's SimResult is byte-identical
        // to a solo run.
        let simulate_group = |members: &Vec<usize>| -> Vec<(usize, Result<Evaluation>)> {
            let first = members[0];
            let entry = entries[first]
                .as_ref()
                .expect("grouped points have a factory");
            let factory = &entry.factory;
            let circuit = factory.circuit();
            let critical_path_cycles = circuit.critical_path_cycles(&self.eval.sim.latency);
            let logical_qubits = factory.num_qubits();
            let lanes: Vec<BatchLane<'_>> = members
                .iter()
                .map(|&i| {
                    BatchLane::new(&mapped[i].as_ref().expect("grouped points mapped").layout)
                })
                .collect();
            let outcome = with_thread_batch_engine(self.eval.sim, |batch_engine| {
                batch_engine.run(circuit, &lanes)
            });
            match outcome {
                Err(e) => members
                    .iter()
                    .map(|&i| (i, Err(CoreError::from(e.clone()))))
                    .collect(),
                Ok(results) => members
                    .iter()
                    .zip(results)
                    .map(|(&i, lane)| {
                        let evaluation = lane
                            .map(|sim| Evaluation {
                                strategy: chunk[i].strategy.short_name().to_string(),
                                factory: *factory.config(),
                                latency_cycles: sim.cycles,
                                area: sim.area,
                                volume: sim.volume(),
                                stall_cycles: sim.stall_cycles,
                                routing_conflicts: sim.routing_conflicts,
                                critical_path_cycles,
                                critical_volume: critical_path_cycles * logical_qubits as u64,
                                logical_qubits,
                            })
                            .map_err(CoreError::from);
                        (i, evaluation)
                    })
                    .collect(),
            }
        };
        let group_results: Vec<Vec<(usize, Result<Evaluation>)>> = if parallel {
            groups.par_iter().map(simulate_group).collect()
        } else {
            groups.iter().map(simulate_group).collect()
        };
        let mut lane_eval: Vec<Option<Result<Evaluation>>> = vec![None; len];
        for (i, evaluation) in group_results.into_iter().flatten() {
            lane_eval[i] = Some(evaluation);
        }

        // Follower points clone their lane's result through the cache.
        let mut by_key: HashMap<&str, usize> = HashMap::new();
        for i in 0..len {
            if matches!(roles[i], Some(PointRole::Lane)) {
                if let Ok(m) = &mapped[i] {
                    if let Some(key) = m.key.as_deref() {
                        by_key.entry(key).or_insert(i);
                    }
                }
            }
        }

        // Phase D: finalize rows in point order through the exact cache
        // accounting of the unbatched path — every cacheable point goes
        // through `get_or_compute`, with the already-simulated value as its
        // compute closure, so hit/miss counters and cached values match the
        // unbatched run.
        let finalize = |i: usize, engine: &mut SimEngine| -> Result<SweepRow> {
            let point = &chunk[i];
            let entry = entries[i].as_ref().map_err(Clone::clone)?;
            let m = mapped[i].as_ref().map_err(Clone::clone)?;
            let role = roles[i].expect("mapped points were planned");
            let factory = &entry.factory;
            let effective: &Factory = m.rewired.as_ref().unwrap_or(factory);
            let name = point.strategy.short_name();
            let lane_result = |i: usize| lane_eval[i].clone().expect("lane points were simulated");
            let evaluation = match (eval_cache, m.key.clone()) {
                (Some(cache), Some(key)) => cache.get_or_compute(key, name, || match role {
                    PointRole::Lane => lane_result(i),
                    PointRole::Follower => match by_key.get(m.key.as_deref().unwrap_or_default()) {
                        Some(&lane) => lane_result(lane).map(|mut evaluation| {
                            evaluation.strategy = name.to_string();
                            evaluation
                        }),
                        // Unreachable (a follower always has a lane in its
                        // chunk); recompute solo for safety.
                        None => {
                            evaluate_mapped_with(engine, effective, &m.layout, name, &self.eval)
                        }
                    },
                    PointRole::Cached | PointRole::Solo => {
                        evaluate_mapped_with(engine, effective, &m.layout, name, &self.eval)
                    }
                })?,
                _ => match role {
                    PointRole::Lane => lane_result(i)?,
                    _ => evaluate_mapped_with(engine, effective, &m.layout, name, &self.eval)?,
                },
            };
            let breakdown = if self.collect_breakdowns {
                Some(per_round_breakdown_with(
                    engine,
                    effective,
                    &m.layout,
                    &self.eval.sim,
                )?)
            } else {
                None
            };
            let metrics = if self.collect_mapping_metrics {
                let computed;
                let graph = if m.layout.requires_port_rewiring() {
                    computed = InteractionGraph::from_circuit(effective.circuit());
                    &computed
                } else {
                    entry
                        .graph
                        .get_or_init(|| InteractionGraph::from_circuit(factory.circuit()))
                };
                Some(MappingMetrics::compute(
                    graph,
                    &m.layout.mapping.to_points(),
                ))
            } else {
                None
            };
            Ok(SweepRow {
                label: point.label.clone(),
                evaluation,
                breakdown,
                metrics,
            })
        };
        if parallel {
            indices
                .par_iter()
                .map(|&i| with_thread_engine(self.eval.sim, |engine| finalize(i, engine)))
                .collect()
        } else {
            indices
                .iter()
                .map(|&i| with_thread_engine(self.eval.sim, |engine| finalize(i, engine)))
                .collect()
        }
    }
}

/// One mapped chunk point: the layout, the private rewired factory copy (for
/// port-rewiring strategies) and the content address (when caching).
struct MappedPoint {
    layout: Layout,
    rewired: Option<Factory>,
    key: Option<String>,
}

/// How one chunk point obtains its evaluation under lane batching.
#[derive(Debug, Clone, Copy)]
enum PointRole {
    /// Occupies a batch lane (first occurrence of its key in the chunk).
    Lane,
    /// Duplicate of an earlier lane point in the same chunk: answered by
    /// that lane's result through the cache.
    Follower,
    /// The evaluation cache already holds the key: never occupies a lane.
    Cached,
    /// Lane-incompatible (port-rewired circuit, or circuit × lanes would
    /// overflow the wheel's event payload): simulated alone.
    Solo,
}

/// A cached factory plus lazily derived, factory-invariant artifacts shared
/// by every point that maps it.
struct FactoryEntry {
    factory: Factory,
    graph: OnceLock<InteractionGraph>,
}

impl FactoryEntry {
    fn build(config: &FactoryConfig) -> Result<Self> {
        Ok(FactoryEntry {
            factory: Factory::build(config)?,
            graph: OnceLock::new(),
        })
    }
}

type FactoryCache = HashMap<FactoryConfig, Arc<FactoryEntry>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use msfu_distill::ReusePolicy;
    use msfu_layout::StitchingConfig;

    fn small_spec() -> SweepSpec {
        let caps = [
            FactoryConfig::single_level(2),
            FactoryConfig::single_level(4),
        ];
        SweepSpec::new("test", EvaluationConfig::default())
            .grid("g", &caps, |_| {
                vec![Strategy::linear(), Strategy::random(7)]
            })
            .point(
                "hs",
                FactoryConfig::two_level(2),
                Strategy::hierarchical_stitching(StitchingConfig::default()),
            )
    }

    #[test]
    fn grid_builder_enumerates_every_combination() {
        let spec = small_spec();
        assert_eq!(spec.points.len(), 5);
        assert_eq!(spec.points[0].label, "g");
        assert_eq!(spec.points[4].label, "hs");
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let spec = small_spec().with_breakdowns();
        let parallel = spec.run().unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn cached_factories_match_fresh_builds() {
        // The same config appears in several points; the engine builds it
        // once. Results must equal per-point fresh builds via evaluate().
        let spec = small_spec();
        let results = spec.run().unwrap();
        for (point, row) in spec.points.iter().zip(&results.rows) {
            let fresh = evaluate(&point.factory, &point.strategy, &spec.eval).unwrap();
            assert_eq!(row.evaluation, fresh, "{}", point.label);
        }
    }

    #[test]
    fn optional_collections_default_off() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::single_level(2), Strategy::linear())
            .run()
            .unwrap();
        assert!(results.rows[0].breakdown.is_none());
        assert!(results.rows[0].metrics.is_none());
    }

    #[test]
    fn mapping_metrics_are_collected_on_request() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::single_level(4), Strategy::random(3))
            .with_mapping_metrics()
            .run()
            .unwrap();
        let metrics = results.rows[0].metrics.unwrap();
        assert!(metrics.avg_edge_length > 0.0);
    }

    #[test]
    fn breakdowns_cover_every_round() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::two_level(2), Strategy::linear())
            .with_breakdowns()
            .run()
            .unwrap();
        let breakdown = results.rows[0].breakdown.as_ref().unwrap();
        assert_eq!(breakdown.len(), 2);
        assert!(breakdown[0].permutation_cycles > 0);
    }

    #[test]
    fn errors_propagate_in_point_order() {
        let spec = SweepSpec::new("t", EvaluationConfig::default())
            .point("ok", FactoryConfig::single_level(2), Strategy::linear())
            .point("bad", FactoryConfig::new(0, 1), Strategy::linear());
        assert!(spec.run().is_err());
        assert!(spec.run_serial().is_err());
    }

    #[test]
    fn find_selects_by_label_strategy_and_capacity() {
        let results = small_spec().run().unwrap();
        let row = results.find("g", "Line", 4).unwrap();
        assert_eq!(row.evaluation.factory.capacity(), 4);
        assert!(results.find("g", "HS", 4).is_none());
        assert_eq!(results.labeled("g").count(), 4);
    }

    #[test]
    fn index_agrees_with_linear_find() {
        let results = small_spec().run().unwrap();
        let index = results.index();
        for row in &results.rows {
            let key = (
                row.label.as_str(),
                row.evaluation.strategy.as_str(),
                row.evaluation.factory.capacity(),
            );
            assert_eq!(
                index.find(key.0, key.1, key.2).map(|r| r as *const _),
                results.find(key.0, key.1, key.2).map(|r| r as *const _),
            );
        }
        assert!(index.find("g", "HS", 4).is_none());
        assert_eq!(index.rows("g", "Line", 4).count(), 1);
    }

    #[test]
    fn index_best_reuse_picks_the_smaller_volume() {
        use msfu_distill::ReusePolicy;
        let base = FactoryConfig::two_level(2);
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("x", base.with_reuse(ReusePolicy::Reuse), Strategy::linear())
            .point(
                "x",
                base.with_reuse(ReusePolicy::NoReuse),
                Strategy::linear(),
            )
            .run()
            .unwrap();
        let index = results.index();
        let best = index.best_reuse("x", "Line", 4).unwrap();
        let min = results.rows.iter().map(|r| r.evaluation.volume).min();
        assert_eq!(Some(best.evaluation.volume), min);
    }

    #[test]
    fn lane_widths_do_not_change_rows() {
        // The same spec at every batching mode — off, narrow, default, wide,
        // serial — must produce byte-identical rows.
        let spec = small_spec().with_breakdowns().with_mapping_metrics();
        let reference = spec.clone().with_lanes(0).run().unwrap();
        for lanes in [2, DEFAULT_LANES, MAX_LANES] {
            let batched = spec.clone().with_lanes(lanes);
            assert_eq!(batched.run().unwrap(), reference, "parallel, {lanes} lanes");
            assert_eq!(
                batched.run_serial().unwrap(),
                reference,
                "serial, {lanes} lanes"
            );
        }
    }

    #[test]
    fn lane_widths_do_not_change_rows_without_cache() {
        let spec = small_spec().with_eval_cache(false);
        let reference = spec.clone().with_lanes(0).run().unwrap();
        assert_eq!(spec.clone().with_lanes(4).run().unwrap(), reference);
        assert_eq!(spec.with_lanes(4).run_serial().unwrap(), reference);
    }

    #[test]
    fn batch_stats_account_for_every_point() {
        let spec = small_spec();
        let outcome = spec.run_with(&RunControl::default()).unwrap();
        let stats = outcome.batch;
        assert_eq!(stats.lane_capacity, DEFAULT_LANES);
        assert_eq!(
            stats.points_batched + stats.points_solo + stats.points_from_cache,
            spec.points.len() as u64
        );
        // The HS point rewires ports and must go solo.
        assert!(stats.points_solo >= 1);
        assert!(stats.points_batched >= 1);
        assert_eq!(stats.lanes_filled, stats.points_batched);
        assert!(stats.occupancy() > 0.0 && stats.occupancy() <= 1.0);
        // Serial planning produces the same counters.
        let serial = spec.run_serial_with(&RunControl::default()).unwrap();
        assert_eq!(serial.batch, stats);
    }

    #[test]
    fn batch_stats_are_zero_when_batching_is_off() {
        let outcome = small_spec()
            .with_lanes(0)
            .run_with(&RunControl::default())
            .unwrap();
        assert_eq!(outcome.batch, BatchStats::default());
        assert_eq!(outcome.batch.occupancy(), 0.0);
    }

    #[test]
    fn duplicate_points_share_one_lane_via_the_cache() {
        // Four copies of one point: one occupies a lane, the rest follow it
        // through the eval cache, and the counters match an unbatched run.
        let mut spec = SweepSpec::new("dup", EvaluationConfig::default());
        for _ in 0..4 {
            spec = spec.point("p", FactoryConfig::single_level(2), Strategy::linear());
        }
        let outcome = spec.run_with(&RunControl::default()).unwrap();
        assert_eq!(outcome.batch.points_batched, 1);
        assert_eq!(outcome.batch.points_from_cache, 3);
        assert_eq!(
            outcome.cache,
            CacheStats {
                hits: 3,
                misses: 1,
                ..CacheStats::default()
            }
        );
        let unbatched = spec
            .clone()
            .with_lanes(0)
            .run_with(&RunControl::default())
            .unwrap();
        assert_eq!(outcome.results, unbatched.results);
        assert_eq!(outcome.cache, unbatched.cache);
    }

    #[test]
    fn batched_errors_propagate_in_point_order() {
        let spec = SweepSpec::new("t", EvaluationConfig::default())
            .point("ok", FactoryConfig::single_level(2), Strategy::linear())
            .point("bad", FactoryConfig::new(0, 1), Strategy::linear())
            .with_lanes(4);
        assert!(spec.run().is_err());
        assert!(spec.run_serial().is_err());
    }

    #[test]
    fn process_batch_counters_accumulate() {
        let before = process_batch_stats();
        let outcome = small_spec().run_with(&RunControl::default()).unwrap();
        let delta = process_batch_stats().since(&before);
        // Other tests share the process counters, so the delta is a floor.
        assert!(delta.batches >= outcome.batch.batches);
        assert!(delta.points_batched >= outcome.batch.points_batched);
        assert!(delta.lane_capacity >= DEFAULT_LANES);
    }

    #[test]
    fn reuse_policies_are_distinct_cache_keys() {
        let reuse = FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse);
        let no_reuse = FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse);
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("r", reuse, Strategy::linear())
            .point("nr", no_reuse, Strategy::linear())
            .run()
            .unwrap();
        assert!(
            results.rows[0].evaluation.logical_qubits < results.rows[1].evaluation.logical_qubits
        );
    }
}
