//! The parallel sweep engine: declarative grids of
//! `FactoryConfig × Strategy` points evaluated with a shared factory cache.
//!
//! The paper's entire evaluation (Figs. 6–10, Table I) is a grid sweep over
//! factory capacity, level count, reuse policy, mapping strategy and seed.
//! This module turns such a sweep into data: a [`SweepSpec`] lists the points
//! once, and [`SweepSpec::run`] executes them in parallel with each distinct
//! [`FactoryConfig`] built exactly once and shared (immutably, via `Arc`)
//! across every strategy and seed that maps it. Strategies never mutate the
//! factory — port-rewiring decisions travel on the layout as a
//! `PortAssignment` and are applied to a private copy per point — which is
//! what makes the sharing sound.
//!
//! Results are deterministic: [`SweepSpec::run`] and [`SweepSpec::run_serial`]
//! produce identical [`SweepResults`] regardless of thread count or
//! interleaving, because every point's evaluation is a pure function of the
//! point and row order follows point order.
//!
//! # Example
//!
//! ```
//! use msfu_core::{EvaluationConfig, Strategy, SweepSpec};
//! use msfu_distill::FactoryConfig;
//!
//! let results = SweepSpec::new("demo", EvaluationConfig::default())
//!     .point("a", FactoryConfig::single_level(2), Strategy::linear())
//!     .point("b", FactoryConfig::single_level(2), Strategy::random(1))
//!     .run()
//!     .unwrap();
//! assert_eq!(results.rows.len(), 2);
//! // The linear baseline beats random placement on volume.
//! assert!(results.rows[0].evaluation.volume < results.rows[1].evaluation.volume);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use msfu_distill::{Factory, FactoryConfig};
use msfu_graph::{metrics::MappingMetrics, InteractionGraph};
use msfu_sim::SimEngine;

use crate::cache::{evaluation_key, CacheStats, EvalCache};
use crate::evaluate::{effective_factory, evaluate_mapped_with, with_thread_engine};
use crate::pipeline::{per_round_breakdown_with, RoundBreakdown};
use crate::progress::{ProgressEvent, RunControl};
use crate::{Evaluation, EvaluationConfig, Result, Strategy};

/// Points evaluated per parallel batch. Cancellation and deadlines are
/// honoured between batches, so this bounds how much work a cancelled sweep
/// still finishes; it is a fixed constant (not thread-count derived) so the
/// progress-event stream of a given spec is identical on every machine.
const SWEEP_BATCH: usize = 32;

/// One point of a sweep grid: map `factory` with `strategy` and simulate.
///
/// `#[non_exhaustive]`: construct with [`SweepPoint::new`] (or the
/// [`SweepSpec::point`]/[`SweepSpec::grid`] builders) so new per-point knobs
/// can be added without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepPoint {
    /// Caller-chosen tag used to select rows out of the results (e.g. the
    /// figure panel the point belongs to).
    pub label: String,
    /// The factory configuration to build (deduplicated across points).
    pub factory: FactoryConfig,
    /// The mapping strategy to apply.
    pub strategy: Strategy,
}

/// A declarative sweep: an evaluation configuration plus the list of points.
///
/// `#[non_exhaustive]`: construct with [`SweepSpec::new`] and the builder
/// methods so the spec (and the JSON protocol carrying it) can grow fields
/// without a semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepSpec {
    /// Sweep name (carried into [`SweepResults`] and JSON reports).
    pub name: String,
    /// Simulator configuration shared by every point.
    pub eval: EvaluationConfig,
    /// The grid, in result order.
    pub points: Vec<SweepPoint>,
    /// Also simulate each round / permutation step in isolation
    /// ([`SweepRow::breakdown`]).
    pub collect_breakdowns: bool,
    /// Also compute the Fig. 6 congestion metrics of each mapping
    /// ([`SweepRow::metrics`]).
    pub collect_mapping_metrics: bool,
    /// Share one content-addressed [`EvalCache`] across the run's workers so
    /// duplicate `(factory, layout, eval config)` points simulate once.
    /// Enabled by default; results are byte-identical either way (the cache
    /// key is the full content, never a lossy hash).
    pub use_eval_cache: bool,
}

/// The outcome of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The point's label.
    pub label: String,
    /// End-to-end evaluation (latency, area, volume, bounds).
    pub evaluation: Evaluation,
    /// Per-round latency breakdown, when requested.
    pub breakdown: Option<Vec<RoundBreakdown>>,
    /// Congestion metrics of the mapping, when requested.
    pub metrics: Option<MappingMetrics>,
}

/// All rows of an executed sweep, in point order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults {
    /// The sweep's name.
    pub name: String,
    /// One row per point, in the spec's point order.
    pub rows: Vec<SweepRow>,
}

/// The outcome of a controllable sweep run: the rows that completed, plus
/// whether the run was interrupted (cancelled or past its deadline) before
/// evaluating every point.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SweepOutcome {
    /// The completed rows, in point order — all of them when
    /// `interrupted == false`, a prefix otherwise.
    pub results: SweepResults,
    /// `true` when the run stopped at a batch boundary before finishing.
    pub interrupted: bool,
    /// Evaluation-cache counters of this run (all zero when the cache is
    /// disabled). Each distinct key misses exactly once — racing workers
    /// serialize on the slot's compute guard, so late arrivals count as hits
    /// — making the counters identical for parallel and serial runs of a
    /// completed sweep.
    pub cache: CacheStats,
}

impl SweepResults {
    /// Rows carrying the given label, in order.
    pub fn labeled<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SweepRow> {
        self.rows.iter().filter(move |r| r.label == label)
    }

    /// The first row matching label, strategy short name and total factory
    /// capacity.
    ///
    /// This is a linear scan; callers looping over table cells should build a
    /// [`SweepIndex`] once via [`SweepResults::index`] instead.
    pub fn find(&self, label: &str, strategy: &str, capacity: usize) -> Option<&SweepRow> {
        self.rows.iter().find(|r| {
            r.label == label
                && r.evaluation.strategy == strategy
                && r.evaluation.factory.capacity() == capacity
        })
    }

    /// Builds the `(label, strategy, capacity)` row index in one pass over
    /// the results, making every subsequent per-cell lookup O(1). The figure
    /// and table binaries print grids of `labels × strategies × capacities`,
    /// which a [`SweepResults::find`] per cell turns quadratic.
    pub fn index(&self) -> SweepIndex<'_> {
        let mut by_key: IndexMap<'_> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            by_key
                .entry(row.label.as_str())
                .or_default()
                .entry(row.evaluation.strategy.as_str())
                .or_default()
                .entry(row.evaluation.factory.capacity())
                .or_default()
                .push(i);
        }
        SweepIndex {
            results: self,
            by_key,
        }
    }
}

/// Nested borrowed-key maps so lookups with short-lived `&str`s allocate
/// nothing: `label -> strategy -> capacity -> row indices`.
type IndexMap<'a> = HashMap<&'a str, HashMap<&'a str, HashMap<usize, Vec<usize>>>>;

/// A one-pass index over [`SweepResults`] rows keyed by
/// `(label, strategy short name, total factory capacity)`.
#[derive(Debug)]
pub struct SweepIndex<'a> {
    results: &'a SweepResults,
    by_key: IndexMap<'a>,
}

impl<'a> SweepIndex<'a> {
    /// All rows under the key, in point order.
    pub fn rows(
        &self,
        label: &str,
        strategy: &str,
        capacity: usize,
    ) -> impl Iterator<Item = &'a SweepRow> + '_ {
        self.by_key
            .get(label)
            .and_then(|by_strategy| by_strategy.get(strategy))
            .and_then(|by_capacity| by_capacity.get(&capacity))
            .into_iter()
            .flatten()
            .map(|&i| &self.results.rows[i])
    }

    /// The first row under the key ([`SweepResults::find`], indexed).
    pub fn find(&self, label: &str, strategy: &str, capacity: usize) -> Option<&'a SweepRow> {
        self.rows(label, strategy, capacity).next()
    }

    /// Of the rows under the key, the one with the smallest quantum volume —
    /// how the paper picks each strategy's better reuse policy for its final
    /// plots (Section VIII-C1).
    pub fn best_reuse(&self, label: &str, strategy: &str, capacity: usize) -> Option<&'a SweepRow> {
        self.rows(label, strategy, capacity)
            .min_by_key(|r| r.evaluation.volume)
    }
}

impl SweepPoint {
    /// Creates a point.
    pub fn new(label: impl Into<String>, factory: FactoryConfig, strategy: Strategy) -> Self {
        SweepPoint {
            label: label.into(),
            factory,
            strategy,
        }
    }
}

impl SweepSpec {
    /// Creates an empty sweep.
    pub fn new(name: impl Into<String>, eval: EvaluationConfig) -> Self {
        SweepSpec {
            name: name.into(),
            eval,
            points: Vec::new(),
            collect_breakdowns: false,
            collect_mapping_metrics: false,
            use_eval_cache: true,
        }
    }

    /// Enables or disables the shared evaluation cache (builder style). Rows
    /// are byte-identical either way; disabling only forces duplicate points
    /// to re-simulate (the reference mode of the cache-correctness tests).
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        self.use_eval_cache = enabled;
        self
    }

    /// Appends one point (builder style).
    pub fn point(
        mut self,
        label: impl Into<String>,
        factory: FactoryConfig,
        strategy: Strategy,
    ) -> Self {
        self.points.push(SweepPoint {
            label: label.into(),
            factory,
            strategy,
        });
        self
    }

    /// Appends the full `factories × strategies(factory)` grid under one
    /// label. The strategy list may depend on the factory (e.g. size-scaled
    /// force-directed parameters).
    pub fn grid(
        mut self,
        label: impl Into<String>,
        factories: &[FactoryConfig],
        strategies: impl Fn(&FactoryConfig) -> Vec<Strategy>,
    ) -> Self {
        let label = label.into();
        for factory in factories {
            for strategy in strategies(factory) {
                self.points.push(SweepPoint {
                    label: label.clone(),
                    factory: *factory,
                    strategy,
                });
            }
        }
        self
    }

    /// Requests per-round latency breakdowns on every row.
    pub fn with_breakdowns(mut self) -> Self {
        self.collect_breakdowns = true;
        self
    }

    /// Requests Fig. 6 congestion metrics on every row.
    pub fn with_mapping_metrics(mut self) -> Self {
        self.collect_mapping_metrics = true;
        self
    }

    /// Executes every point in parallel across the machine's cores.
    ///
    /// Each distinct `FactoryConfig` is built once, shared immutably by all
    /// points that use it. Results are in point order and identical to
    /// [`SweepSpec::run_serial`].
    ///
    /// # Errors
    ///
    /// Returns the first (in point order) factory-construction, placement or
    /// simulation error.
    pub fn run(&self) -> Result<SweepResults> {
        Ok(self.run_with(&RunControl::default())?.results)
    }

    /// [`SweepSpec::run`] under a [`RunControl`]: progress events stream to
    /// the control's sink as batches complete, and cancellation/deadline are
    /// honoured between batches of [`SWEEP_BATCH`](self) points. An
    /// interrupted run returns the rows completed so far with
    /// [`SweepOutcome::interrupted`] set, never an error.
    ///
    /// Row values are identical to [`SweepSpec::run`]; a run with the default
    /// control behaves byte-for-byte like it.
    ///
    /// # Errors
    ///
    /// Returns the first (in point order) factory-construction, placement or
    /// simulation error among the batches that ran.
    pub fn run_with(&self, ctrl: &RunControl<'_>) -> Result<SweepOutcome> {
        let total = self.points.len();
        let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
        let mut interrupted = ctrl.interrupted();
        let eval_cache = self.use_eval_cache.then(EvalCache::new);

        if !interrupted {
            // Build each distinct factory once, in parallel.
            let mut distinct: Vec<FactoryConfig> = Vec::new();
            for p in &self.points {
                if !distinct.contains(&p.factory) {
                    distinct.push(p.factory);
                }
            }
            let built: Vec<crate::Result<Arc<FactoryEntry>>> = distinct
                .par_iter()
                .map(|config| Ok(Arc::new(FactoryEntry::build(config)?)))
                .collect();
            let mut cache: FactoryCache = HashMap::new();
            for (config, entry) in distinct.iter().zip(built) {
                cache.insert(*config, entry?);
            }

            for chunk in self.points.chunks(SWEEP_BATCH) {
                if ctrl.interrupted() {
                    interrupted = true;
                    break;
                }
                let batch: Vec<crate::Result<SweepRow>> = chunk
                    .par_iter()
                    .map(|point| {
                        let entry = cache
                            .get(&point.factory)
                            .expect("every point's config was pre-built")
                            .clone();
                        // Each worker thread reuses one simulator engine
                        // across every point it evaluates (arena reuse;
                        // results are unaffected).
                        with_thread_engine(self.eval.sim, |engine| {
                            self.evaluate_point(point, &entry, engine, eval_cache.as_ref())
                        })
                    })
                    .collect();
                for row in batch {
                    let index = rows.len();
                    rows.push(row?);
                    ctrl.emit(&ProgressEvent::RowCompleted {
                        name: &self.name,
                        index,
                        total,
                        row: &rows[index],
                    });
                }
                ctrl.emit(&ProgressEvent::BatchFinished {
                    name: &self.name,
                    completed: rows.len(),
                    total,
                });
            }
        }

        Ok(SweepOutcome {
            results: SweepResults {
                name: self.name.clone(),
                rows,
            },
            interrupted,
            cache: eval_cache.map(|c| c.stats()).unwrap_or_default(),
        })
    }

    /// Executes every point sequentially on the calling thread (reference
    /// implementation for determinism tests, and a baseline for measuring the
    /// parallel speedup). The factory cache applies here too.
    ///
    /// # Errors
    ///
    /// Returns the first factory-construction, placement or simulation error.
    pub fn run_serial(&self) -> Result<SweepResults> {
        Ok(self.run_serial_with(&RunControl::default())?.results)
    }

    /// [`SweepSpec::run_serial`] under a [`RunControl`]: rows stream to the
    /// control's sink as each point completes, and cancellation/deadline are
    /// honoured between points (a serial "batch" is one point).
    ///
    /// The calling thread's simulator engine is reused across calls, so a
    /// long-lived process (e.g. `msfu serve`) pays the arena allocations
    /// once, not per job.
    ///
    /// # Errors
    ///
    /// Returns the first factory-construction, placement or simulation error
    /// among the points that ran.
    pub fn run_serial_with(&self, ctrl: &RunControl<'_>) -> Result<SweepOutcome> {
        let total = self.points.len();
        let mut cache: FactoryCache = HashMap::new();
        let eval_cache = self.use_eval_cache.then(EvalCache::new);
        with_thread_engine(self.eval.sim, |engine| {
            let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
            let mut interrupted = false;
            for point in &self.points {
                if ctrl.interrupted() {
                    interrupted = true;
                    break;
                }
                let entry = self.entry_for(&mut cache, point.factory)?;
                let index = rows.len();
                rows.push(self.evaluate_point(point, &entry, engine, eval_cache.as_ref())?);
                ctrl.emit(&ProgressEvent::RowCompleted {
                    name: &self.name,
                    index,
                    total,
                    row: &rows[index],
                });
            }
            ctrl.emit(&ProgressEvent::BatchFinished {
                name: &self.name,
                completed: rows.len(),
                total,
            });
            Ok(SweepOutcome {
                results: SweepResults {
                    name: self.name.clone(),
                    rows,
                },
                interrupted,
                cache: eval_cache.map(|c| c.stats()).unwrap_or_default(),
            })
        })
    }

    fn entry_for(
        &self,
        cache: &mut FactoryCache,
        config: FactoryConfig,
    ) -> Result<Arc<FactoryEntry>> {
        if let Some(entry) = cache.get(&config) {
            return Ok(entry.clone());
        }
        let entry = Arc::new(FactoryEntry::build(&config)?);
        cache.insert(config, entry.clone());
        Ok(entry)
    }

    /// Evaluates one point against a shared, immutable factory, simulating
    /// through the caller's reusable engine. With a cache, the mapping phase
    /// always runs (it produces the content address) but the simulation of a
    /// duplicate `(factory, layout, eval)` is answered from the shared map.
    fn evaluate_point(
        &self,
        point: &SweepPoint,
        entry: &FactoryEntry,
        engine: &mut SimEngine,
        cache: Option<&EvalCache>,
    ) -> Result<SweepRow> {
        let factory = &entry.factory;
        let layout = point.strategy.map(factory)?;
        let effective = effective_factory(factory, &layout)?;
        let simulate = |engine: &mut SimEngine| {
            evaluate_mapped_with(
                engine,
                &effective,
                &layout,
                point.strategy.short_name(),
                &self.eval,
            )
        };
        let evaluation = match cache {
            Some(cache) => cache.get_or_compute(
                evaluation_key(factory.config(), &layout, &self.eval),
                point.strategy.short_name(),
                || simulate(engine),
            )?,
            None => simulate(engine)?,
        };
        let breakdown = if self.collect_breakdowns {
            Some(per_round_breakdown_with(
                engine,
                &effective,
                &layout,
                &self.eval.sim,
            )?)
        } else {
            None
        };
        let metrics = if self.collect_mapping_metrics {
            // The interaction graph depends only on the circuit, so points
            // sharing an unrewired factory share one lazily built graph; a
            // port-rewired circuit differs and gets its own.
            let computed;
            let graph = if layout.requires_port_rewiring() {
                computed = InteractionGraph::from_circuit(effective.circuit());
                &computed
            } else {
                entry
                    .graph
                    .get_or_init(|| InteractionGraph::from_circuit(factory.circuit()))
            };
            Some(MappingMetrics::compute(graph, &layout.mapping.to_points()))
        } else {
            None
        };
        Ok(SweepRow {
            label: point.label.clone(),
            evaluation,
            breakdown,
            metrics,
        })
    }
}

/// A cached factory plus lazily derived, factory-invariant artifacts shared
/// by every point that maps it.
struct FactoryEntry {
    factory: Factory,
    graph: OnceLock<InteractionGraph>,
}

impl FactoryEntry {
    fn build(config: &FactoryConfig) -> Result<Self> {
        Ok(FactoryEntry {
            factory: Factory::build(config)?,
            graph: OnceLock::new(),
        })
    }
}

type FactoryCache = HashMap<FactoryConfig, Arc<FactoryEntry>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use msfu_distill::ReusePolicy;
    use msfu_layout::StitchingConfig;

    fn small_spec() -> SweepSpec {
        let caps = [
            FactoryConfig::single_level(2),
            FactoryConfig::single_level(4),
        ];
        SweepSpec::new("test", EvaluationConfig::default())
            .grid("g", &caps, |_| {
                vec![Strategy::linear(), Strategy::random(7)]
            })
            .point(
                "hs",
                FactoryConfig::two_level(2),
                Strategy::hierarchical_stitching(StitchingConfig::default()),
            )
    }

    #[test]
    fn grid_builder_enumerates_every_combination() {
        let spec = small_spec();
        assert_eq!(spec.points.len(), 5);
        assert_eq!(spec.points[0].label, "g");
        assert_eq!(spec.points[4].label, "hs");
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let spec = small_spec().with_breakdowns();
        let parallel = spec.run().unwrap();
        let serial = spec.run_serial().unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn cached_factories_match_fresh_builds() {
        // The same config appears in several points; the engine builds it
        // once. Results must equal per-point fresh builds via evaluate().
        let spec = small_spec();
        let results = spec.run().unwrap();
        for (point, row) in spec.points.iter().zip(&results.rows) {
            let fresh = evaluate(&point.factory, &point.strategy, &spec.eval).unwrap();
            assert_eq!(row.evaluation, fresh, "{}", point.label);
        }
    }

    #[test]
    fn optional_collections_default_off() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::single_level(2), Strategy::linear())
            .run()
            .unwrap();
        assert!(results.rows[0].breakdown.is_none());
        assert!(results.rows[0].metrics.is_none());
    }

    #[test]
    fn mapping_metrics_are_collected_on_request() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::single_level(4), Strategy::random(3))
            .with_mapping_metrics()
            .run()
            .unwrap();
        let metrics = results.rows[0].metrics.unwrap();
        assert!(metrics.avg_edge_length > 0.0);
    }

    #[test]
    fn breakdowns_cover_every_round() {
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("p", FactoryConfig::two_level(2), Strategy::linear())
            .with_breakdowns()
            .run()
            .unwrap();
        let breakdown = results.rows[0].breakdown.as_ref().unwrap();
        assert_eq!(breakdown.len(), 2);
        assert!(breakdown[0].permutation_cycles > 0);
    }

    #[test]
    fn errors_propagate_in_point_order() {
        let spec = SweepSpec::new("t", EvaluationConfig::default())
            .point("ok", FactoryConfig::single_level(2), Strategy::linear())
            .point("bad", FactoryConfig::new(0, 1), Strategy::linear());
        assert!(spec.run().is_err());
        assert!(spec.run_serial().is_err());
    }

    #[test]
    fn find_selects_by_label_strategy_and_capacity() {
        let results = small_spec().run().unwrap();
        let row = results.find("g", "Line", 4).unwrap();
        assert_eq!(row.evaluation.factory.capacity(), 4);
        assert!(results.find("g", "HS", 4).is_none());
        assert_eq!(results.labeled("g").count(), 4);
    }

    #[test]
    fn index_agrees_with_linear_find() {
        let results = small_spec().run().unwrap();
        let index = results.index();
        for row in &results.rows {
            let key = (
                row.label.as_str(),
                row.evaluation.strategy.as_str(),
                row.evaluation.factory.capacity(),
            );
            assert_eq!(
                index.find(key.0, key.1, key.2).map(|r| r as *const _),
                results.find(key.0, key.1, key.2).map(|r| r as *const _),
            );
        }
        assert!(index.find("g", "HS", 4).is_none());
        assert_eq!(index.rows("g", "Line", 4).count(), 1);
    }

    #[test]
    fn index_best_reuse_picks_the_smaller_volume() {
        use msfu_distill::ReusePolicy;
        let base = FactoryConfig::two_level(2);
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("x", base.with_reuse(ReusePolicy::Reuse), Strategy::linear())
            .point(
                "x",
                base.with_reuse(ReusePolicy::NoReuse),
                Strategy::linear(),
            )
            .run()
            .unwrap();
        let index = results.index();
        let best = index.best_reuse("x", "Line", 4).unwrap();
        let min = results.rows.iter().map(|r| r.evaluation.volume).min();
        assert_eq!(Some(best.evaluation.volume), min);
    }

    #[test]
    fn reuse_policies_are_distinct_cache_keys() {
        let reuse = FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse);
        let no_reuse = FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse);
        let results = SweepSpec::new("t", EvaluationConfig::default())
            .point("r", reuse, Strategy::linear())
            .point("nr", no_reuse, Strategy::linear())
            .run()
            .unwrap();
        assert!(
            results.rows[0].evaluation.logical_qubits < results.rows[1].evaluation.logical_qubits
        );
    }
}
