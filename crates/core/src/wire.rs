//! Wire codecs for sharded (multi-worker) execution.
//!
//! A cluster coordinator re-encodes slices of a sweep as protocol requests
//! for its workers and re-hydrates the rows they stream back. Two families
//! of helpers live here:
//!
//! * **Spec-form encoders** — [`sweep_spec_to_value`] and friends render a
//!   typed spec in exactly the JSON shape the [`spec`](crate::spec) decoders
//!   accept, such that `decode(encode(x)) == x`. The report label is always
//!   emitted explicitly so the decoder's default-label logic can never
//!   change a round-tripped strategy.
//! * **Result decoders** — the workspace serde shim derives serialisation
//!   only, so turning a worker's serialised [`SweepResults`] back into typed
//!   rows is spelled out by hand ([`sweep_results_from_value`],
//!   [`evaluation_from_value`], …).
//!
//! Both directions are pure data transforms; together they are what makes
//! sharded output byte-identical to serial, and every encoder is paired with
//! a round-trip test below.

use serde::{Serialize, Value};

use msfu_distill::FactoryConfig;
use msfu_graph::metrics::MappingMetrics;

use crate::pipeline::RoundBreakdown;
use crate::spec::factory_from_json;
use crate::{
    CoreError, Evaluation, EvaluationConfig, Result, Strategy, SweepResults, SweepRow, SweepSpec,
};

/// Builds the decode-failure error: a malformed worker payload is a remote
/// fault, not a local spec error.
fn wire_err(message: impl Into<String>) -> CoreError {
    CoreError::Remote {
        code: "E_REMOTE".to_string(),
        message: message.into(),
    }
}

fn field<'a>(value: &'a Value, key: &str, ctx: &str) -> Result<&'a Value> {
    value
        .get(key)
        .ok_or_else(|| wire_err(format!("{ctx}: missing `{key}`")))
}

fn str_field(value: &Value, key: &str, ctx: &str) -> Result<String> {
    field(value, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| wire_err(format!("{ctx}: `{key}` must be a string")))
}

fn u64_field(value: &Value, key: &str, ctx: &str) -> Result<u64> {
    field(value, key, ctx)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("{ctx}: `{key}` must be a non-negative integer")))
}

fn usize_field(value: &Value, key: &str, ctx: &str) -> Result<usize> {
    Ok(u64_field(value, key, ctx)? as usize)
}

fn f64_field(value: &Value, key: &str, ctx: &str) -> Result<f64> {
    field(value, key, ctx)?
        .as_f64()
        .ok_or_else(|| wire_err(format!("{ctx}: `{key}` must be a number")))
}

/// Decodes a serialised [`Evaluation`] record.
///
/// # Errors
///
/// Returns [`CoreError::Remote`] naming the missing or mistyped field.
pub fn evaluation_from_value(value: &Value) -> Result<Evaluation> {
    let ctx = "evaluation";
    Ok(Evaluation {
        strategy: str_field(value, "strategy", ctx)?,
        factory: factory_from_json(field(value, "factory", ctx)?)?,
        latency_cycles: u64_field(value, "latency_cycles", ctx)?,
        area: usize_field(value, "area", ctx)?,
        volume: u64_field(value, "volume", ctx)?,
        stall_cycles: u64_field(value, "stall_cycles", ctx)?,
        routing_conflicts: u64_field(value, "routing_conflicts", ctx)?,
        critical_path_cycles: u64_field(value, "critical_path_cycles", ctx)?,
        critical_volume: u64_field(value, "critical_volume", ctx)?,
        logical_qubits: usize_field(value, "logical_qubits", ctx)?,
    })
}

/// Decodes a serialised [`RoundBreakdown`] entry.
///
/// # Errors
///
/// Returns [`CoreError::Remote`] naming the missing or mistyped field.
pub fn round_breakdown_from_value(value: &Value) -> Result<RoundBreakdown> {
    let ctx = "breakdown";
    Ok(RoundBreakdown {
        round: usize_field(value, "round", ctx)?,
        round_cycles: u64_field(value, "round_cycles", ctx)?,
        permutation_cycles: u64_field(value, "permutation_cycles", ctx)?,
    })
}

/// Decodes a serialised [`MappingMetrics`] record.
///
/// # Errors
///
/// Returns [`CoreError::Remote`] naming the missing or mistyped field.
pub fn mapping_metrics_from_value(value: &Value) -> Result<MappingMetrics> {
    let ctx = "metrics";
    Ok(MappingMetrics {
        edge_crossings: usize_field(value, "edge_crossings", ctx)?,
        avg_edge_length: f64_field(value, "avg_edge_length", ctx)?,
        avg_edge_spacing: f64_field(value, "avg_edge_spacing", ctx)?,
    })
}

/// Decodes a serialised [`SweepRow`] (the optional `breakdown` and `metrics`
/// fields treat both `null` and absence as [`None`]).
///
/// # Errors
///
/// Returns [`CoreError::Remote`] naming the offending field.
pub fn sweep_row_from_value(value: &Value) -> Result<SweepRow> {
    let ctx = "row";
    let breakdown = match value.get("breakdown") {
        None | Some(Value::Null) => None,
        Some(Value::Array(items)) => Some(
            items
                .iter()
                .map(round_breakdown_from_value)
                .collect::<Result<Vec<_>>>()?,
        ),
        Some(_) => return Err(wire_err(format!("{ctx}: `breakdown` must be an array"))),
    };
    let metrics = match value.get("metrics") {
        None | Some(Value::Null) => None,
        Some(v) => Some(mapping_metrics_from_value(v)?),
    };
    Ok(SweepRow {
        label: str_field(value, "label", ctx)?,
        evaluation: evaluation_from_value(field(value, "evaluation", ctx)?)?,
        breakdown,
        metrics,
    })
}

/// Decodes a serialised [`SweepResults`] document.
///
/// # Errors
///
/// Returns [`CoreError::Remote`] naming the offending field.
pub fn sweep_results_from_value(value: &Value) -> Result<SweepResults> {
    let ctx = "results";
    let rows = match field(value, "rows", ctx)? {
        Value::Array(rows) => rows
            .iter()
            .map(sweep_row_from_value)
            .collect::<Result<Vec<_>>>()?,
        _ => return Err(wire_err(format!("{ctx}: `rows` must be an array"))),
    };
    Ok(SweepResults {
        name: str_field(value, "name", ctx)?,
        rows,
    })
}

/// Encodes a factory configuration in the spec form accepted by
/// [`crate::spec::factory_from_json`].
pub fn factory_to_spec_value(factory: &FactoryConfig) -> Value {
    Value::Object(vec![
        ("k".to_string(), Value::UInt(factory.k as u64)),
        ("levels".to_string(), Value::UInt(factory.levels as u64)),
        (
            "reuse".to_string(),
            Value::Str(factory.reuse.short_name().to_string()),
        ),
        ("barriers".to_string(), Value::Bool(factory.barriers)),
    ])
}

/// Encodes a strategy in the spec form accepted by
/// [`strategy_from_json`](crate::spec::strategy_from_json): the registry
/// key, an *explicit* label, and the flattened parameter bag (already in
/// sorted key order courtesy of `MapperParams`).
pub fn strategy_to_spec_value(strategy: &Strategy) -> Value {
    let mut entries = vec![
        (
            "strategy".to_string(),
            Value::Str(strategy.key().to_string()),
        ),
        (
            "label".to_string(),
            Value::Str(strategy.short_name().to_string()),
        ),
    ];
    for (name, value) in strategy.params().iter() {
        entries.push((name.to_string(), value.to_value()));
    }
    Value::Object(entries)
}

/// Encodes an evaluation configuration in the spec form accepted by
/// [`eval_from_json`](crate::spec::eval_from_json), with every latency field
/// spelled out so defaults can never drift between coordinator and worker.
pub fn eval_to_spec_value(eval: &EvaluationConfig) -> Value {
    let sim = &eval.sim;
    let latency = Value::Object(vec![
        (
            "single_qubit".to_string(),
            Value::UInt(sim.latency.single_qubit),
        ),
        ("t_gate".to_string(), Value::UInt(sim.latency.t_gate)),
        ("cnot".to_string(), Value::UInt(sim.latency.cnot)),
        (
            "cxx_per_target".to_string(),
            Value::UInt(sim.latency.cxx_per_target),
        ),
        ("inject".to_string(), Value::UInt(sim.latency.inject)),
        ("measure".to_string(), Value::UInt(sim.latency.measure)),
        ("init".to_string(), Value::UInt(sim.latency.init)),
    ]);
    Value::Object(vec![
        (
            "routing".to_string(),
            Value::Str(sim.routing.name().to_string()),
        ),
        ("cycle_limit".to_string(), Value::UInt(sim.cycle_limit)),
        ("latency".to_string(), latency),
    ])
}

/// Encodes a sweep spec in the form accepted by [`SweepSpec::from_value`],
/// with the grid flattened to explicit `points` (a shard is a point slice;
/// grids have already been expanded by the time slicing happens).
pub fn sweep_spec_to_value(spec: &SweepSpec) -> Value {
    let points: Vec<Value> = spec
        .points
        .iter()
        .map(|p| {
            Value::Object(vec![
                ("label".to_string(), Value::Str(p.label.clone())),
                ("factory".to_string(), factory_to_spec_value(&p.factory)),
                ("strategy".to_string(), strategy_to_spec_value(&p.strategy)),
            ])
        })
        .collect();
    Value::Object(
        vec![
            ("name".to_string(), Value::Str(spec.name.clone())),
            ("eval".to_string(), eval_to_spec_value(&spec.eval)),
            (
                "collect_breakdowns".to_string(),
                Value::Bool(spec.collect_breakdowns),
            ),
            (
                "collect_mapping_metrics".to_string(),
                Value::Bool(spec.collect_mapping_metrics),
            ),
            ("cache".to_string(), Value::Bool(spec.use_eval_cache)),
            ("lanes".to_string(), Value::UInt(spec.lanes as u64)),
            ("points".to_string(), Value::Array(points)),
        ]
        .into_iter()
        // `cache_dir` is emitted only when set: absent and `null` decode the
        // same, and the common memory-only spec stays byte-stable.
        .chain(spec.cache_dir.iter().map(|dir| {
            (
                "cache_dir".to_string(),
                Value::Str(dir.to_string_lossy().into_owned()),
            )
        }))
        .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::ReusePolicy;

    fn spec_fixture() -> SweepSpec {
        SweepSpec::new("wire", EvaluationConfig::default())
            .point("a", FactoryConfig::single_level(2), Strategy::linear())
            .point(
                "b",
                FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse),
                Strategy::random_with_slack(7, 1.5),
            )
            .point(
                "c",
                FactoryConfig::single_level(3),
                Strategy::graph_partition(11).with_label("custom"),
            )
            .with_breakdowns()
            .with_mapping_metrics()
            .with_eval_cache(false)
            .with_lanes(4)
    }

    #[test]
    fn sweep_spec_round_trips_through_spec_form() {
        let spec = spec_fixture();
        let decoded = SweepSpec::from_value(&sweep_spec_to_value(&spec)).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn cache_dir_rides_the_shard_request() {
        // A coordinator's cache directory must reach its workers, so each
        // shard warms (and is warmed by) the shared persistent tier.
        let spec = spec_fixture().with_cache_dir("shared/eval-cache");
        let value = sweep_spec_to_value(&spec);
        let decoded = SweepSpec::from_value(&value).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(
            decoded.cache_dir.as_deref(),
            Some(std::path::Path::new("shared/eval-cache"))
        );
        // Without a cache dir the field is omitted entirely.
        let bare = sweep_spec_to_value(&spec_fixture());
        assert!(bare.get("cache_dir").is_none());
    }

    #[test]
    fn spec_form_survives_json_text() {
        // The coordinator ships shard requests as NDJSON text, so the round
        // trip must also hold across serialisation to a string and back.
        let spec = spec_fixture();
        let text = serde_json::to_string(&sweep_spec_to_value(&spec)).unwrap();
        let decoded = SweepSpec::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn explicit_label_pins_default_label_logic() {
        // "Random" with an expansion param would default to "Random+S"; an
        // explicit label must keep whatever the strategy actually carries.
        let strategy = Strategy::random_with_slack(3, 2.0).with_label("Random");
        let decoded = crate::spec::strategy_from_json(&strategy_to_spec_value(&strategy)).unwrap();
        assert_eq!(decoded, strategy);
    }

    #[test]
    fn rows_round_trip_through_serialised_form() {
        let results = spec_fixture().run().unwrap();
        let value = results.to_value();
        let decoded = sweep_results_from_value(&value).unwrap();
        assert_eq!(decoded, results);
        // And across NDJSON text, like a worker response travels.
        let text = serde_json::to_string(&value).unwrap();
        let decoded = sweep_results_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(decoded, results);
    }

    #[test]
    fn decode_errors_name_the_field_and_are_remote() {
        let err = sweep_results_from_value(&Value::Object(vec![(
            "name".to_string(),
            Value::Str("x".to_string()),
        )]))
        .unwrap_err();
        match err {
            CoreError::Remote { code, message } => {
                assert_eq!(code, "E_REMOTE");
                assert!(message.contains("rows"), "message was: {message}");
            }
            other => panic!("expected a remote error, got {other:?}"),
        }
    }
}
