//! Streaming progress and cooperative interruption for long-running jobs.
//!
//! Sweeps and portfolio searches can run for minutes; a server (or any
//! embedding) needs to observe them while they run and stop them without
//! killing the process. This module provides the two primitives the service
//! layer builds on:
//!
//! * [`ProgressSink`] — a callback invoked with [`ProgressEvent`]s as rows
//!   complete, incumbents improve and batches finish. The default sink
//!   ([`NoProgress`]) does nothing, and a run driven through it is
//!   byte-identical to one executed through the plain [`SweepSpec::run`]
//!   entry points.
//! * [`CancelToken`] — a cloneable cooperative cancellation flag, checked by
//!   the sweep and search engines *between batches* (never mid-simulation, so
//!   a cancelled run still returns every row it completed).
//!
//! Both travel in a [`RunControl`], together with an optional deadline, to
//! the `run_with`/`run_serial_with` entry points of
//! [`SweepSpec`](crate::SweepSpec) and [`SearchSpec`](crate::SearchSpec).
//!
//! [`SweepSpec::run`]: crate::SweepSpec::run

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sweep::SweepRow;
use crate::Strategy;

/// One observable step of a running sweep or search.
///
/// Events borrow from the run that produced them, so sinks that need to keep
/// data copy the fields they care about.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ProgressEvent<'a> {
    /// A sweep point finished evaluating. Parallel runs emit row events in
    /// point order once the enclosing batch completes; serial runs emit them
    /// immediately after each point.
    RowCompleted {
        /// The sweep's name.
        name: &'a str,
        /// Zero-based index of the point in the spec.
        index: usize,
        /// Total number of points in the spec.
        total: usize,
        /// The completed row.
        row: &'a SweepRow,
    },
    /// A sweep batch finished (the granularity at which cancellation and
    /// deadlines are honoured).
    BatchFinished {
        /// The sweep's name.
        name: &'a str,
        /// Points completed so far.
        completed: usize,
        /// Total number of points in the spec.
        total: usize,
    },
    /// A portfolio search found a new best candidate.
    IncumbentImproved {
        /// The search's name.
        name: &'a str,
        /// Global candidate index in the deterministic stream.
        candidate: usize,
        /// The new incumbent objective value.
        value: u64,
        /// The strategy that achieved it.
        strategy: &'a Strategy,
    },
    /// A search batch finished (the granularity at which cancellation and
    /// deadlines are honoured).
    SearchBatchFinished {
        /// The search's name.
        name: &'a str,
        /// One-based index of the finished batch.
        batch: usize,
        /// Candidates evaluated so far.
        evaluated: usize,
        /// The incumbent objective value, if any candidate evaluated yet.
        incumbent: Option<u64>,
    },
}

/// Receives [`ProgressEvent`]s from a running sweep or search.
///
/// Events are always emitted from the coordinating thread (never from sweep
/// worker threads), in a deterministic order for a given spec and batch
/// size, so a sink needs no internal synchronisation beyond what writing its
/// output requires.
pub trait ProgressSink {
    /// Called once per event, in order.
    fn emit(&self, event: &ProgressEvent<'_>);
}

/// The default sink: discards every event. Runs driven through it behave
/// byte-identically to the plain `run`/`run_serial` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl ProgressSink for NoProgress {
    fn emit(&self, _event: &ProgressEvent<'_>) {}
}

static NO_PROGRESS: NoProgress = NoProgress;

/// A cloneable cooperative cancellation flag.
///
/// Cancellation is a one-way latch: once [`CancelToken::cancel`] is called
/// (from any clone, on any thread), every holder observes it. The sweep and
/// search engines check the token between batches and stop with partial
/// results; they never abort mid-simulation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latches the token. Idempotent and safe to call from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Execution controls for a sweep or search run: where progress goes, and
/// when to stop early.
///
/// The default control discards progress and never interrupts —
/// [`SweepSpec::run`](crate::SweepSpec::run) is exactly
/// `run_with(&RunControl::default())`.
#[derive(Clone, Copy)]
pub struct RunControl<'a> {
    progress: &'a dyn ProgressSink,
    cancel: Option<&'a CancelToken>,
    deadline: Option<Instant>,
}

impl Default for RunControl<'_> {
    fn default() -> Self {
        RunControl {
            progress: &NO_PROGRESS,
            cancel: None,
            deadline: None,
        }
    }
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl<'a> RunControl<'a> {
    /// Routes progress events to `sink` (builder style).
    pub fn with_progress(mut self, sink: &'a dyn ProgressSink) -> Self {
        self.progress = sink;
        self
    }

    /// Honours `token` between batches (builder style).
    pub fn with_cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Stops the run at the first batch boundary past `deadline` (builder
    /// style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Emits one event to the configured sink.
    pub fn emit(&self, event: &ProgressEvent<'_>) {
        self.progress.emit(event);
    }

    /// Whether the run should stop at the next batch boundary (cancelled or
    /// past its deadline).
    pub fn interrupted(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_token_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn default_control_never_interrupts() {
        let ctrl = RunControl::default();
        assert!(!ctrl.interrupted());
    }

    #[test]
    fn control_observes_cancel_and_deadline() {
        let token = CancelToken::new();
        let ctrl = RunControl::default().with_cancel(&token);
        assert!(!ctrl.interrupted());
        token.cancel();
        assert!(ctrl.interrupted());

        let past = Instant::now() - Duration::from_millis(1);
        assert!(RunControl::default().with_deadline(past).interrupted());
        let future = Instant::now() + Duration::from_secs(3600);
        assert!(!RunControl::default().with_deadline(future).interrupted());
    }
}
