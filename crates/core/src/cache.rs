//! Content-addressed evaluation caching.
//!
//! Sweeps and portfolio searches frequently re-derive the *same* simulation:
//! seed ladders converge to identical layouts, the same
//! `(factory, strategy)` point appears under several report labels, and
//! reuse-policy grids duplicate their baselines. An [`EvalCache`] keys each
//! simulated [`Evaluation`] by the full content of what determines it — the
//! factory configuration, the layout bytes (placement, routing hints *and*
//! port assignment), and the evaluation/simulator configuration — so any
//! duplicate across sweep rows or search candidates simulates exactly once,
//! even when workers race on it from different threads.
//!
//! The key is the rendered content itself (no lossy hashing), so a cache hit
//! can never alias two distinct inputs: results with the cache enabled are
//! byte-identical to cache-disabled runs. The report label is deliberately
//! *not* part of the key — it is patched onto the cached record per caller —
//! so candidates from different portfolio entries still share work.
//!
//! Two optional tiers extend the in-memory map:
//!
//! * a **persistent tier** ([`EvalCache::with_disk`], the `--cache-dir`
//!   flag / `"cache_dir"` spec field): records load from hash-bucketed
//!   segment files on open and new simulations append to them, so repeated
//!   runs — and the workers of a serve cluster sharing one directory — warm
//!   each other across processes (see [`crate::persist`]);
//! * an optional **max-entries bound** ([`EvalCache::with_capacity`]) with
//!   deterministic insertion-order eviction, so a long serve session cannot
//!   grow without limit. Default unbounded — bounded caches still return
//!   byte-identical results, an evicted key merely re-simulates.
//!
//! Hit/miss counters aggregate per cache and into process-wide totals
//! ([`process_cache_stats`]), which the bench harness samples around a run to
//! stamp hit rates into `BENCH_<name>.json` reports.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;

use msfu_distill::FactoryConfig;
use msfu_layout::Layout;

use crate::persist::DiskTier;
use crate::{Evaluation, EvaluationConfig, Result};

/// Hit/miss counters of an [`EvalCache`] (or of the whole process, see
/// [`process_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Lookups answered from a previously simulated evaluation.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Subset of `hits` answered by a record loaded from the persistent
    /// tier (zero without a cache directory).
    pub disk_hits: u64,
    /// Records loaded from the persistent tier when the cache was opened.
    pub loaded: u64,
    /// Newly simulated records appended to the persistent tier by this run.
    pub persisted: u64,
    /// [`crate::PersistWarning`]s encountered: damaged records skipped on
    /// open (their segment is quarantined) or appends that failed. Nonzero
    /// warnings never affect results — only what had to be re-simulated.
    pub warnings: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter increments since `earlier` (for sampling the process-wide
    /// totals around one run).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            loaded: self.loaded.saturating_sub(earlier.loaded),
            persisted: self.persisted.saturating_sub(earlier.persisted),
            warnings: self.warnings.saturating_sub(earlier.warnings),
        }
    }
}

static PROCESS_HITS: AtomicU64 = AtomicU64::new(0);
static PROCESS_MISSES: AtomicU64 = AtomicU64::new(0);
static PROCESS_DISK_HITS: AtomicU64 = AtomicU64::new(0);
static PROCESS_LOADED: AtomicU64 = AtomicU64::new(0);
static PROCESS_PERSISTED: AtomicU64 = AtomicU64::new(0);
static PROCESS_WARNINGS: AtomicU64 = AtomicU64::new(0);

/// Cumulative hit/miss counters across every [`EvalCache`] of the process.
/// Sample before and after a run and diff with [`CacheStats::since`] to
/// attribute counts to that run.
pub fn process_cache_stats() -> CacheStats {
    CacheStats {
        hits: PROCESS_HITS.load(Ordering::Relaxed),
        misses: PROCESS_MISSES.load(Ordering::Relaxed),
        disk_hits: PROCESS_DISK_HITS.load(Ordering::Relaxed),
        loaded: PROCESS_LOADED.load(Ordering::Relaxed),
        persisted: PROCESS_PERSISTED.load(Ordering::Relaxed),
        warnings: PROCESS_WARNINGS.load(Ordering::Relaxed),
    }
}

/// One cache slot: a per-key compute guard plus the published value.
/// Concurrent requesters of the same key serialize on `guard`, so the
/// evaluation runs once and late arrivals read the published result.
/// `from_disk` marks slots pre-populated from the persistent tier (their
/// hits count as `disk_hits` and they are never re-appended).
#[derive(Default)]
struct Slot {
    guard: Mutex<()>,
    value: OnceLock<Evaluation>,
    from_disk: bool,
}

/// The keyed slots plus the insertion order used for bounded eviction (the
/// order queue is only maintained when a capacity is set).
#[derive(Default)]
struct Slots {
    map: HashMap<String, Arc<Slot>>,
    order: VecDeque<String>,
}

/// A content-addressed map from evaluation inputs to simulated
/// [`Evaluation`] records, shared across the worker threads of one sweep or
/// search run — optionally bounded, and optionally backed by an on-disk
/// persistent tier shared across processes.
#[derive(Default)]
pub struct EvalCache {
    slots: Mutex<Slots>,
    capacity: Option<usize>,
    disk: Option<DiskTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    loaded: AtomicU64,
    persisted: AtomicU64,
    warnings: AtomicU64,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("stats", &self.stats())
            .field("capacity", &self.capacity)
            .field("persistent", &self.disk.is_some())
            .finish()
    }
}

impl EvalCache {
    /// Creates an empty, unbounded, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the in-memory tier to `max_entries` slots with deterministic
    /// insertion-order eviction (builder style; apply before
    /// [`EvalCache::with_disk`] so loading respects the bound). An evicted
    /// key simply re-simulates — results stay byte-identical. A bound of 0
    /// caches nothing.
    pub fn with_capacity(mut self, max_entries: usize) -> Self {
        self.capacity = Some(max_entries);
        self
    }

    /// Attaches the persistent tier rooted at `dir` (builder style),
    /// creating the directory if needed and loading every readable record.
    /// Damaged or foreign-version records are skipped with a warning on
    /// stderr and counted into [`CacheStats::warnings`], and the segment
    /// holding them is quarantined — never an error; see [`crate::persist`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Spec`] when the directory cannot be
    /// created (the path comes from the spec/flags).
    pub fn with_disk(mut self, dir: &Path) -> Result<Self> {
        let (tier, contents) =
            DiskTier::open(dir).map_err(|reason| crate::CoreError::Spec { reason })?;
        self.disk = Some(tier);
        for warning in &contents.warnings {
            eprintln!("[msfu eval-cache] {warning}");
        }
        if !contents.warnings.is_empty() {
            eprintln!(
                "[msfu eval-cache] {}: {} warning(s), {} segment(s) quarantined — run `msfu cache compact` to repair",
                dir.display(),
                contents.warnings.len(),
                contents.quarantined.len()
            );
        }
        self.count_warnings(contents.warnings.len() as u64);
        let loaded = contents.entries.len() as u64;
        for (key, evaluation) in contents.entries {
            self.insert_loaded(key, evaluation);
        }
        self.loaded.fetch_add(loaded, Ordering::Relaxed);
        PROCESS_LOADED.fetch_add(loaded, Ordering::Relaxed);
        Ok(self)
    }

    /// The cache's own hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            warnings: self.warnings.load(Ordering::Relaxed),
        }
    }

    /// Adds to this cache's and the process-wide warning counters.
    fn count_warnings(&self, n: u64) {
        if n > 0 {
            self.warnings.fetch_add(n, Ordering::Relaxed);
            PROCESS_WARNINGS.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Pre-populates one slot from a persisted record (open-time only:
    /// `&mut self`, so no lock contention and no hit/miss accounting).
    fn insert_loaded(&mut self, key: String, evaluation: Evaluation) {
        let slots = self.slots.get_mut().unwrap_or_else(|e| e.into_inner());
        // Duplicate keys (two processes raced the same miss) carry identical
        // content; keep the slot already present.
        if slots.map.contains_key(&key) {
            return;
        }
        Self::evict_to_fit(slots, self.capacity);
        if self.capacity == Some(0) {
            return;
        }
        let slot = Slot {
            guard: Mutex::new(()),
            value: OnceLock::from(evaluation),
            from_disk: true,
        };
        if self.capacity.is_some() {
            slots.order.push_back(key.clone());
        }
        slots.map.insert(key, Arc::new(slot));
    }

    /// Evicts oldest-inserted slots until one more fits under `capacity`.
    fn evict_to_fit(slots: &mut Slots, capacity: Option<usize>) {
        let Some(capacity) = capacity else { return };
        while capacity > 0 && slots.map.len() >= capacity {
            let Some(oldest) = slots.order.pop_front() else {
                return;
            };
            slots.map.remove(&oldest);
        }
    }

    /// Returns the evaluation for `key`, running `compute` only if no other
    /// requester has published it yet. The cached record's `strategy` label
    /// is replaced by `strategy_name` (the label is presentation, not
    /// content). Compute errors are propagated without populating the slot.
    pub(crate) fn get_or_compute(
        &self,
        key: String,
        strategy_name: &str,
        compute: impl FnOnce() -> Result<Evaluation>,
    ) -> Result<Evaluation> {
        // A persisted miss appends under the same key after computing.
        let persist_key = self.disk.is_some().then(|| key.clone());
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            match slots.map.get(&key) {
                Some(slot) => slot.clone(),
                None => {
                    Self::evict_to_fit(&mut slots, self.capacity);
                    let slot = Arc::new(Slot::default());
                    if self.capacity != Some(0) {
                        if self.capacity.is_some() {
                            slots.order.push_back(key.clone());
                        }
                        slots.map.insert(key, slot.clone());
                    }
                    slot
                }
            }
        };
        if let Some(found) = slot.value.get() {
            return Ok(self.hit(&slot, found, strategy_name));
        }
        let _guard = slot.guard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = slot.value.get() {
            // Another worker simulated this key while we waited.
            return Ok(self.hit(&slot, found, strategy_name));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        PROCESS_MISSES.fetch_add(1, Ordering::Relaxed);
        let value = compute()?;
        let _ = slot.value.set(value.clone());
        if let (Some(disk), Some(key)) = (&self.disk, persist_key) {
            match disk.append(&key, &value) {
                Ok(()) => {
                    self.persisted.fetch_add(1, Ordering::Relaxed);
                    PROCESS_PERSISTED.fetch_add(1, Ordering::Relaxed);
                }
                Err(warning) => {
                    self.count_warnings(1);
                    eprintln!("[msfu eval-cache] {warning}");
                }
            }
        }
        Ok(value)
    }

    /// Whether `key` already holds a published value. Counts as neither hit
    /// nor miss — the sweep planner uses it to keep cached points out of
    /// batch lanes without disturbing the accounting that `get_or_compute`
    /// performs later.
    pub(crate) fn peek(&self, key: &str) -> bool {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .map
            .get(key)
            .is_some_and(|slot| slot.value.get().is_some())
    }

    fn hit(&self, slot: &Slot, found: &Evaluation, strategy_name: &str) -> Evaluation {
        self.hits.fetch_add(1, Ordering::Relaxed);
        PROCESS_HITS.fetch_add(1, Ordering::Relaxed);
        if slot.from_disk {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            PROCESS_DISK_HITS.fetch_add(1, Ordering::Relaxed);
        }
        let mut evaluation = found.clone();
        evaluation.strategy = strategy_name.to_string();
        evaluation
    }
}

/// Opens the cache a sweep/search run asked for: `None` when caching is
/// disabled, a memory-only cache without a directory, or a persistent-tier
/// cache rooted at `dir`.
///
/// # Errors
///
/// Propagates [`EvalCache::with_disk`] failures (unwritable directory).
pub(crate) fn open_eval_cache(enabled: bool, dir: Option<&Path>) -> Result<Option<EvalCache>> {
    if !enabled {
        return Ok(None);
    }
    match dir {
        Some(dir) => EvalCache::new().with_disk(dir).map(Some),
        None => Ok(Some(EvalCache::new())),
    }
}

/// Renders the content address of one evaluation: everything the simulated
/// record depends on — factory configuration, the complete layout (placement,
/// routing hints, port assignment) and the evaluation configuration — via
/// their exhaustive `Debug` forms (f64 debug formatting round-trips, so
/// distinct configs cannot collide). Routing hints are rendered in sorted
/// pair order: their container iterates in unspecified order, and a
/// non-canonical rendering would give equal layouts distinct addresses
/// (missed dedup — never wrong results, but the HS waypoint layouts would
/// stop sharing work).
pub(crate) fn evaluation_key(
    factory: &FactoryConfig,
    layout: &Layout,
    eval: &EvaluationConfig,
) -> String {
    let mut hints: Vec<_> = layout
        .hints
        .iter()
        .map(|(pair, waypoint)| (*pair, *waypoint))
        .collect();
    hints.sort_by_key(|(pair, _)| *pair);
    format!(
        "{factory:?}|{eval:?}|{:?}|{:?}|{hints:?}",
        layout.mapping, layout.ports
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use msfu_distill::Factory;

    fn sample_inputs() -> (FactoryConfig, Layout, EvaluationConfig) {
        let config = FactoryConfig::single_level(2);
        let factory = Factory::build(&config).unwrap();
        let layout = Strategy::linear().map(&factory).unwrap();
        (config, layout, EvaluationConfig::default())
    }

    #[test]
    fn second_lookup_hits_and_patches_the_label() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let cache = EvalCache::new();
        let key = || evaluation_key(&config, &layout, &eval);
        let first = cache
            .get_or_compute(key(), "Line", || {
                crate::evaluate_mapped(&factory, &layout, "Line", &eval)
            })
            .unwrap();
        let second = cache
            .get_or_compute(key(), "Other", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
        assert_eq!(second.strategy, "Other");
        assert_eq!(second.latency_cycles, first.latency_cycles);
        assert_eq!(second.volume, first.volume);
        assert!(cache.stats().hit_rate() > 0.49);
    }

    #[test]
    fn hit_rate_of_an_unused_cache_is_zero_not_nan() {
        // bench-diff hard-errors on NaN cells, so a cold stamped report must
        // come out 0.0 exactly.
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        assert_eq!(EvalCache::new().stats().hit_rate(), 0.0);
    }

    #[test]
    fn distinct_layouts_are_distinct_keys() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let other = Strategy::random(3).map(&factory).unwrap();
        assert_ne!(
            evaluation_key(&config, &layout, &eval),
            evaluation_key(&config, &other, &eval)
        );
        // Sim config changes re-key too.
        let adaptive = EvaluationConfig::default().with_sim(msfu_sim::SimConfig::default());
        let dimension =
            EvaluationConfig::default().with_sim(msfu_sim::SimConfig::dimension_ordered());
        if adaptive != dimension {
            assert_ne!(
                evaluation_key(&config, &layout, &adaptive),
                evaluation_key(&config, &layout, &dimension)
            );
        }
    }

    #[test]
    fn compute_errors_do_not_poison_the_slot() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let cache = EvalCache::new();
        let key = || evaluation_key(&config, &layout, &eval);
        let err: Result<Evaluation> = cache.get_or_compute(key(), "Line", || {
            Err(crate::CoreError::Spec {
                reason: "injected".into(),
            })
        });
        assert!(err.is_err());
        // The key remains computable after a failure.
        let ok = cache
            .get_or_compute(key(), "Line", || {
                crate::evaluate_mapped(&factory, &layout, "Line", &eval)
            })
            .unwrap();
        assert_eq!(ok.strategy, "Line");
        assert_eq!(cache.stats().misses, 2);
    }

    fn canned(tag: u64) -> Evaluation {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let mut evaluation = crate::evaluate_mapped(&factory, &layout, "Line", &eval).unwrap();
        evaluation.latency_cycles = tag;
        evaluation
    }

    #[test]
    fn bounded_cache_evicts_in_insertion_order() {
        let cache = EvalCache::new().with_capacity(2);
        for (key, tag) in [("a", 1u64), ("b", 2), ("c", 3)] {
            cache
                .get_or_compute(key.to_string(), "Line", || Ok(canned(tag)))
                .unwrap();
        }
        // "a" (oldest) was evicted by "c"; "b" and "c" survive.
        assert!(!cache.peek("a"));
        assert!(cache.peek("b"));
        assert!(cache.peek("c"));
        // A re-request of "a" recomputes (a miss) and evicts "b" in turn.
        cache
            .get_or_compute("a".to_string(), "Line", || Ok(canned(4)))
            .unwrap();
        assert!(!cache.peek("b"));
        assert!(cache.peek("a") && cache.peek("c"));
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn zero_capacity_caches_nothing_but_still_computes() {
        let cache = EvalCache::new().with_capacity(0);
        for _ in 0..2 {
            let value = cache
                .get_or_compute("k".to_string(), "Line", || Ok(canned(9)))
                .unwrap();
            assert_eq!(value.latency_cycles, 9);
        }
        assert!(!cache.peek("k"));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn unbounded_cache_keeps_everything() {
        let cache = EvalCache::new();
        for i in 0..100u64 {
            cache
                .get_or_compute(format!("k{i}"), "Line", || Ok(canned(i)))
                .unwrap();
        }
        assert!((0..100).all(|i| cache.peek(&format!("k{i}"))));
    }

    #[test]
    fn stats_since_subtracts_every_counter() {
        let earlier = CacheStats {
            hits: 1,
            misses: 2,
            disk_hits: 1,
            loaded: 5,
            persisted: 2,
            warnings: 1,
        };
        let later = CacheStats {
            hits: 4,
            misses: 3,
            disk_hits: 2,
            loaded: 5,
            persisted: 6,
            warnings: 3,
        };
        assert_eq!(
            later.since(&earlier),
            CacheStats {
                hits: 3,
                misses: 1,
                disk_hits: 1,
                loaded: 0,
                persisted: 4,
                warnings: 2,
            }
        );
    }

    #[test]
    fn damaged_directory_counts_warnings_and_still_serves() {
        let dir = std::env::temp_dir().join(format!("msfu-cache-warn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let key = || evaluation_key(&config, &layout, &eval);
        {
            let cache = EvalCache::new().with_disk(&dir).unwrap();
            cache
                .get_or_compute(key(), "Line", || {
                    crate::evaluate_mapped(&factory, &layout, "Line", &eval)
                })
                .unwrap();
        }
        // Damage a segment guaranteed to exist, then re-open: the open
        // quarantines it, counts the warning, and the run still works.
        let bucket = (0..crate::persist::NUM_BUCKETS)
            .find(|b| dir.join(format!("seg-{b:02x}.bin")).exists())
            .expect("one segment was persisted");
        crate::persist::damage_segment(&dir, bucket, crate::persist::SegmentDamage::Truncate, 9)
            .unwrap();
        let before = process_cache_stats();
        let cache = EvalCache::new().with_disk(&dir).unwrap();
        assert!(cache.stats().warnings > 0);
        assert!(process_cache_stats().since(&before).warnings > 0);
        let value = cache
            .get_or_compute(key(), "Line", || {
                crate::evaluate_mapped(&factory, &layout, "Line", &eval)
            })
            .unwrap();
        assert_eq!(value.strategy, "Line");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_tier_round_trips_hits_and_counters() {
        let dir = std::env::temp_dir().join(format!("msfu-cache-tier-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let key = || evaluation_key(&config, &layout, &eval);
        let first = {
            let cache = EvalCache::new().with_disk(&dir).unwrap();
            let value = cache
                .get_or_compute(key(), "Line", || {
                    crate::evaluate_mapped(&factory, &layout, "Line", &eval)
                })
                .unwrap();
            let stats = cache.stats();
            assert_eq!((stats.loaded, stats.misses, stats.persisted), (0, 1, 1));
            value
        };
        // A fresh cache over the same directory answers from disk,
        // byte-identically, and persists nothing new.
        let cache = EvalCache::new().with_disk(&dir).unwrap();
        let second = cache
            .get_or_compute(key(), "Line", || panic!("must come from disk"))
            .unwrap();
        assert_eq!(second, first);
        let stats = cache.stats();
        assert_eq!(stats.loaded, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.persisted, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_eval_cache_respects_the_enabled_flag() {
        assert!(open_eval_cache(false, None).unwrap().is_none());
        assert!(open_eval_cache(true, None).unwrap().is_some());
        let dir = std::env::temp_dir().join(format!("msfu-cache-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = open_eval_cache(true, Some(dir.as_path())).unwrap().unwrap();
        assert!(cache.disk.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
