//! Content-addressed evaluation caching.
//!
//! Sweeps and portfolio searches frequently re-derive the *same* simulation:
//! seed ladders converge to identical layouts, the same
//! `(factory, strategy)` point appears under several report labels, and
//! reuse-policy grids duplicate their baselines. An [`EvalCache`] keys each
//! simulated [`Evaluation`] by the full content of what determines it — the
//! factory configuration, the layout bytes (placement, routing hints *and*
//! port assignment), and the evaluation/simulator configuration — so any
//! duplicate across sweep rows or search candidates simulates exactly once,
//! even when workers race on it from different threads.
//!
//! The key is the rendered content itself (no lossy hashing), so a cache hit
//! can never alias two distinct inputs: results with the cache enabled are
//! byte-identical to cache-disabled runs. The report label is deliberately
//! *not* part of the key — it is patched onto the cached record per caller —
//! so candidates from different portfolio entries still share work.
//!
//! Hit/miss counters aggregate per cache and into process-wide totals
//! ([`process_cache_stats`]), which the bench harness samples around a run to
//! stamp hit rates into `BENCH_<name>.json` reports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;

use msfu_distill::FactoryConfig;
use msfu_layout::Layout;

use crate::{Evaluation, EvaluationConfig, Result};

/// Hit/miss counters of an [`EvalCache`] (or of the whole process, see
/// [`process_cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Lookups answered from a previously simulated evaluation.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter increments since `earlier` (for sampling the process-wide
    /// totals around one run).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

static PROCESS_HITS: AtomicU64 = AtomicU64::new(0);
static PROCESS_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative hit/miss counters across every [`EvalCache`] of the process.
/// Sample before and after a run and diff with [`CacheStats::since`] to
/// attribute counts to that run.
pub fn process_cache_stats() -> CacheStats {
    CacheStats {
        hits: PROCESS_HITS.load(Ordering::Relaxed),
        misses: PROCESS_MISSES.load(Ordering::Relaxed),
    }
}

/// One cache slot: a per-key compute guard plus the published value.
/// Concurrent requesters of the same key serialize on `guard`, so the
/// evaluation runs once and late arrivals read the published result.
#[derive(Default)]
struct Slot {
    guard: Mutex<()>,
    value: OnceLock<Evaluation>,
}

/// A content-addressed map from evaluation inputs to simulated
/// [`Evaluation`] records, shared across the worker threads of one sweep or
/// search run.
#[derive(Default)]
pub struct EvalCache {
    slots: Mutex<HashMap<String, Arc<Slot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cache's own hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the evaluation for `key`, running `compute` only if no other
    /// requester has published it yet. The cached record's `strategy` label
    /// is replaced by `strategy_name` (the label is presentation, not
    /// content). Compute errors are propagated without populating the slot.
    pub(crate) fn get_or_compute(
        &self,
        key: String,
        strategy_name: &str,
        compute: impl FnOnce() -> Result<Evaluation>,
    ) -> Result<Evaluation> {
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots.entry(key).or_default().clone()
        };
        if let Some(found) = slot.value.get() {
            return Ok(self.hit(found, strategy_name));
        }
        let _guard = slot.guard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = slot.value.get() {
            // Another worker simulated this key while we waited.
            return Ok(self.hit(found, strategy_name));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        PROCESS_MISSES.fetch_add(1, Ordering::Relaxed);
        let value = compute()?;
        let _ = slot.value.set(value.clone());
        Ok(value)
    }

    /// Whether `key` already holds a published value. Counts as neither hit
    /// nor miss — the sweep planner uses it to keep cached points out of
    /// batch lanes without disturbing the accounting that `get_or_compute`
    /// performs later.
    pub(crate) fn peek(&self, key: &str) -> bool {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .get(key)
            .is_some_and(|slot| slot.value.get().is_some())
    }

    fn hit(&self, found: &Evaluation, strategy_name: &str) -> Evaluation {
        self.hits.fetch_add(1, Ordering::Relaxed);
        PROCESS_HITS.fetch_add(1, Ordering::Relaxed);
        let mut evaluation = found.clone();
        evaluation.strategy = strategy_name.to_string();
        evaluation
    }
}

/// Renders the content address of one evaluation: everything the simulated
/// record depends on — factory configuration, the complete layout (placement,
/// routing hints, port assignment) and the evaluation configuration — via
/// their exhaustive `Debug` forms (f64 debug formatting round-trips, so
/// distinct configs cannot collide). Routing hints are rendered in sorted
/// pair order: their container iterates in unspecified order, and a
/// non-canonical rendering would give equal layouts distinct addresses
/// (missed dedup — never wrong results, but the HS waypoint layouts would
/// stop sharing work).
pub(crate) fn evaluation_key(
    factory: &FactoryConfig,
    layout: &Layout,
    eval: &EvaluationConfig,
) -> String {
    let mut hints: Vec<_> = layout
        .hints
        .iter()
        .map(|(pair, waypoint)| (*pair, *waypoint))
        .collect();
    hints.sort_by_key(|(pair, _)| *pair);
    format!(
        "{factory:?}|{eval:?}|{:?}|{:?}|{hints:?}",
        layout.mapping, layout.ports
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use msfu_distill::Factory;

    fn sample_inputs() -> (FactoryConfig, Layout, EvaluationConfig) {
        let config = FactoryConfig::single_level(2);
        let factory = Factory::build(&config).unwrap();
        let layout = Strategy::linear().map(&factory).unwrap();
        (config, layout, EvaluationConfig::default())
    }

    #[test]
    fn second_lookup_hits_and_patches_the_label() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let cache = EvalCache::new();
        let key = || evaluation_key(&config, &layout, &eval);
        let first = cache
            .get_or_compute(key(), "Line", || {
                crate::evaluate_mapped(&factory, &layout, "Line", &eval)
            })
            .unwrap();
        let second = cache
            .get_or_compute(key(), "Other", || panic!("must not recompute"))
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(second.strategy, "Other");
        assert_eq!(second.latency_cycles, first.latency_cycles);
        assert_eq!(second.volume, first.volume);
        assert!(cache.stats().hit_rate() > 0.49);
    }

    #[test]
    fn distinct_layouts_are_distinct_keys() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let other = Strategy::random(3).map(&factory).unwrap();
        assert_ne!(
            evaluation_key(&config, &layout, &eval),
            evaluation_key(&config, &other, &eval)
        );
        // Sim config changes re-key too.
        let adaptive = EvaluationConfig::default().with_sim(msfu_sim::SimConfig::default());
        let dimension =
            EvaluationConfig::default().with_sim(msfu_sim::SimConfig::dimension_ordered());
        if adaptive != dimension {
            assert_ne!(
                evaluation_key(&config, &layout, &adaptive),
                evaluation_key(&config, &layout, &dimension)
            );
        }
    }

    #[test]
    fn compute_errors_do_not_poison_the_slot() {
        let (config, layout, eval) = sample_inputs();
        let factory = Factory::build(&config).unwrap();
        let cache = EvalCache::new();
        let key = || evaluation_key(&config, &layout, &eval);
        let err: Result<Evaluation> = cache.get_or_compute(key(), "Line", || {
            Err(crate::CoreError::Spec {
                reason: "injected".into(),
            })
        });
        assert!(err.is_err());
        // The key remains computable after a failure.
        let ok = cache
            .get_or_compute(key(), "Line", || {
                crate::evaluate_mapped(&factory, &layout, "Line", &eval)
            })
            .unwrap();
        assert_eq!(ok.strategy, "Line");
        assert_eq!(cache.stats().misses, 2);
    }
}
