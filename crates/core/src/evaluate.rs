//! End-to-end evaluation: factory → mapping → simulation → volume.

use std::borrow::Cow;
use std::cell::RefCell;

use serde::{Deserialize, Serialize};

use msfu_distill::{Factory, FactoryConfig};
use msfu_layout::Layout;
use msfu_sim::{BatchEngine, SimConfig, SimEngine};

use crate::{Result, Strategy};

/// Configuration of an end-to-end evaluation run.
///
/// `#[non_exhaustive]` so the service protocol can grow evaluation knobs
/// without a semver break: construct with [`EvaluationConfig::default`] and
/// refine with the `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub struct EvaluationConfig {
    /// Simulator configuration (latency model, routing policy, cycle limit).
    pub sim: SimConfig,
}

impl EvaluationConfig {
    /// Replaces the simulator configuration (builder style).
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }
}

/// The outcome of evaluating one factory configuration under one strategy:
/// the quantities plotted in Fig. 10 and tabulated in Table I of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Strategy report label ("Random", "Random+S", "Line", "FD", "GP",
    /// "HS" for the built-in line-up; custom strategies carry their own).
    pub strategy: String,
    /// The factory configuration that was evaluated.
    pub factory: FactoryConfig,
    /// Realised circuit latency in cycles.
    pub latency_cycles: u64,
    /// Consumed logical-qubit area (bounding box of the placement).
    pub area: usize,
    /// Space-time (quantum) volume: `area × latency`.
    pub volume: u64,
    /// Total stall cycles inserted by braid congestion.
    pub stall_cycles: u64,
    /// Number of failed braid-routing attempts.
    pub routing_conflicts: u64,
    /// Critical-path lower bound on latency (unlimited resources).
    pub critical_path_cycles: u64,
    /// Lower bound on volume: critical path × the factory's logical qubit
    /// count (the "Critical" row of Table I).
    pub critical_volume: u64,
    /// Number of logical qubits the factory allocates (minimum possible area).
    pub logical_qubits: usize,
}

impl Evaluation {
    /// Ratio of realised volume to the lower-bound volume (≥ 1 in practice).
    pub fn volume_ratio_to_critical(&self) -> f64 {
        if self.critical_volume == 0 {
            return 0.0;
        }
        self.volume as f64 / self.critical_volume as f64
    }

    /// Ratio of realised latency to the critical-path latency.
    pub fn latency_ratio_to_critical(&self) -> f64 {
        if self.critical_path_cycles == 0 {
            return 0.0;
        }
        self.latency_cycles as f64 / self.critical_path_cycles as f64
    }
}

/// Builds a factory for `factory_config`, maps it with `strategy` and
/// simulates the braid schedule.
///
/// # Errors
///
/// Propagates factory-construction, placement and simulation failures.
pub fn evaluate(
    factory_config: &FactoryConfig,
    strategy: &Strategy,
    config: &EvaluationConfig,
) -> Result<Evaluation> {
    let factory = Factory::build(factory_config)?;
    evaluate_factory(&factory, strategy, config)
}

/// Evaluates an already-built factory. The factory is never mutated: if the
/// strategy's layout carries an output-port rebinding (hierarchical
/// stitching), it is applied to a private copy before simulation, so one
/// built factory can be shared — including across threads — by any number of
/// concurrent evaluations.
///
/// # Errors
///
/// Propagates placement and simulation failures.
pub fn evaluate_factory(
    factory: &Factory,
    strategy: &Strategy,
    config: &EvaluationConfig,
) -> Result<Evaluation> {
    with_thread_engine(config.sim, |engine| {
        evaluate_factory_with(engine, factory, strategy, config)
    })
}

/// [`evaluate_factory`] against a caller-held [`SimEngine`], so a loop of
/// evaluations reuses one set of simulator arenas.
///
/// # Errors
///
/// Propagates placement and simulation failures.
pub fn evaluate_factory_with(
    engine: &mut SimEngine,
    factory: &Factory,
    strategy: &Strategy,
    config: &EvaluationConfig,
) -> Result<Evaluation> {
    let layout = strategy.map(factory)?;
    let effective = effective_factory(factory, &layout)?;
    evaluate_mapped_with(engine, &effective, &layout, strategy.short_name(), config)
}

/// Resolves the factory a layout must be simulated against: the factory
/// itself, or a rewired private copy when the layout carries a port
/// assignment.
///
/// # Errors
///
/// Propagates an invalid port assignment.
pub fn effective_factory<'a>(factory: &'a Factory, layout: &Layout) -> Result<Cow<'a, Factory>> {
    if layout.requires_port_rewiring() {
        Ok(Cow::Owned(factory.apply_port_assignment(&layout.ports)?))
    } else {
        Ok(Cow::Borrowed(factory))
    }
}

/// Simulates a mapped factory and assembles the [`Evaluation`] record.
/// `factory` must already be the effective (port-rewired) factory for
/// `layout` — see [`effective_factory`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn evaluate_mapped(
    factory: &Factory,
    layout: &Layout,
    strategy_name: &str,
    config: &EvaluationConfig,
) -> Result<Evaluation> {
    with_thread_engine(config.sim, |engine| {
        evaluate_mapped_with(engine, factory, layout, strategy_name, config)
    })
}

/// [`evaluate_mapped`] against a caller-held [`SimEngine`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn evaluate_mapped_with(
    engine: &mut SimEngine,
    factory: &Factory,
    layout: &Layout,
    strategy_name: &str,
    config: &EvaluationConfig,
) -> Result<Evaluation> {
    engine.set_config(config.sim);
    let result = engine.run(factory.circuit(), layout)?;
    let critical_path_cycles = factory.circuit().critical_path_cycles(&config.sim.latency);
    let logical_qubits = factory.num_qubits();
    Ok(Evaluation {
        strategy: strategy_name.to_string(),
        factory: *factory.config(),
        latency_cycles: result.cycles,
        area: result.area,
        volume: result.volume(),
        stall_cycles: result.stall_cycles,
        routing_conflicts: result.routing_conflicts,
        critical_path_cycles,
        critical_volume: critical_path_cycles * logical_qubits as u64,
        logical_qubits,
    })
}

thread_local! {
    /// One simulator engine per thread: entry points that don't take an
    /// explicit [`SimEngine`] still amortise arenas across calls (and across
    /// the sweep engine's worker threads).
    static THREAD_ENGINE: RefCell<SimEngine> = RefCell::new(SimEngine::default());

    /// One lane-batched engine per thread, for the sweep engine's batched
    /// groups (a separate cell from [`THREAD_ENGINE`]: a batched group and a
    /// solo evaluation may be live on the same thread).
    static THREAD_BATCH_ENGINE: RefCell<BatchEngine> = RefCell::new(BatchEngine::default());
}

/// Runs `f` against this thread's reusable [`SimEngine`], configured with
/// `sim`. Used by every evaluation entry point that does not thread an
/// explicit engine handle.
pub(crate) fn with_thread_engine<T>(sim: SimConfig, f: impl FnOnce(&mut SimEngine) -> T) -> T {
    THREAD_ENGINE.with(|cell| {
        let mut engine = cell.borrow_mut();
        engine.set_config(sim);
        f(&mut engine)
    })
}

/// Runs `f` against this thread's reusable [`BatchEngine`], configured with
/// `sim`. Used by the sweep engine to simulate one lane-compatible group.
pub(crate) fn with_thread_batch_engine<T>(
    sim: SimConfig,
    f: impl FnOnce(&mut BatchEngine) -> T,
) -> T {
    THREAD_BATCH_ENGINE.with(|cell| {
        let mut engine = cell.borrow_mut();
        engine.set_config(sim);
        f(&mut engine)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::ReusePolicy;
    use msfu_layout::ForceDirectedConfig;

    fn cheap_fd(seed: u64) -> Strategy {
        Strategy::force_directed(ForceDirectedConfig {
            seed,
            iterations: 3,
            repulsion_sample: 200,
            ..ForceDirectedConfig::default()
        })
    }

    #[test]
    fn linear_single_level_evaluation_is_consistent() {
        let eval = evaluate(
            &FactoryConfig::single_level(2),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap();
        assert_eq!(eval.strategy, "Line");
        assert!(eval.latency_cycles >= eval.critical_path_cycles);
        assert_eq!(eval.volume, eval.latency_cycles * eval.area as u64);
        assert!(eval.area >= eval.logical_qubits);
        assert!(eval.volume >= eval.critical_volume);
        assert!(eval.volume_ratio_to_critical() >= 1.0);
        assert!(eval.latency_ratio_to_critical() >= 1.0);
    }

    #[test]
    fn linear_beats_random_on_single_level_volume() {
        let cfg = FactoryConfig::single_level(4);
        let random = evaluate(&cfg, &Strategy::random(1), &EvaluationConfig::default()).unwrap();
        let linear = evaluate(&cfg, &Strategy::linear(), &EvaluationConfig::default()).unwrap();
        assert!(
            linear.volume < random.volume,
            "linear ({}) should beat random ({})",
            linear.volume,
            random.volume
        );
    }

    #[test]
    fn all_strategies_evaluate_a_two_level_factory() {
        let cfg = FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse);
        for strategy in [
            Strategy::random(2),
            Strategy::linear(),
            cheap_fd(2),
            Strategy::graph_partition(2),
            Strategy::hierarchical_stitching(Default::default()),
        ] {
            let eval = evaluate(&cfg, &strategy, &EvaluationConfig::default()).unwrap();
            assert!(eval.latency_cycles > 0, "{}", strategy.short_name());
            assert!(eval.latency_cycles >= eval.critical_path_cycles);
        }
    }

    #[test]
    fn reuse_reduces_area_for_linear_mapping() {
        let reuse = evaluate(
            &FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap();
        let no_reuse = evaluate(
            &FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap();
        assert!(reuse.logical_qubits < no_reuse.logical_qubits);
        assert!(reuse.area <= no_reuse.area);
    }
}
