//! On-disk persistent tier of the evaluation cache.
//!
//! A cache directory (the `--cache-dir` flag / `"cache_dir"` spec field)
//! holds [`NUM_BUCKETS`] *segment files* named `seg-XX.bin`, where `XX` is
//! the FNV-1a bucket of the record's key. A segment is a pure append log of
//! length-prefixed records:
//!
//! ```text
//! record := len:u32-LE  payload[len]
//! payload := FORMAT_VERSION:u8  key:String  evaluation:Evaluation
//! ```
//!
//! with `key`/`evaluation` in the [`crate::serdes`] binary encoding. Each
//! record is appended with a single `O_APPEND` write, so records from
//! concurrent processes interleave whole — the tier is shared safely by
//! parallel `msfu` invocations and by every worker of a serve cluster.
//!
//! Opening a tier scans every segment once. Damage is tolerated, never
//! fatal: a record from another format version, a corrupt payload, or a
//! truncated tail (e.g. a process killed mid-append) produces a typed
//! [`PersistWarning`] and the scan moves on — at worst an entry is
//! re-simulated and re-appended. Unknown files in the directory are left
//! alone and ignored.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::serdes::{BinCodec, CodecError, FORMAT_VERSION};
use crate::Evaluation;

/// Number of hash-bucketed segment files in a cache directory.
pub const NUM_BUCKETS: usize = 16;

/// A non-fatal problem with the persistent tier: a damaged or
/// foreign-version record skipped on open, or an append that could not be
/// written. The cache reports these (to stderr) and keeps going — the
/// persistent tier is an accelerator, never a correctness dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistWarning {
    /// A record written by a different codec format version was skipped.
    BadVersion {
        /// Segment file holding the record.
        path: PathBuf,
        /// Byte offset of the record in the segment.
        offset: usize,
        /// The version byte found (the current one is
        /// [`FORMAT_VERSION`]).
        found: u8,
    },
    /// A record's payload failed to decode and was skipped.
    Corrupt {
        /// Segment file holding the record.
        path: PathBuf,
        /// Byte offset of the record in the segment.
        offset: usize,
        /// The decode failure.
        reason: String,
    },
    /// The segment ended mid-record (e.g. a crash mid-append); the partial
    /// tail was ignored.
    TruncatedTail {
        /// Segment file with the partial record.
        path: PathBuf,
        /// Byte offset where the partial record starts.
        offset: usize,
    },
    /// A segment could not be read or appended to.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The I/O error message.
        message: String,
    },
}

impl std::fmt::Display for PersistWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistWarning::BadVersion {
                path,
                offset,
                found,
            } => write!(
                f,
                "{}:{offset}: skipping record with format version {found} (this build reads {FORMAT_VERSION})",
                path.display()
            ),
            PersistWarning::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "{}:{offset}: skipping corrupt record: {reason}",
                path.display()
            ),
            PersistWarning::TruncatedTail { path, offset } => write!(
                f,
                "{}:{offset}: ignoring truncated record tail",
                path.display()
            ),
            PersistWarning::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

/// FNV-1a of the key, used only to pick a segment bucket (the full key is
/// stored in the record, so hash collisions merely co-locate records).
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Path of the segment file that holds `key`'s bucket.
fn segment_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("seg-{:02x}.bin", fnv1a(key) as usize % NUM_BUCKETS))
}

/// Handle on an opened cache directory. Created by [`DiskTier::open`],
/// which also returns everything readable on disk; afterwards the tier only
/// appends.
#[derive(Debug)]
pub(crate) struct DiskTier {
    dir: PathBuf,
}

/// What [`DiskTier::open`] found on disk.
pub(crate) struct DiskContents {
    /// Every decodable `(key, evaluation)` record. Duplicate keys may occur
    /// (two processes racing the same miss both persist it); the records are
    /// identical because keys are content addresses.
    pub entries: Vec<(String, Evaluation)>,
    /// Damage skipped while scanning.
    pub warnings: Vec<PersistWarning>,
}

impl DiskTier {
    /// Opens (creating if necessary) the cache directory and scans every
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the directory cannot be created —
    /// the only fatal condition; per-file damage becomes warnings.
    pub(crate) fn open(dir: &Path) -> Result<(DiskTier, DiskContents), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache directory {}: {e}", dir.display()))?;
        let mut contents = DiskContents {
            entries: Vec::new(),
            warnings: Vec::new(),
        };
        for bucket in 0..NUM_BUCKETS {
            let path = dir.join(format!("seg-{bucket:02x}.bin"));
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    contents.warnings.push(PersistWarning::Io {
                        path,
                        message: e.to_string(),
                    });
                    continue;
                }
            };
            scan_segment(&path, &bytes, &mut contents);
        }
        let tier = DiskTier {
            dir: dir.to_path_buf(),
        };
        Ok((tier, contents))
    }

    /// Appends one record to its bucket's segment: a single `O_APPEND`
    /// write of the whole length-prefixed record, so concurrent appenders
    /// interleave whole records.
    ///
    /// # Errors
    ///
    /// Returns a typed warning when the segment cannot be opened or written;
    /// the in-memory cache is unaffected.
    pub(crate) fn append(&self, key: &str, evaluation: &Evaluation) -> Result<(), PersistWarning> {
        let mut payload = vec![FORMAT_VERSION];
        key.to_string().encode_into(&mut payload);
        evaluation.encode_into(&mut payload);
        let mut record = (payload.len() as u32).to_bytes();
        record.extend_from_slice(&payload);
        let path = segment_path(&self.dir, key);
        let io = |e: std::io::Error| PersistWarning::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(io)?;
        file.write_all(&record).map_err(io)
    }
}

/// Scans one segment's bytes, pushing decodable records and damage warnings
/// into `contents`. The length framing is version-independent, so a bad
/// version or corrupt payload skips one record and the scan continues; only
/// a tail too short for its own framing ends the scan of this segment.
fn scan_segment(path: &Path, bytes: &[u8], contents: &mut DiskContents) {
    let mut offset = 0usize;
    while offset < bytes.len() {
        let mut cursor = &bytes[offset..];
        let len = match u32::decode(&mut cursor) {
            Ok(len) => len as usize,
            Err(_) => {
                contents.warnings.push(PersistWarning::TruncatedTail {
                    path: path.to_path_buf(),
                    offset,
                });
                return;
            }
        };
        if cursor.len() < len {
            contents.warnings.push(PersistWarning::TruncatedTail {
                path: path.to_path_buf(),
                offset,
            });
            return;
        }
        let payload = &cursor[..len];
        match decode_payload(payload) {
            Ok(entry) => contents.entries.push(entry),
            Err(PayloadError::Version(found)) => {
                contents.warnings.push(PersistWarning::BadVersion {
                    path: path.to_path_buf(),
                    offset,
                    found,
                });
            }
            Err(PayloadError::Codec(e)) => {
                contents.warnings.push(PersistWarning::Corrupt {
                    path: path.to_path_buf(),
                    offset,
                    reason: e.to_string(),
                });
            }
        }
        offset += 4 + len;
    }
}

enum PayloadError {
    Version(u8),
    Codec(CodecError),
}

fn decode_payload(mut payload: &[u8]) -> Result<(String, Evaluation), PayloadError> {
    let version = u8::decode(&mut payload).map_err(PayloadError::Codec)?;
    if version != FORMAT_VERSION {
        return Err(PayloadError::Version(version));
    }
    let key = String::decode(&mut payload).map_err(PayloadError::Codec)?;
    let evaluation = Evaluation::decode(&mut payload).map_err(PayloadError::Codec)?;
    if payload.is_empty() {
        Ok((key, evaluation))
    } else {
        Err(PayloadError::Codec(CodecError::TrailingBytes {
            remaining: payload.len(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvaluationConfig, Strategy};
    use msfu_distill::FactoryConfig;

    fn sample_evaluation() -> Evaluation {
        crate::evaluate(
            &FactoryConfig::single_level(2),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msfu-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let evaluation = sample_evaluation();
        {
            let (tier, contents) = DiskTier::open(&dir).unwrap();
            assert!(contents.entries.is_empty());
            assert!(contents.warnings.is_empty());
            tier.append("key-a", &evaluation).unwrap();
            tier.append("key-b", &evaluation).unwrap();
        }
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.warnings.is_empty());
        let mut keys: Vec<&str> = contents.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(keys, ["key-a", "key-b"]);
        for (_, back) in &contents.entries {
            assert_eq!(back, &evaluation);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_tolerated_and_earlier_records_survive() {
        let dir = temp_dir("truncated");
        let evaluation = sample_evaluation();
        {
            let (tier, _) = DiskTier::open(&dir).unwrap();
            tier.append("whole", &evaluation).unwrap();
        }
        // Chop bytes off the segment holding "whole", simulating a crash
        // mid-append of a second record.
        let path = segment_path(&dir, "whole");
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(&full[..full.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert_eq!(contents.entries.len(), 1);
        assert_eq!(contents.entries[0].0, "whole");
        assert!(matches!(
            contents.warnings.as_slice(),
            [PersistWarning::TruncatedTail { .. }]
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_version_record_is_skipped_with_a_typed_warning() {
        let dir = temp_dir("badversion");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-written segment left by an "older build": one framed record
        // whose payload leads with a version byte this build does not read.
        let payload = [0u8, 1, 2, 3];
        let mut record = (payload.len() as u32).to_le_bytes().to_vec();
        record.extend_from_slice(&payload);
        std::fs::write(dir.join("seg-00.bin"), &record).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.entries.is_empty());
        assert!(
            matches!(
                contents.warnings.as_slice(),
                [PersistWarning::BadVersion { found: 0, .. }]
            ),
            "warnings: {:?}",
            contents.warnings
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_is_skipped_and_later_records_survive() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        // First record: valid framing + version, garbage payload. Second:
        // genuine. The scan must warn on the first and still load the second.
        let garbage = [FORMAT_VERSION, 0xff, 0xff, 0xff];
        let mut bytes = (garbage.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&garbage);
        let evaluation = sample_evaluation();
        let mut payload = vec![FORMAT_VERSION];
        "good".to_string().encode_into(&mut payload);
        evaluation.encode_into(&mut payload);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(dir.join("seg-07.bin"), &bytes).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert_eq!(contents.entries.len(), 1);
        assert_eq!(contents.entries[0].0, "good");
        assert_eq!(contents.entries[0].1, evaluation);
        assert!(matches!(
            contents.warnings.as_slice(),
            [PersistWarning::Corrupt { .. }]
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_files_are_ignored() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), b"not a segment").unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.entries.is_empty());
        assert!(contents.warnings.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buckets_are_stable_and_in_range() {
        // The bucket function is part of the on-disk format: a change would
        // orphan existing records (they would still load — open scans every
        // bucket — but appends would fragment). Pin it.
        assert_eq!(fnv1a("") & 0xffff_ffff, 0x84222325 & 0xffff_ffff);
        for key in ["a", "b", "some|longer|key"] {
            let path = segment_path(Path::new("d"), key);
            let name = path.file_name().unwrap().to_str().unwrap();
            assert!(name.starts_with("seg-") && name.ends_with(".bin"));
        }
    }

    #[test]
    fn warnings_display_without_panicking() {
        let warnings = [
            PersistWarning::BadVersion {
                path: PathBuf::from("seg-00.bin"),
                offset: 0,
                found: 9,
            },
            PersistWarning::Corrupt {
                path: PathBuf::from("seg-00.bin"),
                offset: 4,
                reason: "boom".into(),
            },
            PersistWarning::TruncatedTail {
                path: PathBuf::from("seg-00.bin"),
                offset: 8,
            },
            PersistWarning::Io {
                path: PathBuf::from("seg-00.bin"),
                message: "denied".into(),
            },
        ];
        for warning in warnings {
            assert!(!warning.to_string().is_empty());
        }
    }
}
