//! On-disk persistent tier of the evaluation cache.
//!
//! A cache directory (the `--cache-dir` flag / `"cache_dir"` spec field)
//! holds [`NUM_BUCKETS`] *segment files* named `seg-XX.bin`, where `XX` is
//! the FNV-1a bucket of the record's key. A segment is a pure append log of
//! length-prefixed records:
//!
//! ```text
//! record := len:u32-LE  payload[len]
//! payload := FORMAT_VERSION:u8  key:String  evaluation:Evaluation
//! ```
//!
//! with `key`/`evaluation` in the [`crate::serdes`] binary encoding. Each
//! record is appended with a single `O_APPEND` write, so records from
//! concurrent processes interleave whole — the tier is shared safely by
//! parallel `msfu` invocations and by every worker of a serve cluster.
//!
//! Opening a tier scans every segment once. Damage is tolerated, never
//! fatal: a record from another format version, a corrupt payload, or a
//! truncated tail (e.g. a process killed mid-append) produces a typed
//! [`PersistWarning`] and the scan moves on — at worst an entry is
//! re-simulated and re-appended. Unknown files in the directory are left
//! alone and ignored.
//!
//! Damage also self-heals. A segment that produced any warning is
//! **quarantined** on open — renamed `seg-XX.bin.quarantined` — so the next
//! open starts from a clean directory while the damaged bytes stay on disk
//! for repair. [`verify_dir`] reports a directory's health without touching
//! it, and [`compact_dir`] rewrites every live record (salvaging the
//! decodable ones from quarantined segments, dropping dead bytes and
//! duplicate keys) so the directory re-opens warning-free.

use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::serdes::{BinCodec, CodecError, FORMAT_VERSION};
use crate::Evaluation;

/// Number of hash-bucketed segment files in a cache directory.
pub const NUM_BUCKETS: usize = 16;

/// A non-fatal problem with the persistent tier: a damaged or
/// foreign-version record skipped on open, or an append that could not be
/// written. The cache reports these (to stderr) and keeps going — the
/// persistent tier is an accelerator, never a correctness dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistWarning {
    /// A record written by a different codec format version was skipped.
    BadVersion {
        /// Segment file holding the record.
        path: PathBuf,
        /// Byte offset of the record in the segment.
        offset: usize,
        /// The version byte found (the current one is
        /// [`FORMAT_VERSION`]).
        found: u8,
    },
    /// A record's payload failed to decode and was skipped.
    Corrupt {
        /// Segment file holding the record.
        path: PathBuf,
        /// Byte offset of the record in the segment.
        offset: usize,
        /// The decode failure.
        reason: String,
    },
    /// The segment ended mid-record (e.g. a crash mid-append); the partial
    /// tail was ignored.
    TruncatedTail {
        /// Segment file with the partial record.
        path: PathBuf,
        /// Byte offset where the partial record starts.
        offset: usize,
    },
    /// A segment could not be read or appended to.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The I/O error message.
        message: String,
    },
}

impl std::fmt::Display for PersistWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistWarning::BadVersion {
                path,
                offset,
                found,
            } => write!(
                f,
                "{}:{offset}: skipping record with format version {found} (this build reads {FORMAT_VERSION})",
                path.display()
            ),
            PersistWarning::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "{}:{offset}: skipping corrupt record: {reason}",
                path.display()
            ),
            PersistWarning::TruncatedTail { path, offset } => write!(
                f,
                "{}:{offset}: ignoring truncated record tail",
                path.display()
            ),
            PersistWarning::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

/// FNV-1a of the key, used only to pick a segment bucket (the full key is
/// stored in the record, so hash collisions merely co-locate records).
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in key.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// File name of bucket `bucket`'s segment.
fn bucket_name(bucket: usize) -> String {
    format!("seg-{bucket:02x}.bin")
}

/// The bucket holding `key`'s record.
fn bucket_of(key: &str) -> usize {
    fnv1a(key) as usize % NUM_BUCKETS
}

/// Path of the segment file that holds `key`'s bucket.
fn segment_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(bucket_name(bucket_of(key)))
}

/// Quarantine name of a segment: `seg-XX.bin` → `seg-XX.bin.quarantined`.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantined");
    PathBuf::from(name)
}

/// Handle on an opened cache directory. Created by [`DiskTier::open`],
/// which also returns everything readable on disk; afterwards the tier only
/// appends.
#[derive(Debug)]
pub(crate) struct DiskTier {
    dir: PathBuf,
}

/// What [`DiskTier::open`] found on disk.
pub(crate) struct DiskContents {
    /// Every decodable `(key, evaluation)` record. Duplicate keys may occur
    /// (two processes racing the same miss both persist it); the records are
    /// identical because keys are content addresses.
    pub entries: Vec<(String, Evaluation)>,
    /// Damage skipped while scanning.
    pub warnings: Vec<PersistWarning>,
    /// Segments renamed `*.quarantined` by this open because they held
    /// damage. Their decodable records are already in `entries`;
    /// [`compact_dir`] salvages and removes the files.
    pub quarantined: Vec<PathBuf>,
}

impl DiskTier {
    /// Opens (creating if necessary) the cache directory and scans every
    /// segment. Segments holding damage are quarantined (renamed
    /// `seg-XX.bin.quarantined`) so the next open starts clean; their
    /// decodable records still load.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the directory cannot be created —
    /// the only fatal condition; per-file damage becomes warnings.
    pub(crate) fn open(dir: &Path) -> Result<(DiskTier, DiskContents), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache directory {}: {e}", dir.display()))?;
        let mut contents = DiskContents {
            entries: Vec::new(),
            warnings: Vec::new(),
            quarantined: Vec::new(),
        };
        for bucket in 0..NUM_BUCKETS {
            let path = dir.join(bucket_name(bucket));
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => {
                    contents.warnings.push(PersistWarning::Io {
                        path,
                        message: e.to_string(),
                    });
                    continue;
                }
            };
            let damage_before = contents.warnings.len();
            scan_segment(&path, &bytes, &mut contents);
            if contents.warnings.len() > damage_before {
                // Quarantine the damaged segment: future appends recreate a
                // clean file, and `compact_dir` salvages what is decodable.
                let to = quarantine_path(&path);
                match std::fs::rename(&path, &to) {
                    Ok(()) => contents.quarantined.push(to),
                    // Another process quarantined it between our read and
                    // rename; its records are loaded either way.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => contents.warnings.push(PersistWarning::Io {
                        path: path.clone(),
                        message: format!("cannot quarantine damaged segment: {e}"),
                    }),
                }
            }
        }
        let tier = DiskTier {
            dir: dir.to_path_buf(),
        };
        Ok((tier, contents))
    }

    /// Appends one record to its bucket's segment: a single `O_APPEND`
    /// write of the whole length-prefixed record, so concurrent appenders
    /// interleave whole records.
    ///
    /// # Errors
    ///
    /// Returns a typed warning when the segment cannot be opened or written;
    /// the in-memory cache is unaffected.
    pub(crate) fn append(&self, key: &str, evaluation: &Evaluation) -> Result<(), PersistWarning> {
        let mut payload = vec![FORMAT_VERSION];
        key.to_string().encode_into(&mut payload);
        evaluation.encode_into(&mut payload);
        let mut record = (payload.len() as u32).to_bytes();
        record.extend_from_slice(&payload);
        let path = segment_path(&self.dir, key);
        let io = |e: std::io::Error| PersistWarning::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(io)?;
        file.write_all(&record).map_err(io)
    }
}

/// Health report of a cache directory, from [`verify_dir`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Live segment files scanned.
    pub segments: usize,
    /// Decodable records across live segments.
    pub records: usize,
    /// Total live segment bytes.
    pub bytes: u64,
    /// Damage found in live segments (read-only scan: nothing is renamed).
    pub warnings: Vec<PersistWarning>,
    /// Quarantined segment files awaiting [`compact_dir`].
    pub quarantined: Vec<PathBuf>,
}

impl VerifyReport {
    /// Whether the directory is fully healthy: no damage and nothing
    /// quarantined.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty() && self.quarantined.is_empty()
    }
}

/// Scans a cache directory read-only and reports its health. Unlike
/// the cache's own open path this never renames or creates anything.
///
/// # Errors
///
/// Returns a message when `dir` is not a directory.
pub fn verify_dir(dir: &Path) -> Result<VerifyReport, String> {
    if !dir.is_dir() {
        return Err(format!("{} is not a cache directory", dir.display()));
    }
    let mut report = VerifyReport::default();
    for bucket in 0..NUM_BUCKETS {
        let path = dir.join(bucket_name(bucket));
        match std::fs::read(&path) {
            Ok(bytes) => {
                let mut contents = DiskContents {
                    entries: Vec::new(),
                    warnings: Vec::new(),
                    quarantined: Vec::new(),
                };
                scan_segment(&path, &bytes, &mut contents);
                report.segments += 1;
                report.records += contents.entries.len();
                report.bytes += bytes.len() as u64;
                report.warnings.extend(contents.warnings);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => report.warnings.push(PersistWarning::Io {
                path: path.clone(),
                message: e.to_string(),
            }),
        }
        let quarantined = quarantine_path(&path);
        if quarantined.exists() {
            report.quarantined.push(quarantined);
        }
    }
    Ok(report)
}

/// What [`compact_dir`] did.
#[derive(Debug, Default)]
pub struct CompactReport {
    /// Live records written back.
    pub records_kept: usize,
    /// Records dropped because an earlier record had the same key.
    pub duplicates_dropped: usize,
    /// Records recovered from quarantined segments.
    pub salvaged: usize,
    /// Damaged records dropped for good.
    pub damage_dropped: usize,
    /// Quarantined segment files deleted.
    pub quarantined_removed: usize,
    /// Segment bytes before compaction (live + quarantined).
    pub bytes_before: u64,
    /// Segment bytes after compaction.
    pub bytes_after: u64,
}

/// Rewrites a cache directory so it re-opens warning-free: every decodable
/// record from live **and** quarantined segments is kept (first record per
/// key wins — keys are content addresses, so duplicates are identical),
/// damaged bytes are dropped, each bucket is rewritten via a temp file +
/// atomic rename, and quarantined files are deleted.
///
/// Run this offline: records appended by a concurrent process while a
/// bucket is being rewritten would be lost.
///
/// # Errors
///
/// Returns a message when `dir` is not a directory or a rewrite fails (the
/// per-bucket rename is atomic, so an aborted compaction never damages a
/// bucket — at worst some buckets are compacted and others not yet).
pub fn compact_dir(dir: &Path) -> Result<CompactReport, String> {
    if !dir.is_dir() {
        return Err(format!("{} is not a cache directory", dir.display()));
    }
    let mut report = CompactReport::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut kept: Vec<(String, Evaluation)> = Vec::new();
    // Live segments first so their records win dedup, then quarantined ones.
    for quarantined in [false, true] {
        for bucket in 0..NUM_BUCKETS {
            let mut path = dir.join(bucket_name(bucket));
            if quarantined {
                path = quarantine_path(&path);
            }
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
            };
            report.bytes_before += bytes.len() as u64;
            let mut contents = DiskContents {
                entries: Vec::new(),
                warnings: Vec::new(),
                quarantined: Vec::new(),
            };
            scan_segment(&path, &bytes, &mut contents);
            report.damage_dropped += contents.warnings.len();
            for (key, evaluation) in contents.entries {
                if seen.insert(key.clone()) {
                    if quarantined {
                        report.salvaged += 1;
                    }
                    kept.push((key, evaluation));
                } else {
                    report.duplicates_dropped += 1;
                }
            }
        }
    }
    report.records_kept = kept.len();
    // Rewrite each bucket from its surviving records (scan order, so the
    // result is deterministic), then drop the quarantined sources.
    for bucket in 0..NUM_BUCKETS {
        let path = dir.join(bucket_name(bucket));
        let mut bytes = Vec::new();
        for (key, evaluation) in kept.iter().filter(|(k, _)| bucket_of(k) == bucket) {
            let mut payload = vec![FORMAT_VERSION];
            key.encode_into(&mut payload);
            evaluation.encode_into(&mut payload);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        if bytes.is_empty() {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("cannot remove {}: {e}", path.display())),
            }
            continue;
        }
        let tmp = path.with_extension("bin.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot replace {}: {e}", path.display()))?;
        report.bytes_after += bytes.len() as u64;
    }
    for bucket in 0..NUM_BUCKETS {
        let path = quarantine_path(&dir.join(bucket_name(bucket)));
        match std::fs::remove_file(&path) {
            Ok(()) => report.quarantined_removed += 1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot remove {}: {e}", path.display())),
        }
    }
    Ok(report)
}

/// How [`damage_segment`] corrupts a segment (deterministic fault
/// injection — see `msfu_service::faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentDamage {
    /// Cut the segment mid-record, as a crash mid-append would
    /// ([`PersistWarning::TruncatedTail`] on the next open).
    Truncate,
    /// Overwrite a record's payload bytes so it no longer decodes
    /// ([`PersistWarning::Corrupt`]).
    FlipBytes,
    /// Rewrite a record's format-version byte to a version this build does
    /// not read ([`PersistWarning::BadVersion`]).
    BadVersion,
}

/// Deterministically damages one segment file so the next open is
/// guaranteed to produce at least one [`PersistWarning`]. `seed` picks the
/// victim record (and the cut point for [`SegmentDamage::Truncate`]); the
/// bucket is taken modulo [`NUM_BUCKETS`]. A missing or empty segment is
/// replaced by a small damaged stub, so injection works even before the
/// bucket holds records. Returns the damaged path.
///
/// # Errors
///
/// Returns the I/O error when the segment cannot be read or written.
pub fn damage_segment(
    dir: &Path,
    bucket: usize,
    damage: SegmentDamage,
    seed: u64,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(bucket_name(bucket % NUM_BUCKETS));
    let mut bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    // Well-framed records as (payload_offset, payload_len).
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() >= offset + 4 {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() < offset + 4 + len {
            break;
        }
        records.push((offset + 4, len));
        offset += 4 + len;
    }
    if records.is_empty() {
        // Nothing to damage in place: write a stub that scans as damage.
        let stub: &[u8] = match damage {
            SegmentDamage::Truncate => &[0xff, 0xff],
            SegmentDamage::FlipBytes => &[4, 0, 0, 0, FORMAT_VERSION, 0xff, 0xff, 0xff],
            SegmentDamage::BadVersion => &[1, 0, 0, 0, 0xee],
        };
        std::fs::write(&path, stub)?;
        return Ok(path);
    }
    let victim = records[seed as usize % records.len()];
    match damage {
        SegmentDamage::Truncate => {
            // Cut inside the LAST record (truncation is a tail phenomenon);
            // any length in (start-4, start+len) leaves a partial tail.
            let (start, len) = *records.last().expect("non-empty");
            bytes.truncate(start - 3 + seed as usize % (len + 3));
        }
        SegmentDamage::FlipBytes => {
            // Clobber the key-length varint (payload bytes 1..5): 0xff
            // continuation bytes decode to a length far past the segment,
            // so the record is unreadable without touching its framing.
            let (start, len) = victim;
            if len >= 2 {
                for byte in &mut bytes[start + 1..start + len.min(5)] {
                    *byte = 0xff;
                }
            } else {
                // A 0/1-byte payload is already undecodable; leave it.
            }
        }
        SegmentDamage::BadVersion => {
            bytes[victim.0] = 0xee;
        }
    }
    std::fs::write(&path, &bytes)?;
    Ok(path)
}

/// Scans one segment's bytes, pushing decodable records and damage warnings
/// into `contents`. The length framing is version-independent, so a bad
/// version or corrupt payload skips one record and the scan continues; only
/// a tail too short for its own framing ends the scan of this segment.
fn scan_segment(path: &Path, bytes: &[u8], contents: &mut DiskContents) {
    let mut offset = 0usize;
    while offset < bytes.len() {
        let mut cursor = &bytes[offset..];
        let len = match u32::decode(&mut cursor) {
            Ok(len) => len as usize,
            Err(_) => {
                contents.warnings.push(PersistWarning::TruncatedTail {
                    path: path.to_path_buf(),
                    offset,
                });
                return;
            }
        };
        if cursor.len() < len {
            contents.warnings.push(PersistWarning::TruncatedTail {
                path: path.to_path_buf(),
                offset,
            });
            return;
        }
        let payload = &cursor[..len];
        match decode_payload(payload) {
            Ok(entry) => contents.entries.push(entry),
            Err(PayloadError::Version(found)) => {
                contents.warnings.push(PersistWarning::BadVersion {
                    path: path.to_path_buf(),
                    offset,
                    found,
                });
            }
            Err(PayloadError::Codec(e)) => {
                contents.warnings.push(PersistWarning::Corrupt {
                    path: path.to_path_buf(),
                    offset,
                    reason: e.to_string(),
                });
            }
        }
        offset += 4 + len;
    }
}

enum PayloadError {
    Version(u8),
    Codec(CodecError),
}

fn decode_payload(mut payload: &[u8]) -> Result<(String, Evaluation), PayloadError> {
    let version = u8::decode(&mut payload).map_err(PayloadError::Codec)?;
    if version != FORMAT_VERSION {
        return Err(PayloadError::Version(version));
    }
    let key = String::decode(&mut payload).map_err(PayloadError::Codec)?;
    let evaluation = Evaluation::decode(&mut payload).map_err(PayloadError::Codec)?;
    if payload.is_empty() {
        Ok((key, evaluation))
    } else {
        Err(PayloadError::Codec(CodecError::TrailingBytes {
            remaining: payload.len(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvaluationConfig, Strategy};
    use msfu_distill::FactoryConfig;

    fn sample_evaluation() -> Evaluation {
        crate::evaluate(
            &FactoryConfig::single_level(2),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msfu-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let evaluation = sample_evaluation();
        {
            let (tier, contents) = DiskTier::open(&dir).unwrap();
            assert!(contents.entries.is_empty());
            assert!(contents.warnings.is_empty());
            tier.append("key-a", &evaluation).unwrap();
            tier.append("key-b", &evaluation).unwrap();
        }
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.warnings.is_empty());
        let mut keys: Vec<&str> = contents.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(keys, ["key-a", "key-b"]);
        for (_, back) in &contents.entries {
            assert_eq!(back, &evaluation);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_tolerated_and_earlier_records_survive() {
        let dir = temp_dir("truncated");
        let evaluation = sample_evaluation();
        {
            let (tier, _) = DiskTier::open(&dir).unwrap();
            tier.append("whole", &evaluation).unwrap();
        }
        // Chop bytes off the segment holding "whole", simulating a crash
        // mid-append of a second record.
        let path = segment_path(&dir, "whole");
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(&full[..full.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert_eq!(contents.entries.len(), 1);
        assert_eq!(contents.entries[0].0, "whole");
        assert!(matches!(
            contents.warnings.as_slice(),
            [PersistWarning::TruncatedTail { .. }]
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_version_record_is_skipped_with_a_typed_warning() {
        let dir = temp_dir("badversion");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-written segment left by an "older build": one framed record
        // whose payload leads with a version byte this build does not read.
        let payload = [0u8, 1, 2, 3];
        let mut record = (payload.len() as u32).to_le_bytes().to_vec();
        record.extend_from_slice(&payload);
        std::fs::write(dir.join("seg-00.bin"), &record).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.entries.is_empty());
        assert!(
            matches!(
                contents.warnings.as_slice(),
                [PersistWarning::BadVersion { found: 0, .. }]
            ),
            "warnings: {:?}",
            contents.warnings
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_is_skipped_and_later_records_survive() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        // First record: valid framing + version, garbage payload. Second:
        // genuine. The scan must warn on the first and still load the second.
        let garbage = [FORMAT_VERSION, 0xff, 0xff, 0xff];
        let mut bytes = (garbage.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&garbage);
        let evaluation = sample_evaluation();
        let mut payload = vec![FORMAT_VERSION];
        "good".to_string().encode_into(&mut payload);
        evaluation.encode_into(&mut payload);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(dir.join("seg-07.bin"), &bytes).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert_eq!(contents.entries.len(), 1);
        assert_eq!(contents.entries[0].0, "good");
        assert_eq!(contents.entries[0].1, evaluation);
        assert!(matches!(
            contents.warnings.as_slice(),
            [PersistWarning::Corrupt { .. }]
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_files_are_ignored() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), b"not a segment").unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.entries.is_empty());
        assert!(contents.warnings.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buckets_are_stable_and_in_range() {
        // The bucket function is part of the on-disk format: a change would
        // orphan existing records (they would still load — open scans every
        // bucket — but appends would fragment). Pin it.
        assert_eq!(fnv1a("") & 0xffff_ffff, 0x84222325 & 0xffff_ffff);
        for key in ["a", "b", "some|longer|key"] {
            let path = segment_path(Path::new("d"), key);
            let name = path.file_name().unwrap().to_str().unwrap();
            assert!(name.starts_with("seg-") && name.ends_with(".bin"));
        }
    }

    #[test]
    fn damaged_segment_is_quarantined_on_open_and_next_open_is_clean() {
        let dir = temp_dir("quarantine");
        let evaluation = sample_evaluation();
        {
            let (tier, _) = DiskTier::open(&dir).unwrap();
            tier.append("whole", &evaluation).unwrap();
        }
        let path = segment_path(&dir, "whole");
        damage_segment(&dir, bucket_of("whole"), SegmentDamage::Truncate, 7).unwrap();
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(!contents.warnings.is_empty());
        assert_eq!(contents.quarantined, [quarantine_path(&path)]);
        assert!(!path.exists(), "damaged segment must be renamed away");
        assert!(quarantine_path(&path).exists());
        // The next open sees a clean directory (minus the quarantined data).
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.warnings.is_empty());
        assert!(contents.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_damage_without_renaming_and_compact_heals() {
        let dir = temp_dir("compact");
        let evaluation = sample_evaluation();
        {
            let (tier, _) = DiskTier::open(&dir).unwrap();
            tier.append("key-a", &evaluation).unwrap();
            tier.append("key-b", &evaluation).unwrap();
            tier.append("key-a", &evaluation).unwrap(); // duplicate
        }
        // Seed 0 → the victim is the first record of the bucket, which is
        // the first "key-a" append regardless of how the keys bucket.
        damage_segment(&dir, bucket_of("key-a"), SegmentDamage::BadVersion, 0).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert!(!report.is_clean());
        assert!(!report.warnings.is_empty());
        assert!(segment_path(&dir, "key-a").exists(), "verify is read-only");

        // Open quarantines the damaged bucket, then compact salvages its
        // surviving records and drops the dead bytes.
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(!contents.quarantined.is_empty());
        let report = compact_dir(&dir).unwrap();
        assert!(report.salvaged >= 1, "report: {report:?}");
        assert!(report.quarantined_removed >= 1);
        assert!(report.damage_dropped >= 1);
        assert!(report.bytes_after < report.bytes_before);

        let after = verify_dir(&dir).unwrap();
        assert!(after.is_clean(), "after compact: {:?}", after.warnings);
        let (_, contents) = DiskTier::open(&dir).unwrap();
        assert!(contents.warnings.is_empty());
        let mut keys: Vec<&str> = contents.entries.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        // "key-a" survives via salvage unless the damage hit it; either way
        // every record that still decodes is kept exactly once.
        assert!(keys.windows(2).all(|w| w[0] != w[1]), "keys: {keys:?}");
        assert!(keys.contains(&"key-b"));
        for (_, back) in &contents.entries {
            assert_eq!(back, &evaluation);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_damage_mode_produces_a_warning_even_on_a_missing_segment() {
        for (tag, damage) in [
            ("dmg-trunc", SegmentDamage::Truncate),
            ("dmg-flip", SegmentDamage::FlipBytes),
            ("dmg-ver", SegmentDamage::BadVersion),
        ] {
            // Populated segment.
            let dir = temp_dir(tag);
            let evaluation = sample_evaluation();
            {
                let (tier, _) = DiskTier::open(&dir).unwrap();
                tier.append("victim", &evaluation).unwrap();
            }
            damage_segment(&dir, bucket_of("victim"), damage, 42).unwrap();
            let (_, contents) = DiskTier::open(&dir).unwrap();
            assert!(
                !contents.warnings.is_empty(),
                "{damage:?} on a populated segment must warn"
            );
            std::fs::remove_dir_all(&dir).unwrap();

            // Missing segment: a damaged stub is created.
            let dir = temp_dir(&format!("{tag}-empty"));
            damage_segment(&dir, 3, damage, 0).unwrap();
            let (_, contents) = DiskTier::open(&dir).unwrap();
            assert!(
                !contents.warnings.is_empty(),
                "{damage:?} on a missing segment must warn"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn warnings_display_without_panicking() {
        let warnings = [
            PersistWarning::BadVersion {
                path: PathBuf::from("seg-00.bin"),
                offset: 0,
                found: 9,
            },
            PersistWarning::Corrupt {
                path: PathBuf::from("seg-00.bin"),
                offset: 4,
                reason: "boom".into(),
            },
            PersistWarning::TruncatedTail {
                path: PathBuf::from("seg-00.bin"),
                offset: 8,
            },
            PersistWarning::Io {
                path: PathBuf::from("seg-00.bin"),
                message: "denied".into(),
            },
        ];
        for warning in warnings {
            assert!(!warning.to_string().is_empty());
        }
    }
}
