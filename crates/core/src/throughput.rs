//! System-level factory provisioning (the "System-Level Performance" future
//! work of Section IX, and the motivation of Section II-D).
//!
//! An application consumes magic states at some rate; a factory design (as
//! evaluated by [`crate::evaluate`]) produces `capacity` states every
//! `latency` cycles and occupies `area` logical qubits, but only succeeds with
//! the probability given by the Bravyi-Haah error model. This module sizes a
//! bank of factories and a prepared-state buffer for a target application.

use serde::{Deserialize, Serialize};

use msfu_distill::{error_model, FactoryConfig};

use crate::Evaluation;

/// Demand side: how fast an application consumes magic states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApplicationDemand {
    /// Total number of T gates in the application (each consumes one state).
    pub t_count: f64,
    /// Average number of T gates the application wants to commit per logical
    /// cycle (its T-gate bandwidth).
    pub t_gates_per_cycle: f64,
}

impl ApplicationDemand {
    /// Demand of the Fe2S2 ground-state estimation workload used by the paper
    /// (Section II-D): ~10¹² T gates, with roughly one T gate issued per
    /// logical cycle.
    pub fn fe2s2() -> Self {
        ApplicationDemand {
            t_count: 1e12,
            t_gates_per_cycle: 1.0,
        }
    }
}

/// Provisioning plan for a bank of identical factories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactoryProvisioning {
    /// Expected number of good states one factory delivers per cycle,
    /// accounting for module failures.
    pub states_per_cycle_per_factory: f64,
    /// Number of factories needed to sustain the application's bandwidth.
    pub factories_needed: usize,
    /// Logical-qubit area of the whole bank.
    pub total_area: usize,
    /// Buffer capacity (in states) needed to ride out one full factory
    /// latency without starving the application.
    pub buffer_states: usize,
    /// Total cycles to finish the application, limited by either its own
    /// T-gate bandwidth or by state production.
    pub completion_cycles: f64,
    /// Total space-time volume spent on distillation over the run.
    pub distillation_volume: f64,
}

/// Sizes a bank of factories described by `eval` (one factory design,
/// already mapped and simulated) for the given application demand.
///
/// The success probability of a factory run is the per-module success
/// probability compounded over all modules of the design, using the
/// injected-state error rate `eps_inject`.
pub fn provision(
    eval: &Evaluation,
    config: &FactoryConfig,
    demand: &ApplicationDemand,
    eps_inject: f64,
) -> FactoryProvisioning {
    let latency = eval.latency_cycles.max(1) as f64;
    let capacity = config.capacity() as f64;

    // Probability that every module of every round succeeds. Rounds see
    // progressively cleaner states, so compute per-round success and compound
    // over the module counts.
    let mut success = 1.0f64;
    for round in 0..config.levels {
        let eps = error_model::input_error_at_round(config.k, round, eps_inject);
        let per_module = error_model::success_probability(config.k, eps);
        success *= per_module.powi(config.modules_in_round(round) as i32);
    }
    let states_per_cycle = capacity * success / latency;

    let factories_needed = if states_per_cycle <= 0.0 {
        usize::MAX
    } else {
        (demand.t_gates_per_cycle / states_per_cycle)
            .ceil()
            .max(1.0) as usize
    };
    let production_rate = states_per_cycle * factories_needed as f64;
    let completion_cycles = if production_rate <= 0.0 {
        f64::INFINITY
    } else {
        (demand.t_count / demand.t_gates_per_cycle).max(demand.t_count / production_rate)
    };

    FactoryProvisioning {
        states_per_cycle_per_factory: states_per_cycle,
        factories_needed,
        total_area: eval.area.saturating_mul(factories_needed),
        buffer_states: (demand.t_gates_per_cycle * latency).ceil() as usize,
        completion_cycles,
        distillation_volume: eval.area as f64 * factories_needed as f64 * completion_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, EvaluationConfig, Strategy};

    fn sample_eval() -> (Evaluation, FactoryConfig) {
        let config = FactoryConfig::single_level(4);
        let eval = evaluate(&config, &Strategy::linear(), &EvaluationConfig::default()).unwrap();
        (eval, config)
    }

    #[test]
    fn provisioning_scales_with_demand() {
        let (eval, config) = sample_eval();
        let light = ApplicationDemand {
            t_count: 1e6,
            t_gates_per_cycle: 0.01,
        };
        let heavy = ApplicationDemand {
            t_count: 1e6,
            t_gates_per_cycle: 1.0,
        };
        let p_light = provision(&eval, &config, &light, 1e-3);
        let p_heavy = provision(&eval, &config, &heavy, 1e-3);
        assert!(p_heavy.factories_needed > p_light.factories_needed);
        assert!(p_heavy.total_area > p_light.total_area);
        assert!(p_heavy.buffer_states > p_light.buffer_states);
    }

    #[test]
    fn success_probability_reduces_throughput() {
        let (eval, config) = sample_eval();
        let demand = ApplicationDemand {
            t_count: 1e6,
            t_gates_per_cycle: 0.5,
        };
        let clean = provision(&eval, &config, &demand, 1e-6);
        let noisy = provision(&eval, &config, &demand, 5e-3);
        assert!(noisy.states_per_cycle_per_factory < clean.states_per_cycle_per_factory);
        assert!(noisy.factories_needed >= clean.factories_needed);
    }

    #[test]
    fn completion_is_bandwidth_limited_when_factories_are_plentiful() {
        let (eval, config) = sample_eval();
        let demand = ApplicationDemand {
            t_count: 1e6,
            t_gates_per_cycle: 0.001,
        };
        let p = provision(&eval, &config, &demand, 1e-4);
        // With a single factory easily covering the demand, the application's
        // own bandwidth is the limit.
        assert_eq!(p.factories_needed, 1);
        assert!((p.completion_cycles - 1e6 / 0.001).abs() < 1.0);
        assert!(p.distillation_volume > 0.0);
    }

    #[test]
    fn fe2s2_demand_matches_the_paper_workload() {
        let d = ApplicationDemand::fe2s2();
        assert_eq!(d.t_count, 1e12);
        assert!(d.t_gates_per_cycle > 0.0);
    }
}
