//! Shared nearest-rank percentile helpers.
//!
//! The streaming reporter ([`crate::stream`]) and the bench harness both
//! summarise latency samples as p50/p95/p99. The math lives here once, as the
//! classic *nearest-rank* definition: for `N` sorted samples the p-th
//! percentile is the sample at rank `ceil(p/100 * N)` (1-based), clamped to
//! `[1, N]`. It is exact on ties, never interpolates, and always returns an
//! observed sample — which keeps integer cycle counts integers and reports
//! byte-identical across runs.

/// The p50/p95/p99 summary of a sample set, by the nearest-rank definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Returns the nearest-rank `percent`-th percentile of `sorted` (ascending),
/// or `None` if the slice is empty.
///
/// Rank is `ceil(percent/100 * N)` (1-based), clamped to `[1, N]`, so
/// `percent <= 0.0` yields the minimum and `percent >= 100.0` the maximum.
///
/// # Example
///
/// ```
/// use msfu_core::stats::nearest_rank;
///
/// let sorted = [10, 20, 30, 40];
/// assert_eq!(nearest_rank(&sorted, 50.0), Some(20));
/// assert_eq!(nearest_rank(&sorted, 99.0), Some(40));
/// assert_eq!(nearest_rank(&[], 50.0), None);
/// ```
pub fn nearest_rank(sorted: &[u64], percent: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = ((percent / 100.0) * n as f64).ceil();
    let rank = if rank.is_nan() { 1 } else { rank as usize };
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Sorts `samples` in place and returns their p50/p95/p99 nearest-rank
/// summary, or `None` for an empty slice.
pub fn percentiles(samples: &mut [u64]) -> Option<Percentiles> {
    samples.sort_unstable();
    Some(Percentiles {
        p50: nearest_rank(samples, 50.0)?,
        p95: nearest_rank(samples, 95.0)?,
        p99: nearest_rank(samples, 99.0)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_percentiles() {
        assert_eq!(nearest_rank(&[], 50.0), None);
        assert_eq!(percentiles(&mut []), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let got = percentiles(&mut [7]).unwrap();
        assert_eq!(
            got,
            Percentiles {
                p50: 7,
                p95: 7,
                p99: 7
            }
        );
    }

    #[test]
    fn ties_resolve_to_the_tied_value() {
        let mut samples = [5, 5, 5, 5, 9];
        let got = percentiles(&mut samples).unwrap();
        assert_eq!(got.p50, 5);
        assert_eq!(got.p95, 9);
        assert_eq!(got.p99, 9);
    }

    #[test]
    fn exact_rank_boundaries_pick_the_lower_sample() {
        // N = 10: p50 rank = ceil(5.0) = 5 -> the 5th sample, not the 6th.
        let sorted: Vec<u64> = (1..=10).collect();
        assert_eq!(nearest_rank(&sorted, 50.0), Some(5));
        // p95 rank = ceil(9.5) = 10, p99 rank = ceil(9.9) = 10.
        assert_eq!(nearest_rank(&sorted, 95.0), Some(10));
        assert_eq!(nearest_rank(&sorted, 99.0), Some(10));
        // N = 100: every boundary is exact.
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 50.0), Some(50));
        assert_eq!(nearest_rank(&sorted, 95.0), Some(95));
        assert_eq!(nearest_rank(&sorted, 99.0), Some(99));
    }

    #[test]
    fn out_of_range_percents_clamp_to_min_and_max() {
        let sorted = [2, 4, 6];
        assert_eq!(nearest_rank(&sorted, 0.0), Some(2));
        assert_eq!(nearest_rank(&sorted, -5.0), Some(2));
        assert_eq!(nearest_rank(&sorted, 100.0), Some(6));
        assert_eq!(nearest_rank(&sorted, 250.0), Some(6));
    }

    #[test]
    fn percentiles_sort_unsorted_input() {
        let mut samples = [9, 1, 5, 3, 7];
        let got = percentiles(&mut samples).unwrap();
        assert_eq!(got.p50, 5);
        assert_eq!(samples, [1, 3, 5, 7, 9]);
    }
}
