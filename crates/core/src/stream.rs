//! Streaming job scheduler: online distillation traffic over a fixed fleet.
//!
//! The paper evaluates factory mappings only under static sweeps; this module
//! opens the "heavy traffic" scenario on top of them. A [`StreamSpec`]
//! declares a fixed **fleet** of factory configurations, a set of job
//! **classes** (distillation requests with level/capacity/volume demands and
//! a mapping strategy), a seeded **arrival process** ([`ArrivalProcess`]:
//! Poisson, bursty/MMPP, or an explicit adversarial trace), and one or more
//! **schedulers** to compare. A discrete-event simulator advances a shared
//! integer cycle clock: jobs arrive, wait in a queue, are placed onto free
//! servers by the scheduler, occupy them for a service time derived from the
//! real evaluation pipeline (through [`EvalCache`], so repeated
//! (config, strategy) lookups are near-free), and retire.
//!
//! Schedulers are pluggable through the same name-keyed registry pattern as
//! mappers: the built-ins are `fifo`, `priority`, `capacity_aware` and
//! `reuse_aware`, and [`register_stream_scheduler`] opens the line-up.
//!
//! Determinism is non-negotiable: arrivals come from a `ChaCha8` stream
//! seeded by the spec, every tie-break is fixed (completions before arrivals
//! at the same cycle, queue in arrival order, servers by ascending index),
//! and every scheduler replays the identical arrival sequence — so a fixed
//! spec yields a byte-identical [`StreamReport`] on every run.
//!
//! # Example
//!
//! ```
//! use msfu_core::stream::{ArrivalProcess, JobClass, StreamSpec};
//! use msfu_core::Strategy;
//! use msfu_distill::FactoryConfig;
//!
//! let spec = StreamSpec::new("quick")
//!     .with_horizon(2_000)
//!     .with_seed(7)
//!     .with_arrivals(ArrivalProcess::Poisson { rate: 0.004 })
//!     .server(FactoryConfig::single_level(2), 2)
//!     .class(JobClass::new("probe", Strategy::linear()));
//! let report = spec.run().unwrap();
//! assert_eq!(report.runs.len(), spec.schedulers.len());
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard};

use msfu_distill::{Factory, FactoryConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};

use crate::cache::{evaluation_key, open_eval_cache, CacheStats, EvalCache};
use crate::evaluate::{effective_factory, evaluate_mapped_with, with_thread_engine};
use crate::progress::{ProgressEvent, RunControl};
use crate::spec::{eval_from_json, factory_from_json, strategy_from_json};
use crate::stats::percentiles;
use crate::strategy::{ResolvedStrategy, Strategy};
use crate::sweep::{SweepResults, SweepRow};
use crate::{CoreError, Evaluation, EvaluationConfig, Result};

/// Hard cap on the number of generated arrivals, so a typo'd rate fails fast
/// as a typed spec error instead of exhausting memory.
const MAX_ARRIVALS: u64 = 2_000_000;

fn stream_err(reason: impl Into<String>) -> CoreError {
    CoreError::StreamSpec {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Scheduler plug-in surface
// ---------------------------------------------------------------------------

/// A job waiting for a server, as shown to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Global job id (index in arrival order).
    pub job: u64,
    /// Index of the job's class in the spec's `classes`.
    pub class: usize,
    /// Cycle the job arrived at.
    pub arrived: u64,
    /// The class's priority (higher is more urgent).
    pub priority: u64,
}

/// One fleet server, as shown to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerView {
    /// Whether the server is currently occupied by a job.
    pub busy: bool,
    /// Output states per factory execution (`FactoryConfig::capacity`).
    pub capacity: usize,
    /// Distillation levels of the server's factory.
    pub levels: usize,
    /// Class of the last job the server ran, if any (reuse signal).
    pub last_class: Option<usize>,
}

/// The read-only dispatch snapshot a [`StreamScheduler`] decides from.
#[derive(Debug)]
pub struct SchedulerView<'a> {
    /// Current simulation cycle.
    pub now: u64,
    /// Jobs waiting for a server, in arrival order.
    pub queue: &'a [QueuedJob],
    /// The fleet, one entry per server, in fixed spec order.
    pub servers: &'a [ServerView],
    feasible: &'a [Vec<bool>],
}

impl SchedulerView<'_> {
    /// Whether `server` satisfies the level/capacity demands of `class`.
    pub fn feasible(&self, class: usize, server: usize) -> bool {
        self.feasible[class][server]
    }

    /// Indices of free servers feasible for `class`, ascending.
    pub fn free_feasible<'b>(&'b self, class: usize) -> impl Iterator<Item = usize> + 'b {
        self.servers
            .iter()
            .enumerate()
            .filter(move |(si, s)| !s.busy && self.feasible(class, *si))
            .map(|(si, _)| si)
    }
}

/// A pluggable placement policy for the streaming simulator.
///
/// At every dispatch opportunity the engine calls [`select`] repeatedly until
/// it returns `None`; each `Some((queue_index, server_index))` assigns the
/// queued job at `queue_index` to the free server at `server_index` and the
/// view is rebuilt. A selection that is out of bounds, targets a busy server
/// or violates feasibility ends dispatching for the current cycle — the
/// engine never panics on a misbehaving plug-in, and stays deterministic.
///
/// [`select`]: StreamScheduler::select
pub trait StreamScheduler: Send + Sync {
    /// Picks the next `(queue_index, server_index)` assignment, or `None` to
    /// wait for the next event.
    fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)>;
}

/// `fifo`: oldest job first, placed on the lowest-index free feasible server.
struct Fifo;

impl StreamScheduler for Fifo {
    fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)> {
        for (qi, job) in view.queue.iter().enumerate() {
            if let Some(si) = view.free_feasible(job.class).next() {
                return Some((qi, si));
            }
        }
        None
    }
}

/// `priority`: highest class priority first (ties in arrival order), placed
/// on the lowest-index free feasible server.
struct Priority;

impl StreamScheduler for Priority {
    fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)> {
        let mut order: Vec<usize> = (0..view.queue.len()).collect();
        // Stable sort: equal priorities keep arrival order.
        order.sort_by_key(|&qi| Reverse(view.queue[qi].priority));
        for qi in order {
            if let Some(si) = view.free_feasible(view.queue[qi].class).next() {
                return Some((qi, si));
            }
        }
        None
    }
}

/// `capacity_aware`: oldest job first, best-fit server — the free feasible
/// server with the smallest capacity (ties by index), keeping big factories
/// available for bulk classes.
struct CapacityAware;

impl StreamScheduler for CapacityAware {
    fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)> {
        for (qi, job) in view.queue.iter().enumerate() {
            let best = view
                .free_feasible(job.class)
                .min_by_key(|&si| (view.servers[si].capacity, si));
            if let Some(si) = best {
                return Some((qi, si));
            }
        }
        None
    }
}

/// `reuse_aware`: oldest job first, preferring a free feasible server whose
/// last job had the same class (no setup cost), then a cold (never-used)
/// server — leaving other classes' warm servers intact — then best-fit.
struct ReuseAware;

impl StreamScheduler for ReuseAware {
    fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)> {
        for (qi, job) in view.queue.iter().enumerate() {
            let warm = view
                .free_feasible(job.class)
                .find(|&si| view.servers[si].last_class == Some(job.class));
            if let Some(si) = warm {
                return Some((qi, si));
            }
            let cold = view
                .free_feasible(job.class)
                .filter(|&si| view.servers[si].last_class.is_none())
                .min_by_key(|&si| (view.servers[si].capacity, si));
            if let Some(si) = cold {
                return Some((qi, si));
            }
            let best = view
                .free_feasible(job.class)
                .min_by_key(|&si| (view.servers[si].capacity, si));
            if let Some(si) = best {
                return Some((qi, si));
            }
        }
        None
    }
}

/// Builds one scheduler instance; registered under a name in a
/// [`SchedulerRegistry`].
pub type SchedulerBuilder = dyn Fn() -> Box<dyn StreamScheduler> + Send + Sync;

/// A name-keyed registry of stream schedulers — the mapper-registry pattern
/// applied to placement policies.
///
/// Names iterate in sorted (BTree) order, so listings and error messages are
/// deterministic.
pub struct SchedulerRegistry {
    builders: BTreeMap<String, Arc<SchedulerBuilder>>,
}

impl SchedulerRegistry {
    /// An empty registry (no schedulers).
    pub fn empty() -> Self {
        SchedulerRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// A registry pre-loaded with the four built-ins: `fifo`, `priority`,
    /// `capacity_aware`, `reuse_aware`.
    pub fn with_builtins() -> Self {
        let mut registry = SchedulerRegistry::empty();
        let builtin = |registry: &mut SchedulerRegistry,
                       name: &str,
                       builder: fn() -> Box<dyn StreamScheduler>| {
            registry
                .register(name, builder)
                .expect("built-in scheduler names are unique");
        };
        builtin(&mut registry, "fifo", || Box::new(Fifo));
        builtin(&mut registry, "priority", || Box::new(Priority));
        builtin(&mut registry, "capacity_aware", || Box::new(CapacityAware));
        builtin(&mut registry, "reuse_aware", || Box::new(ReuseAware));
        registry
    }

    /// Registers `builder` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StreamSpec`] if the name is already taken.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        builder: impl Fn() -> Box<dyn StreamScheduler> + Send + Sync + 'static,
    ) -> Result<()> {
        let name = name.into();
        if self.builders.contains_key(&name) {
            return Err(stream_err(format!(
                "scheduler `{name}` is already registered"
            )));
        }
        self.builders.insert(name, Arc::new(builder));
        Ok(())
    }

    /// The registered scheduler names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    /// Instantiates the scheduler registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownScheduler`] (with the sorted known-names
    /// list) if nothing is registered under `name`.
    pub fn build(&self, name: &str) -> Result<Box<dyn StreamScheduler>> {
        match self.builders.get(name) {
            Some(builder) => Ok(builder()),
            None => Err(CoreError::UnknownScheduler {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::with_builtins()
    }
}

/// The process-wide scheduler registry behind [`StreamSpec::run`].
fn global_schedulers() -> &'static RwLock<SchedulerRegistry> {
    static REGISTRY: OnceLock<RwLock<SchedulerRegistry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(SchedulerRegistry::with_builtins()))
}

fn read_schedulers() -> RwLockReadGuard<'static, SchedulerRegistry> {
    global_schedulers()
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Registers a custom stream scheduler under `name` in the process-wide
/// registry, making it usable by every [`StreamSpec`] in the process —
/// including specs declared as JSON.
///
/// # Errors
///
/// Returns [`CoreError::StreamSpec`] if the name is already registered (the
/// four built-ins are pre-registered).
pub fn register_stream_scheduler(
    name: impl Into<String>,
    builder: impl Fn() -> Box<dyn StreamScheduler> + Send + Sync + 'static,
) -> Result<()> {
    global_schedulers()
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .register(name, builder)
}

/// The names currently registered in the process-wide scheduler registry,
/// sorted.
pub fn registered_stream_schedulers() -> Vec<String> {
    read_schedulers().names()
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

/// One generated job arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival cycle (non-decreasing across a generated sequence).
    pub at: u64,
    /// Index of the job's class in the spec's `classes`.
    pub class: usize,
}

/// One event of an explicit (adversarial) arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival cycle.
    pub at: u64,
    /// Index of the job's class in the spec's `classes`.
    pub class: usize,
}

/// A seeded arrival process: how job arrivals are laid onto the clock.
///
/// Generation is a pure function of `(process, seed, horizon, class weights)`
/// — the same inputs always produce the identical event sequence, and
/// distinct seeds diverge.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival times at `rate` jobs
    /// per cycle.
    Poisson {
        /// Mean arrival rate in jobs per cycle (positive, finite).
        rate: f64,
    },
    /// A two-state Markov-modulated Poisson process: `rate` while calm,
    /// `burst_rate` while bursting, with exponentially distributed dwell
    /// times of mean `mean_calm` / `mean_burst` cycles.
    Bursty {
        /// Calm-state arrival rate in jobs per cycle (positive, finite).
        rate: f64,
        /// Burst-state arrival rate in jobs per cycle (positive, finite).
        burst_rate: f64,
        /// Mean calm-state dwell time in cycles (positive, finite).
        mean_calm: f64,
        /// Mean burst-state dwell time in cycles (positive, finite).
        mean_burst: f64,
    },
    /// An explicit trace of arrivals — the adversarial case. Events may be
    /// given in any order; they are sorted by cycle (stable on ties).
    Trace {
        /// The arrivals, each naming a class by index.
        events: Vec<TraceEvent>,
    },
}

impl ArrivalProcess {
    /// The process's JSON name: `poisson`, `bursty` or `trace`.
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Trace { .. } => "trace",
        }
    }

    /// Validates the process parameters against `horizon` and the number of
    /// declared classes.
    fn validate(&self, horizon: u64, classes: usize) -> Result<()> {
        let positive = |name: &str, v: f64| -> Result<()> {
            if !v.is_finite() || v <= 0.0 {
                return Err(stream_err(format!(
                    "arrivals: `{name}` must be a positive, finite number (got {v})"
                )));
            }
            Ok(())
        };
        let bounded = |rate: f64| -> Result<()> {
            let expected = rate * horizon as f64;
            if expected > MAX_ARRIVALS as f64 {
                return Err(stream_err(format!(
                    "arrivals: rate {rate} over horizon {horizon} implies more than \
                     {MAX_ARRIVALS} expected arrivals"
                )));
            }
            Ok(())
        };
        match self {
            ArrivalProcess::Poisson { rate } => {
                positive("rate", *rate)?;
                bounded(*rate)
            }
            ArrivalProcess::Bursty {
                rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => {
                positive("rate", *rate)?;
                positive("burst_rate", *burst_rate)?;
                positive("mean_calm", *mean_calm)?;
                positive("mean_burst", *mean_burst)?;
                bounded(rate.max(*burst_rate))
            }
            ArrivalProcess::Trace { events } => {
                if events.len() as u64 > MAX_ARRIVALS {
                    return Err(stream_err(format!(
                        "arrivals: trace has {} events (max {MAX_ARRIVALS})",
                        events.len()
                    )));
                }
                for (i, event) in events.iter().enumerate() {
                    if event.class >= classes {
                        return Err(stream_err(format!(
                            "arrivals: trace event {i} names class index {} but only {classes} \
                             classes are declared",
                            event.class
                        )));
                    }
                    if event.at > horizon {
                        return Err(stream_err(format!(
                            "arrivals: trace event {i} at cycle {} is beyond the horizon \
                             ({horizon})",
                            event.at
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// Generates the deterministic arrival sequence for `seed` over
    /// `[0, horizon]` cycles, sampling classes by `weights`.
    ///
    /// The sequence is sorted by cycle; ties keep generation order. Calling
    /// this twice with the same inputs returns the identical sequence.
    pub fn generate(&self, seed: u64, horizon: u64, weights: &[u64]) -> Result<Vec<Arrival>> {
        self.validate(horizon, weights.len())?;
        let total: u64 = weights.iter().sum();
        match self {
            ArrivalProcess::Trace { events } => {
                let mut arrivals: Vec<Arrival> = events
                    .iter()
                    .map(|e| Arrival {
                        at: e.at,
                        class: e.class,
                    })
                    .collect();
                arrivals.sort_by_key(|a| a.at);
                Ok(arrivals)
            }
            _ if total == 0 => Err(stream_err(
                "classes: total weight is zero, stochastic arrivals cannot sample a class",
            )),
            ArrivalProcess::Poisson { rate } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut t = 0.0_f64;
                let mut arrivals = Vec::new();
                loop {
                    t += exponential(&mut rng, *rate);
                    let at = t.ceil().max(1.0) as u64;
                    if at > horizon || arrivals.len() as u64 >= MAX_ARRIVALS {
                        break;
                    }
                    let class = pick_class(&mut rng, weights, total);
                    arrivals.push(Arrival { at, class });
                }
                Ok(arrivals)
            }
            ArrivalProcess::Bursty {
                rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut t = 0.0_f64;
                let mut bursting = false;
                let mut state_end = exponential(&mut rng, 1.0 / mean_calm);
                let mut arrivals = Vec::new();
                loop {
                    let current_rate = if bursting { *burst_rate } else { *rate };
                    let dt = exponential(&mut rng, current_rate);
                    if t + dt >= state_end {
                        // State flips before the next arrival would land; the
                        // exponential is memoryless, so resampling from the
                        // flip point is exact.
                        t = state_end;
                        bursting = !bursting;
                        let mean = if bursting { *mean_burst } else { *mean_calm };
                        state_end = t + exponential(&mut rng, 1.0 / mean);
                        if t > horizon as f64 {
                            break;
                        }
                        continue;
                    }
                    t += dt;
                    let at = t.ceil().max(1.0) as u64;
                    if at > horizon || arrivals.len() as u64 >= MAX_ARRIVALS {
                        break;
                    }
                    let class = pick_class(&mut rng, weights, total);
                    arrivals.push(Arrival { at, class });
                }
                Ok(arrivals)
            }
        }
    }
}

/// Samples an exponential inter-arrival time with the given rate; clamped
/// strictly positive so the clock always advances.
fn exponential(rng: &mut ChaCha8Rng, rate: f64) -> f64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() / rate).max(1e-9)
}

/// Weighted class draw; `total` is the precomputed (non-zero) weight sum.
fn pick_class(rng: &mut ChaCha8Rng, weights: &[u64], total: u64) -> usize {
    let mut x = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One fleet entry: a factory configuration replicated `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEntry {
    /// The factory configuration every server of this entry runs.
    pub factory: FactoryConfig,
    /// Number of identical servers (at least 1).
    pub count: usize,
}

/// A job class: what a distillation request demands and how it is mapped.
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    /// Class name (unique within a spec; referenced by trace events).
    pub name: String,
    /// Mapping strategy used to evaluate the class on a server's factory.
    pub strategy: Strategy,
    /// Sampling weight for stochastic arrival processes (default 1).
    pub weight: u64,
    /// Scheduling priority — higher is more urgent (default 0).
    pub priority: u64,
    /// Demanded output states; servers run `ceil(volume / capacity)` factory
    /// executions back-to-back (default 1).
    pub volume: u64,
    /// Minimum distillation levels a server must have (default 0).
    pub min_levels: usize,
    /// Minimum per-execution output capacity a server must have (default 0).
    pub min_capacity: usize,
}

impl JobClass {
    /// A class named `name` mapped with `strategy`; weight 1, priority 0,
    /// volume 1, no level/capacity demands.
    pub fn new(name: impl Into<String>, strategy: Strategy) -> Self {
        JobClass {
            name: name.into(),
            strategy,
            weight: 1,
            priority: 0,
            volume: 1,
            min_levels: 0,
            min_capacity: 0,
        }
    }

    /// Replaces the sampling weight (builder style).
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Replaces the priority (builder style).
    pub fn with_priority(mut self, priority: u64) -> Self {
        self.priority = priority;
        self
    }

    /// Replaces the demanded output volume (builder style).
    pub fn with_volume(mut self, volume: u64) -> Self {
        self.volume = volume;
        self
    }

    /// Requires at least `levels` distillation levels (builder style).
    pub fn with_min_levels(mut self, levels: usize) -> Self {
        self.min_levels = levels;
        self
    }

    /// Requires at least `capacity` output states per execution (builder
    /// style).
    pub fn with_min_capacity(mut self, capacity: usize) -> Self {
        self.min_capacity = capacity;
        self
    }

    fn feasible_on(&self, factory: &FactoryConfig) -> bool {
        factory.levels >= self.min_levels && factory.capacity() >= self.min_capacity
    }
}

/// A declarative streaming-workload specification.
///
/// Mirrors [`crate::SweepSpec`] / [`crate::SearchSpec`]: plain data,
/// constructible in Rust (builder style) or from JSON
/// ([`StreamSpec::from_json`]), validated as typed errors, executed with
/// [`StreamSpec::run`] / [`StreamSpec::run_with`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StreamSpec {
    /// Report name.
    pub name: String,
    /// Evaluation configuration used for per-class service times.
    pub eval: EvaluationConfig,
    /// Seed of the arrival process's rng stream.
    pub seed: u64,
    /// Length of the arrival window in cycles; jobs arriving by this cycle
    /// are still drained to completion afterwards.
    pub horizon: u64,
    /// Cycles a server spends reconfiguring when it switches to a different
    /// job class (0 = free switching; what makes `reuse_aware` matter).
    pub setup_cycles: u64,
    /// The arrival process laying jobs onto the clock.
    pub arrivals: ArrivalProcess,
    /// The fixed factory fleet.
    pub fleet: Vec<FleetEntry>,
    /// The job classes traffic is drawn from.
    pub classes: Vec<JobClass>,
    /// Scheduler names to compare, each run over the identical arrivals.
    pub schedulers: Vec<String>,
    /// Whether per-(class, server) evaluations go through the process-wide
    /// [`EvalCache`].
    pub use_eval_cache: bool,
    /// Directory of the persistent evaluation-cache tier, if any.
    pub cache_dir: Option<PathBuf>,
}

impl StreamSpec {
    /// A spec named `name` with an empty fleet and class list, the default
    /// evaluation config, a gentle Poisson process (rate 0.01), horizon
    /// 10 000 cycles, seed 0, no setup cost, and all four built-in
    /// schedulers.
    pub fn new(name: impl Into<String>) -> Self {
        StreamSpec {
            name: name.into(),
            eval: EvaluationConfig::default(),
            seed: 0,
            horizon: 10_000,
            setup_cycles: 0,
            arrivals: ArrivalProcess::Poisson { rate: 0.01 },
            fleet: Vec::new(),
            classes: Vec::new(),
            schedulers: vec![
                "fifo".to_string(),
                "priority".to_string(),
                "capacity_aware".to_string(),
                "reuse_aware".to_string(),
            ],
            use_eval_cache: true,
            cache_dir: None,
        }
    }

    /// Replaces the evaluation configuration (builder style).
    pub fn with_eval(mut self, eval: EvaluationConfig) -> Self {
        self.eval = eval;
        self
    }

    /// Replaces the arrival seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the arrival horizon (builder style).
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the class-switch setup cost (builder style).
    pub fn with_setup_cycles(mut self, cycles: u64) -> Self {
        self.setup_cycles = cycles;
        self
    }

    /// Replaces the arrival process (builder style).
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Adds `count` servers of `factory` to the fleet (builder style).
    pub fn server(mut self, factory: FactoryConfig, count: usize) -> Self {
        self.fleet.push(FleetEntry { factory, count });
        self
    }

    /// Adds a job class (builder style).
    pub fn class(mut self, class: JobClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Replaces the scheduler line-up (builder style).
    pub fn with_schedulers(mut self, names: &[&str]) -> Self {
        self.schedulers = names.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Disables or re-enables the shared evaluation cache (builder style).
    pub fn with_eval_cache(mut self, enabled: bool) -> Self {
        self.use_eval_cache = enabled;
        self
    }

    /// Validates the spec without running it.
    ///
    /// # Errors
    ///
    /// [`CoreError::StreamSpec`] for structural problems (zero horizon,
    /// empty fleet/classes, non-positive rates, infeasible classes, duplicate
    /// scheduler names, …); [`CoreError::UnknownScheduler`] when a scheduler
    /// name is not in the process-wide registry.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| -> CoreError {
            stream_err(format!("stream `{}`: {reason}", self.name))
        };
        if self.name.is_empty() {
            return Err(stream_err("stream: `name` must not be empty"));
        }
        if self.horizon == 0 {
            return Err(fail("`horizon` must be at least 1 cycle".to_string()));
        }
        if self.fleet.is_empty() {
            return Err(fail(
                "the fleet is empty — declare at least one server".to_string(),
            ));
        }
        for (i, entry) in self.fleet.iter().enumerate() {
            if entry.count == 0 {
                return Err(fail(format!("fleet[{i}]: `count` must be at least 1")));
            }
            entry
                .factory
                .validate()
                .map_err(|e| fail(format!("fleet[{i}]: {e}")))?;
        }
        if self.classes.is_empty() {
            return Err(fail("no job classes declared".to_string()));
        }
        let mut seen_classes: Vec<&str> = Vec::new();
        for (i, class) in self.classes.iter().enumerate() {
            if class.name.is_empty() {
                return Err(fail(format!("classes[{i}]: `name` must not be empty")));
            }
            if seen_classes.contains(&class.name.as_str()) {
                return Err(fail(format!(
                    "classes[{i}]: duplicate class name `{}`",
                    class.name
                )));
            }
            seen_classes.push(&class.name);
            if class.volume == 0 {
                return Err(fail(format!(
                    "classes[{i}] (`{}`): `volume` must be at least 1",
                    class.name
                )));
            }
            if !self.fleet.iter().any(|e| class.feasible_on(&e.factory)) {
                return Err(fail(format!(
                    "class `{}` fits no fleet server (needs levels >= {}, capacity >= {})",
                    class.name, class.min_levels, class.min_capacity
                )));
            }
        }
        self.arrivals
            .validate(self.horizon, self.classes.len())
            .map_err(|e| match e {
                CoreError::StreamSpec { reason } => fail(reason),
                other => other,
            })?;
        if self.schedulers.is_empty() {
            return Err(fail("no schedulers requested".to_string()));
        }
        let registry = read_schedulers();
        let mut seen: Vec<&str> = Vec::new();
        for name in &self.schedulers {
            if seen.contains(&name.as_str()) {
                return Err(fail(format!("schedulers: duplicate scheduler `{name}`")));
            }
            seen.push(name);
            if !registry.contains(name) {
                return Err(CoreError::UnknownScheduler {
                    name: name.clone(),
                    known: registry.names(),
                });
            }
        }
        Ok(())
    }

    /// Runs the streaming simulation for every requested scheduler and
    /// returns the report.
    ///
    /// # Errors
    ///
    /// Everything [`StreamSpec::validate`] reports, plus evaluation-pipeline
    /// errors while deriving per-class service times.
    pub fn run(&self) -> Result<StreamReport> {
        Ok(self.run_with(&RunControl::default())?.report)
    }

    /// Runs the streaming simulation under execution controls (progress
    /// events, cooperative cancellation, deadline).
    ///
    /// One [`ProgressEvent::BatchFinished`] is emitted per completed
    /// scheduler; interruption is honoured between schedulers and yields a
    /// prefix of the runs with `interrupted == true`.
    ///
    /// # Errors
    ///
    /// Same as [`StreamSpec::run`].
    pub fn run_with(&self, ctrl: &RunControl<'_>) -> Result<StreamOutcome> {
        self.validate()?;
        let schedulers: Vec<Box<dyn StreamScheduler>> = {
            let registry = read_schedulers();
            self.schedulers
                .iter()
                .map(|name| registry.build(name))
                .collect::<Result<_>>()?
        };

        // Expand fleet entries into servers, in spec order.
        let mut server_entry: Vec<usize> = Vec::new();
        for (e, entry) in self.fleet.iter().enumerate() {
            server_entry.extend(std::iter::repeat(e).take(entry.count));
        }
        let entry_configs: Vec<FactoryConfig> = self.fleet.iter().map(|e| e.factory).collect();

        // Per-(class, entry) service times from the real evaluation pipeline,
        // through the shared cache.
        let cache = open_eval_cache(self.use_eval_cache, self.cache_dir.as_deref())?;
        let service = self.service_matrix(&entry_configs, cache.as_ref())?;
        let feasible: Vec<Vec<bool>> = self
            .classes
            .iter()
            .map(|class| {
                server_entry
                    .iter()
                    .map(|&e| class.feasible_on(&entry_configs[e]))
                    .collect()
            })
            .collect();

        let weights: Vec<u64> = self.classes.iter().map(|c| c.weight).collect();
        let arrivals = self.arrivals.generate(self.seed, self.horizon, &weights)?;

        let mut runs = Vec::with_capacity(self.schedulers.len());
        let mut interrupted = false;
        for (i, scheduler) in schedulers.iter().enumerate() {
            if ctrl.interrupted() {
                interrupted = true;
                break;
            }
            runs.push(self.simulate(
                &self.schedulers[i],
                scheduler.as_ref(),
                &arrivals,
                &server_entry,
                &service,
                &feasible,
            ));
            ctrl.emit(&ProgressEvent::BatchFinished {
                name: &self.name,
                completed: i + 1,
                total: self.schedulers.len(),
            });
        }

        let fleet: Vec<FactoryConfig> = server_entry.iter().map(|&e| entry_configs[e]).collect();
        Ok(StreamOutcome {
            report: StreamReport {
                name: self.name.clone(),
                seed: self.seed,
                horizon: self.horizon,
                setup_cycles: self.setup_cycles,
                arrivals: arrivals.len() as u64,
                fleet,
                runs,
            },
            interrupted,
            cache: cache.map(|c| c.stats()).unwrap_or_default(),
        })
    }

    /// Evaluates each class on each (feasible) fleet entry and returns
    /// `service[class][entry]` in cycles: the evaluated factory latency times
    /// the executions needed to meet the class's volume demand.
    fn service_matrix(
        &self,
        entry_configs: &[FactoryConfig],
        cache: Option<&EvalCache>,
    ) -> Result<Vec<Vec<Option<u64>>>> {
        let factories: Vec<Factory> = entry_configs
            .iter()
            .map(Factory::build)
            .collect::<std::result::Result<_, _>>()?;
        let resolved: Vec<ResolvedStrategy> = self
            .classes
            .iter()
            .map(|class| class.strategy.resolve())
            .collect::<Result<_>>()?;
        let mut matrix = Vec::with_capacity(self.classes.len());
        for (c, class) in self.classes.iter().enumerate() {
            let mut row = Vec::with_capacity(entry_configs.len());
            for (e, config) in entry_configs.iter().enumerate() {
                if !class.feasible_on(config) {
                    row.push(None);
                    continue;
                }
                let evaluation =
                    self.evaluate_class(&resolved[c], class, config, &factories[e], cache)?;
                let executions = class.volume.div_ceil(config.capacity() as u64).max(1);
                row.push(Some(evaluation.latency_cycles.max(1) * executions));
            }
            matrix.push(row);
        }
        Ok(matrix)
    }

    fn evaluate_class(
        &self,
        resolved: &ResolvedStrategy,
        class: &JobClass,
        config: &FactoryConfig,
        factory: &Factory,
        cache: Option<&EvalCache>,
    ) -> Result<Evaluation> {
        let layout = resolved.map(&class.strategy, factory)?;
        let effective = effective_factory(factory, &layout)?;
        let simulate = |engine: &mut msfu_sim::SimEngine| {
            evaluate_mapped_with(
                engine,
                &effective,
                &layout,
                class.strategy.short_name(),
                &self.eval,
            )
        };
        match cache {
            Some(cache) => cache.get_or_compute(
                evaluation_key(config, &layout, &self.eval),
                class.strategy.short_name(),
                || with_thread_engine(self.eval.sim, simulate),
            ),
            None => with_thread_engine(self.eval.sim, simulate),
        }
    }

    /// Replays `arrivals` under one scheduler. Event order is fixed: at each
    /// cycle, completions retire first, then arrivals join the queue, then
    /// the scheduler dispatches until it passes — so identical inputs yield
    /// identical runs.
    fn simulate(
        &self,
        scheduler_name: &str,
        scheduler: &dyn StreamScheduler,
        arrivals: &[Arrival],
        server_entry: &[usize],
        service: &[Vec<Option<u64>>],
        feasible: &[Vec<bool>],
    ) -> SchedulerRun {
        struct Job {
            class: usize,
            arrived: u64,
            finished: Option<u64>,
        }
        struct Server {
            entry: usize,
            busy: bool,
            last_class: Option<usize>,
            busy_cycles: u64,
        }

        let mut jobs: Vec<Job> = arrivals
            .iter()
            .map(|a| Job {
                class: a.class,
                arrived: a.at,
                finished: None,
            })
            .collect();
        let mut servers: Vec<Server> = server_entry
            .iter()
            .map(|&e| Server {
                entry: e,
                busy: false,
                last_class: None,
                busy_cycles: 0,
            })
            .collect();
        // Min-heap of (finish cycle, job id, server index) — the job id makes
        // same-cycle completion order deterministic.
        let mut completions: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut queue: Vec<u64> = Vec::new();
        let mut timeline: Vec<QueueSample> = Vec::new();
        let mut last_depth = 0_u64;
        let mut max_depth = 0_u64;
        let mut next_arrival = 0_usize;
        let mut completed = 0_u64;
        let mut makespan = 0_u64;
        let mut setup_switches = 0_u64;

        while next_arrival < jobs.len() || !completions.is_empty() {
            let arrival_at = jobs.get(next_arrival).map(|j| j.arrived);
            let completion_at = completions.peek().map(|Reverse((at, _, _))| *at);
            let now = match (arrival_at, completion_at) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => unreachable!("loop condition guarantees an event"),
            };
            // 1. Completions retire first (fixed tie-break).
            while let Some(&Reverse((at, job, si))) = completions.peek() {
                if at != now {
                    break;
                }
                completions.pop();
                servers[si].busy = false;
                jobs[job as usize].finished = Some(at);
                completed += 1;
                makespan = makespan.max(at);
            }
            // 2. Arrivals join the queue in generation order.
            while next_arrival < jobs.len() && jobs[next_arrival].arrived == now {
                queue.push(next_arrival as u64);
                next_arrival += 1;
            }
            // 3. Dispatch until the scheduler passes (or misbehaves).
            loop {
                let queued: Vec<QueuedJob> = queue
                    .iter()
                    .map(|&job| {
                        let class = jobs[job as usize].class;
                        QueuedJob {
                            job,
                            class,
                            arrived: jobs[job as usize].arrived,
                            priority: self.classes[class].priority,
                        }
                    })
                    .collect();
                let views: Vec<ServerView> = servers
                    .iter()
                    .map(|s| ServerView {
                        busy: s.busy,
                        capacity: self.fleet[s.entry].factory.capacity(),
                        levels: self.fleet[s.entry].factory.levels,
                        last_class: s.last_class,
                    })
                    .collect();
                let view = SchedulerView {
                    now,
                    queue: &queued,
                    servers: &views,
                    feasible,
                };
                let Some((qi, si)) = scheduler.select(&view) else {
                    break;
                };
                let valid = qi < queue.len()
                    && si < servers.len()
                    && !servers[si].busy
                    && feasible[jobs[queue[qi] as usize].class][si];
                if !valid {
                    break;
                }
                let job = queue.remove(qi);
                let class = jobs[job as usize].class;
                let base = service[class][servers[si].entry]
                    .expect("feasibility check guarantees a service time");
                let setup = if servers[si].last_class == Some(class) {
                    0
                } else {
                    self.setup_cycles
                };
                if setup > 0 {
                    setup_switches += 1;
                }
                let occupancy = setup + base;
                servers[si].busy = true;
                servers[si].last_class = Some(class);
                servers[si].busy_cycles += occupancy;
                completions.push(Reverse((now + occupancy, job, si)));
            }
            // 4. Sample the queue-depth timeline on change.
            let depth = queue.len() as u64;
            max_depth = max_depth.max(depth);
            if depth != last_depth || timeline.is_empty() {
                timeline.push(QueueSample { cycle: now, depth });
                last_depth = depth;
            }
        }

        let mut latencies: Vec<u64> = jobs
            .iter()
            .filter_map(|j| j.finished.map(|f| f - j.arrived))
            .collect();
        let latency_sum: u64 = latencies.iter().sum();
        let summary = percentiles(&mut latencies);
        let per_class = self
            .classes
            .iter()
            .enumerate()
            .map(|(c, class)| {
                let mut class_latencies: Vec<u64> = jobs
                    .iter()
                    .filter(|j| j.class == c)
                    .filter_map(|j| j.finished.map(|f| f - j.arrived))
                    .collect();
                let count = class_latencies.len() as u64;
                let class_summary = percentiles(&mut class_latencies);
                ClassStats {
                    class: class.name.clone(),
                    completed: count,
                    latency_p50: class_summary.map_or(0, |p| p.p50),
                    latency_p99: class_summary.map_or(0, |p| p.p99),
                }
            })
            .collect();
        let busy_total: u64 = servers.iter().map(|s| s.busy_cycles).sum();
        let denom = servers.len() as u64 * makespan;
        SchedulerRun {
            scheduler: scheduler_name.to_string(),
            completed,
            makespan_cycles: makespan,
            latency_p50: summary.map_or(0, |p| p.p50),
            latency_p95: summary.map_or(0, |p| p.p95),
            latency_p99: summary.map_or(0, |p| p.p99),
            mean_latency: if completed == 0 {
                0.0
            } else {
                latency_sum as f64 / completed as f64
            },
            throughput_jobs_per_kcycle: if makespan == 0 {
                0.0
            } else {
                completed as f64 * 1_000.0 / makespan as f64
            },
            utilization: if denom == 0 {
                0.0
            } else {
                busy_total as f64 / denom as f64
            },
            max_queue_depth: max_depth,
            setup_switches,
            queue_timeline: timeline,
            per_class,
        }
    }

    /// Decodes a streaming workload declared as JSON data.
    ///
    /// # Errors
    ///
    /// [`CoreError::StreamSpec`] naming the offending field for malformed
    /// documents; everything [`StreamSpec::validate`] reports once decoded.
    ///
    /// # Example
    ///
    /// ```
    /// let spec = msfu_core::StreamSpec::from_json(
    ///     r#"{
    ///         "name": "quick",
    ///         "horizon": 2000,
    ///         "seed": 7,
    ///         "arrivals": {"process": "poisson", "rate": 0.004},
    ///         "fleet": [{"factory": {"k": 2}, "count": 2}],
    ///         "classes": [{"name": "probe", "strategy": {"strategy": "linear"}}],
    ///         "schedulers": ["fifo", "priority"]
    ///     }"#,
    /// )
    /// .unwrap();
    /// assert_eq!(spec.schedulers, vec!["fifo", "priority"]);
    /// ```
    pub fn from_json(text: &str) -> Result<Self> {
        let root = serde_json::from_str(text)
            .map_err(|e| stream_err(format!("stream spec is not valid JSON: {e}")))?;
        Self::from_value(&root)
    }

    /// Decodes an already-parsed stream-spec document — the embedded form
    /// used by the service protocol, where the spec is one field of a
    /// request object.
    ///
    /// # Errors
    ///
    /// Same as [`StreamSpec::from_json`].
    pub fn from_value(root: &Value) -> Result<Self> {
        let fail = |reason: String| stream_err(format!("stream: {reason}"));
        let entries = match root {
            Value::Object(entries) => entries,
            _ => return Err(fail("spec must be a JSON object".to_string())),
        };
        let name = match root.get("name") {
            Some(Value::Str(s)) => s.clone(),
            Some(_) => return Err(fail("`name` must be a string".to_string())),
            None => return Err(fail("missing `name`".to_string())),
        };
        let mut spec = StreamSpec::new(name);
        spec.schedulers = Vec::new();
        let mut saw_schedulers = false;
        let mut arrivals_value: Option<&Value> = None;
        for (key, value) in entries {
            match key.as_str() {
                "name" => {}
                "eval" => spec.eval = eval_from_json(value)?,
                "seed" => spec.seed = u64_field(value, "seed")?,
                "horizon" => spec.horizon = u64_field(value, "horizon")?,
                "setup_cycles" => spec.setup_cycles = u64_field(value, "setup_cycles")?,
                "arrivals" => arrivals_value = Some(value),
                "fleet" => spec.fleet = fleet_from_json(value)?,
                "classes" => spec.classes = classes_from_json(value)?,
                "schedulers" => {
                    saw_schedulers = true;
                    let list = match value {
                        Value::Array(items) => items,
                        _ => return Err(fail("`schedulers` must be an array".to_string())),
                    };
                    for (i, item) in list.iter().enumerate() {
                        match item {
                            Value::Str(s) => spec.schedulers.push(s.clone()),
                            _ => return Err(fail(format!("schedulers[{i}] must be a string"))),
                        }
                    }
                }
                "cache" => match value {
                    Value::Bool(enabled) => spec.use_eval_cache = *enabled,
                    _ => return Err(fail("`cache` must be a boolean".to_string())),
                },
                "cache_dir" => match value {
                    Value::Str(dir) => spec.cache_dir = Some(PathBuf::from(dir)),
                    Value::Null => spec.cache_dir = None,
                    _ => return Err(fail("`cache_dir` must be a string".to_string())),
                },
                other => return Err(fail(format!("unknown field `{other}`"))),
            }
        }
        if !saw_schedulers {
            spec.schedulers = StreamSpec::new("defaults").schedulers;
        }
        match arrivals_value {
            Some(value) => spec.arrivals = arrivals_from_json(value, &spec.classes)?,
            None => return Err(fail("missing `arrivals`".to_string())),
        }
        spec.validate()?;
        Ok(spec)
    }
}

fn u64_field(value: &Value, key: &str) -> Result<u64> {
    value
        .as_u64()
        .ok_or_else(|| stream_err(format!("stream: `{key}` must be a non-negative integer")))
}

fn f64_field(value: &Value, ctx: &str, key: &str) -> Result<f64> {
    value
        .as_f64()
        .ok_or_else(|| stream_err(format!("stream: {ctx}: `{key}` must be a number")))
}

fn fleet_from_json(value: &Value) -> Result<Vec<FleetEntry>> {
    let list = match value {
        Value::Array(items) => items,
        _ => return Err(stream_err("stream: `fleet` must be an array")),
    };
    let mut fleet = Vec::with_capacity(list.len());
    for (i, item) in list.iter().enumerate() {
        let ctx = format!("fleet[{i}]");
        let entries = match item {
            Value::Object(entries) => entries,
            _ => return Err(stream_err(format!("stream: {ctx} must be an object"))),
        };
        let mut factory = None;
        let mut count = 1_usize;
        for (key, value) in entries {
            match key.as_str() {
                "factory" => factory = Some(factory_from_json(value)?),
                "count" => {
                    count = u64_field(value, "count").map_err(|_| {
                        stream_err(format!(
                            "stream: {ctx}: `count` must be a non-negative integer"
                        ))
                    })? as usize;
                }
                other => {
                    return Err(stream_err(format!(
                        "stream: {ctx}: unknown field `{other}`"
                    )))
                }
            }
        }
        let factory =
            factory.ok_or_else(|| stream_err(format!("stream: {ctx}: missing `factory`")))?;
        fleet.push(FleetEntry { factory, count });
    }
    Ok(fleet)
}

fn classes_from_json(value: &Value) -> Result<Vec<JobClass>> {
    let list = match value {
        Value::Array(items) => items,
        _ => return Err(stream_err("stream: `classes` must be an array")),
    };
    let mut classes = Vec::with_capacity(list.len());
    for (i, item) in list.iter().enumerate() {
        let ctx = format!("classes[{i}]");
        let entries = match item {
            Value::Object(entries) => entries,
            _ => return Err(stream_err(format!("stream: {ctx} must be an object"))),
        };
        let mut name = None;
        let mut strategy = None;
        let mut weight = 1_u64;
        let mut priority = 0_u64;
        let mut volume = 1_u64;
        let mut min_levels = 0_usize;
        let mut min_capacity = 0_usize;
        for (key, value) in entries {
            match key.as_str() {
                "name" => match value {
                    Value::Str(s) => name = Some(s.clone()),
                    _ => {
                        return Err(stream_err(format!(
                            "stream: {ctx}: `name` must be a string"
                        )))
                    }
                },
                "strategy" => strategy = Some(strategy_from_json(value)?),
                "weight" => weight = u64_field(value, "weight")?,
                "priority" => priority = u64_field(value, "priority")?,
                "volume" => volume = u64_field(value, "volume")?,
                "min_levels" => min_levels = u64_field(value, "min_levels")? as usize,
                "min_capacity" => min_capacity = u64_field(value, "min_capacity")? as usize,
                other => {
                    return Err(stream_err(format!(
                        "stream: {ctx}: unknown field `{other}`"
                    )))
                }
            }
        }
        let name = name.ok_or_else(|| stream_err(format!("stream: {ctx}: missing `name`")))?;
        let strategy =
            strategy.ok_or_else(|| stream_err(format!("stream: {ctx}: missing `strategy`")))?;
        classes.push(JobClass {
            name,
            strategy,
            weight,
            priority,
            volume,
            min_levels,
            min_capacity,
        });
    }
    Ok(classes)
}

fn arrivals_from_json(value: &Value, classes: &[JobClass]) -> Result<ArrivalProcess> {
    let ctx = "arrivals";
    let entries = match value {
        Value::Object(entries) => entries,
        _ => return Err(stream_err(format!("stream: `{ctx}` must be an object"))),
    };
    let process = match value.get("process") {
        Some(Value::Str(s)) => s.clone(),
        Some(_) => {
            return Err(stream_err(format!(
                "stream: {ctx}: `process` must be a string"
            )))
        }
        None => return Err(stream_err(format!("stream: {ctx}: missing `process`"))),
    };
    let known_keys: &[&str] = match process.as_str() {
        "poisson" => &["process", "rate"],
        "bursty" => &["process", "rate", "burst_rate", "mean_calm", "mean_burst"],
        "trace" => &["process", "events"],
        other => {
            return Err(stream_err(format!(
                "stream: {ctx}: unknown process `{other}` (expected poisson, bursty or trace)"
            )))
        }
    };
    for (key, _) in entries {
        if !known_keys.contains(&key.as_str()) {
            return Err(stream_err(format!(
                "stream: {ctx}: unknown field `{key}` for process `{process}`"
            )));
        }
    }
    let require = |key: &str| -> Result<&Value> {
        value
            .get(key)
            .ok_or_else(|| stream_err(format!("stream: {ctx}: missing `{key}`")))
    };
    match process.as_str() {
        "poisson" => Ok(ArrivalProcess::Poisson {
            rate: f64_field(require("rate")?, ctx, "rate")?,
        }),
        "bursty" => Ok(ArrivalProcess::Bursty {
            rate: f64_field(require("rate")?, ctx, "rate")?,
            burst_rate: f64_field(require("burst_rate")?, ctx, "burst_rate")?,
            mean_calm: f64_field(require("mean_calm")?, ctx, "mean_calm")?,
            mean_burst: f64_field(require("mean_burst")?, ctx, "mean_burst")?,
        }),
        _ => {
            let list = match require("events")? {
                Value::Array(items) => items,
                _ => {
                    return Err(stream_err(format!(
                        "stream: {ctx}: `events` must be an array"
                    )))
                }
            };
            let mut events = Vec::with_capacity(list.len());
            for (i, item) in list.iter().enumerate() {
                let ectx = format!("{ctx}: events[{i}]");
                let entries = match item {
                    Value::Object(entries) => entries,
                    _ => return Err(stream_err(format!("stream: {ectx} must be an object"))),
                };
                let mut at = None;
                let mut class = None;
                for (key, value) in entries {
                    match key.as_str() {
                        "at" => at = Some(u64_field(value, "at")?),
                        "class" => match value {
                            Value::Str(s) => {
                                let index =
                                    classes.iter().position(|c| &c.name == s).ok_or_else(|| {
                                        stream_err(format!("stream: {ectx}: unknown class `{s}`"))
                                    })?;
                                class = Some(index);
                            }
                            _ => {
                                return Err(stream_err(format!(
                                    "stream: {ectx}: `class` must be a class name"
                                )))
                            }
                        },
                        other => {
                            return Err(stream_err(format!(
                                "stream: {ectx}: unknown field `{other}`"
                            )))
                        }
                    }
                }
                let at = at.ok_or_else(|| stream_err(format!("stream: {ectx}: missing `at`")))?;
                let class =
                    class.ok_or_else(|| stream_err(format!("stream: {ectx}: missing `class`")))?;
                events.push(TraceEvent { at, class });
            }
            Ok(ArrivalProcess::Trace { events })
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One sample of the queue-depth timeline, recorded whenever the depth
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Simulation cycle of the sample.
    pub cycle: u64,
    /// Jobs waiting (not yet placed) after the cycle's events.
    pub depth: u64,
}

/// Per-class latency breakdown within one scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// The class name.
    pub class: String,
    /// Jobs of this class completed.
    pub completed: u64,
    /// Nearest-rank p50 of the class's sojourn latency, in cycles.
    pub latency_p50: u64,
    /// Nearest-rank p99 of the class's sojourn latency, in cycles.
    pub latency_p99: u64,
}

/// The metrics of one scheduler's replay of the arrival sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerRun {
    /// The scheduler's registry name.
    pub scheduler: String,
    /// Jobs completed (every admitted job drains, so this equals the arrival
    /// count).
    pub completed: u64,
    /// Cycle the last job completed at.
    pub makespan_cycles: u64,
    /// Nearest-rank p50 sojourn latency (arrival to completion), in cycles.
    pub latency_p50: u64,
    /// Nearest-rank p95 sojourn latency, in cycles.
    pub latency_p95: u64,
    /// Nearest-rank p99 sojourn latency, in cycles.
    pub latency_p99: u64,
    /// Mean sojourn latency, in cycles.
    pub mean_latency: f64,
    /// Completed jobs per thousand cycles of makespan.
    pub throughput_jobs_per_kcycle: f64,
    /// Busy server-cycles over total server-cycles of the makespan.
    pub utilization: f64,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// Assignments that paid the class-switch setup cost.
    pub setup_switches: u64,
    /// Queue-depth timeline, one sample per change.
    pub queue_timeline: Vec<QueueSample>,
    /// Per-class latency breakdown.
    pub per_class: Vec<ClassStats>,
}

/// The deterministic result of a streaming run: one [`SchedulerRun`] per
/// requested scheduler, over the identical arrival sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// The spec's name.
    pub name: String,
    /// The arrival seed.
    pub seed: u64,
    /// The arrival window, in cycles.
    pub horizon: u64,
    /// The class-switch setup cost, in cycles.
    pub setup_cycles: u64,
    /// Jobs generated by the arrival process.
    pub arrivals: u64,
    /// The expanded fleet: one factory config per server, in spec order.
    pub fleet: Vec<FactoryConfig>,
    /// One run per scheduler, in the spec's scheduler order.
    pub runs: Vec<SchedulerRun>,
}

impl StreamReport {
    /// Projects the report onto the sweep-row shape every bench report uses,
    /// so `bench-diff` gates streaming results like any other harness.
    ///
    /// Each scheduler contributes three gated rows keyed
    /// `p50/<scheduler>`, `p99/<scheduler>` and `throughput/<scheduler>`:
    /// `latency_cycles` carries the metric (throughput as completed jobs per
    /// million cycles of makespan) and `volume` scales it by the fleet size;
    /// both are clamped to at least 1 so relative tolerances stay defined.
    pub fn to_sweep_results(&self) -> SweepResults {
        let factory = self
            .fleet
            .first()
            .copied()
            .unwrap_or_else(|| FactoryConfig::single_level(2));
        let servers = self.fleet.len().max(1);
        let mut rows = Vec::with_capacity(self.runs.len() * 3);
        for run in &self.runs {
            let throughput = run.completed * 1_000_000 / run.makespan_cycles.max(1);
            for (label, value) in [
                ("p50", run.latency_p50),
                ("p99", run.latency_p99),
                ("throughput", throughput),
            ] {
                let value = value.max(1);
                rows.push(SweepRow {
                    label: label.to_string(),
                    evaluation: Evaluation {
                        strategy: run.scheduler.clone(),
                        factory,
                        latency_cycles: value,
                        area: servers,
                        volume: value * servers as u64,
                        stall_cycles: 0,
                        routing_conflicts: 0,
                        critical_path_cycles: 0,
                        critical_volume: 0,
                        logical_qubits: 0,
                    },
                    breakdown: None,
                    metrics: None,
                });
            }
        }
        SweepResults {
            name: self.name.clone(),
            rows,
        }
    }
}

/// The outcome of a controllable stream run: the report (a prefix of the
/// scheduler runs when interrupted), the interruption flag, and the
/// evaluation-cache statistics of the service-time derivation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StreamOutcome {
    /// The report — all requested schedulers when `interrupted == false`, a
    /// prefix otherwise.
    pub report: StreamReport,
    /// `true` when the run stopped between schedulers (cancelled or past its
    /// deadline).
    pub interrupted: bool,
    /// Evaluation-cache statistics for the service-time matrix.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::CancelToken;

    fn quick_spec() -> StreamSpec {
        StreamSpec::new("quick")
            .with_horizon(3_000)
            .with_seed(11)
            .with_setup_cycles(25)
            .with_arrivals(ArrivalProcess::Poisson { rate: 0.02 })
            .server(FactoryConfig::single_level(4), 1)
            .server(FactoryConfig::single_level(2), 2)
            .class(
                JobClass::new("probe", Strategy::linear())
                    .with_weight(3)
                    .with_volume(2),
            )
            .class(
                JobClass::new("bulk", Strategy::linear())
                    .with_priority(2)
                    .with_volume(8)
                    .with_min_capacity(2),
            )
    }

    #[test]
    fn repeat_runs_are_byte_identical() {
        let spec = quick_spec();
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
        assert_eq!(a.runs.len(), 4);
        assert_eq!(a.arrivals, a.runs[0].completed);
    }

    #[test]
    fn every_scheduler_drains_all_arrivals() {
        let report = quick_spec().run().unwrap();
        assert!(report.arrivals > 0, "quick spec should generate traffic");
        for run in &report.runs {
            assert_eq!(run.completed, report.arrivals, "{}", run.scheduler);
            assert!(run.makespan_cycles > 0);
            assert!(run.latency_p50 <= run.latency_p95);
            assert!(run.latency_p95 <= run.latency_p99);
            assert!(run.utilization > 0.0 && run.utilization <= 1.0);
            let drained = run.queue_timeline.last().unwrap();
            assert_eq!(drained.depth, 0, "{} queue must drain", run.scheduler);
        }
    }

    #[test]
    fn schedulers_are_not_interchangeable() {
        let report = quick_spec().run().unwrap();
        let by_name = |name: &str| {
            report
                .runs
                .iter()
                .find(|r| r.scheduler == name)
                .unwrap_or_else(|| panic!("run for {name}"))
        };
        let fifo = by_name("fifo");
        let reuse = by_name("reuse_aware");
        // Reuse-aware pays the setup cost no more often than FIFO by
        // construction, and the quick spec is contended enough to separate
        // the policies outright.
        assert!(reuse.setup_switches <= fifo.setup_switches);
        let signatures: std::collections::BTreeSet<(u64, u64)> = report
            .runs
            .iter()
            .map(|r| (r.latency_p50, r.latency_p99))
            .collect();
        assert!(
            signatures.len() > 1,
            "schedulers should produce distinct latency profiles: {signatures:?}"
        );
    }

    #[test]
    fn priority_preempts_queue_order() {
        // One server; low-priority "first" arrives at the same cycle as
        // high-priority "urgent" but is declared earlier. Both compete for
        // the single server at cycle 1.
        let spec = StreamSpec::new("prio")
            .with_horizon(10)
            .with_arrivals(ArrivalProcess::Trace {
                events: vec![
                    TraceEvent { at: 1, class: 0 },
                    TraceEvent { at: 1, class: 1 },
                ],
            })
            .server(FactoryConfig::single_level(2), 1)
            .class(JobClass::new("first", Strategy::linear()))
            .class(JobClass::new("urgent", Strategy::linear()).with_priority(5))
            .with_schedulers(&["fifo", "priority"]);
        let report = spec.run().unwrap();
        let latency = |run: &SchedulerRun, class: &str| {
            run.per_class
                .iter()
                .find(|c| c.class == class)
                .unwrap()
                .latency_p50
        };
        let fifo = &report.runs[0];
        let prio = &report.runs[1];
        // FIFO serves `first` first; priority serves `urgent` first.
        assert!(latency(fifo, "first") < latency(fifo, "urgent"));
        assert!(latency(prio, "urgent") < latency(prio, "first"));
    }

    #[test]
    fn reuse_aware_prefers_warm_servers() {
        // Two servers, alternating classes, expensive setup: reuse-aware
        // pins each class to its warm server and pays exactly two cold
        // setups; fifo keeps bouncing classes across servers.
        let events = (0..8)
            .map(|i| TraceEvent {
                at: 1 + i * 10_000,
                class: (i % 2) as usize,
            })
            .collect();
        let spec = StreamSpec::new("warm")
            .with_horizon(100_000)
            .with_setup_cycles(50)
            .with_arrivals(ArrivalProcess::Trace { events })
            .server(FactoryConfig::single_level(2), 2)
            .class(JobClass::new("a", Strategy::linear()))
            .class(JobClass::new("b", Strategy::linear()).with_volume(2))
            .with_schedulers(&["reuse_aware"]);
        let report = spec.run().unwrap();
        assert_eq!(report.runs[0].setup_switches, 2);
    }

    #[test]
    fn arrival_processes_are_deterministic_and_seed_sensitive() {
        let weights = [3, 1];
        let poisson = ArrivalProcess::Poisson { rate: 0.01 };
        let bursty = ArrivalProcess::Bursty {
            rate: 0.002,
            burst_rate: 0.05,
            mean_calm: 500.0,
            mean_burst: 100.0,
        };
        for process in [&poisson, &bursty] {
            let a = process.generate(42, 10_000, &weights).unwrap();
            let b = process.generate(42, 10_000, &weights).unwrap();
            assert_eq!(a, b, "{} must be repeatable", process.kind());
            assert!(!a.is_empty(), "{} should emit arrivals", process.kind());
            assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
            let c = process.generate(43, 10_000, &weights).unwrap();
            assert_ne!(a, c, "{} must diverge across seeds", process.kind());
        }
    }

    #[test]
    fn arrivals_identical_after_engine_reuse() {
        // Interleave a full simulation between two generate() calls: the
        // process is a pure function of its inputs, so the engine run in
        // between must not perturb the sequence.
        let spec = quick_spec();
        let weights: Vec<u64> = spec.classes.iter().map(|c| c.weight).collect();
        let before = spec
            .arrivals
            .generate(spec.seed, spec.horizon, &weights)
            .unwrap();
        let _ = spec.run().unwrap();
        let after = spec
            .arrivals
            .generate(spec.seed, spec.horizon, &weights)
            .unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let cases: Vec<(StreamSpec, &str)> = vec![
            (
                quick_spec().with_arrivals(ArrivalProcess::Poisson { rate: 0.0 }),
                "`rate` must be a positive",
            ),
            (
                quick_spec().with_arrivals(ArrivalProcess::Poisson { rate: -1.0 }),
                "`rate` must be a positive",
            ),
            (
                quick_spec().with_arrivals(ArrivalProcess::Bursty {
                    rate: 0.01,
                    burst_rate: 0.1,
                    mean_calm: 0.0,
                    mean_burst: 10.0,
                }),
                "`mean_calm` must be a positive",
            ),
            (quick_spec().with_horizon(0), "`horizon` must be at least 1"),
            (
                {
                    let mut s = quick_spec();
                    s.fleet.clear();
                    s
                },
                "the fleet is empty",
            ),
            (
                {
                    let mut s = quick_spec();
                    s.fleet[0].count = 0;
                    s
                },
                "`count` must be at least 1",
            ),
            (
                {
                    let mut s = quick_spec();
                    s.classes.clear();
                    s
                },
                "no job classes",
            ),
            (
                {
                    let mut s = quick_spec();
                    s.classes[0].volume = 0;
                    s
                },
                "`volume` must be at least 1",
            ),
            (
                {
                    let mut s = quick_spec();
                    s.classes[1].name = "probe".to_string();
                    s
                },
                "duplicate class name `probe`",
            ),
            (
                quick_spec()
                    .class(JobClass::new("huge", Strategy::linear()).with_min_capacity(1_000)),
                "class `huge` fits no fleet server",
            ),
            (
                {
                    let mut s = quick_spec();
                    s.schedulers.clear();
                    s
                },
                "no schedulers requested",
            ),
            (
                quick_spec().with_schedulers(&["fifo", "fifo"]),
                "duplicate scheduler `fifo`",
            ),
            (
                quick_spec().with_arrivals(ArrivalProcess::Trace {
                    events: vec![TraceEvent {
                        at: 9_999,
                        class: 0,
                    }],
                }),
                "beyond the horizon",
            ),
            (
                quick_spec().with_arrivals(ArrivalProcess::Trace {
                    events: vec![TraceEvent { at: 1, class: 9 }],
                }),
                "names class index 9",
            ),
            (
                quick_spec().with_arrivals(ArrivalProcess::Poisson { rate: 1e9 }),
                "expected arrivals",
            ),
        ];
        for (spec, needle) in cases {
            let err = spec.validate().unwrap_err().to_string();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }

    #[test]
    fn unknown_scheduler_lists_known_names() {
        let spec = quick_spec().with_schedulers(&["dance"]);
        let err = spec.validate().unwrap_err();
        match &err {
            CoreError::UnknownScheduler { name, known } => {
                assert_eq!(name, "dance");
                for builtin in ["capacity_aware", "fifo", "priority", "reuse_aware"] {
                    assert!(known.contains(&builtin.to_string()));
                }
            }
            other => panic!("expected UnknownScheduler, got {other:?}"),
        }
        assert!(err.to_string().contains("unknown stream scheduler `dance`"));
        assert!(err.to_string().contains("fifo"));
    }

    #[test]
    fn registry_is_open_and_strict() {
        let mut registry = SchedulerRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec!["capacity_aware", "fifo", "priority", "reuse_aware"]
        );
        registry
            .register("always_pass", || {
                struct Pass;
                impl StreamScheduler for Pass {
                    fn select(&self, _view: &SchedulerView<'_>) -> Option<(usize, usize)> {
                        None
                    }
                }
                Box::new(Pass)
            })
            .unwrap();
        let err = registry
            .register("fifo", || Box::new(Fifo))
            .unwrap_err()
            .to_string();
        assert!(err.contains("`fifo` is already registered"));
        assert!(registry.build("always_pass").is_ok());
    }

    #[test]
    fn misbehaving_scheduler_cannot_wedge_the_engine() {
        // A scheduler that always returns an out-of-bounds pick: the engine
        // must terminate (jobs simply never start) instead of looping.
        let _ = register_stream_scheduler("out_of_bounds", || {
            struct Bad;
            impl StreamScheduler for Bad {
                fn select(&self, view: &SchedulerView<'_>) -> Option<(usize, usize)> {
                    Some((view.queue.len() + 7, 0))
                }
            }
            Box::new(Bad)
        });
        let spec = StreamSpec::new("bad")
            .with_horizon(50)
            .with_arrivals(ArrivalProcess::Trace {
                events: vec![TraceEvent { at: 1, class: 0 }],
            })
            .server(FactoryConfig::single_level(2), 1)
            .class(JobClass::new("only", Strategy::linear()))
            .with_schedulers(&["out_of_bounds"]);
        let report = spec.run().unwrap();
        assert_eq!(report.runs[0].completed, 0);
    }

    #[test]
    fn cancellation_yields_a_prefix() {
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::default().with_cancel(&token);
        let outcome = quick_spec().run_with(&ctrl).unwrap();
        assert!(outcome.interrupted);
        assert!(outcome.report.runs.is_empty());
    }

    #[test]
    fn sweep_projection_rows_are_gateable() {
        let report = quick_spec().run().unwrap();
        let results = report.to_sweep_results();
        assert_eq!(results.rows.len(), report.runs.len() * 3);
        let keys: Vec<String> = results
            .rows
            .iter()
            .map(|r| format!("{}/{}", r.label, r.evaluation.strategy))
            .collect();
        let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "row keys must be unique");
        for row in &results.rows {
            assert!(row.evaluation.latency_cycles >= 1);
            assert!(row.evaluation.volume >= 1);
        }
    }

    #[test]
    fn json_round_trip_and_parse_errors() {
        let text = r#"{
            "name": "json_quick",
            "horizon": 2000,
            "seed": 7,
            "setup_cycles": 10,
            "arrivals": {"process": "poisson", "rate": 0.004},
            "fleet": [
                {"factory": {"k": 4}, "count": 1},
                {"factory": {"k": 2}, "count": 2}
            ],
            "classes": [
                {"name": "probe", "strategy": {"strategy": "linear"}, "weight": 3},
                {"name": "bulk", "strategy": {"strategy": "linear"}, "priority": 2, "volume": 6}
            ],
            "schedulers": ["fifo", "reuse_aware"],
            "cache": true
        }"#;
        let spec = StreamSpec::from_json(text).unwrap();
        assert_eq!(spec.name, "json_quick");
        assert_eq!(spec.fleet.len(), 2);
        assert_eq!(spec.classes[1].priority, 2);
        assert_eq!(spec.schedulers, vec!["fifo", "reuse_aware"]);
        let report = spec.run().unwrap();
        assert_eq!(report.runs.len(), 2);

        let trace = r#"{
            "name": "trace",
            "horizon": 100,
            "arrivals": {"process": "trace", "events": [
                {"at": 1, "class": "probe"},
                {"at": 2, "class": "probe"}
            ]},
            "fleet": [{"factory": {"k": 2}, "count": 1}],
            "classes": [{"name": "probe", "strategy": {"strategy": "linear"}}],
            "schedulers": ["fifo"]
        }"#;
        let spec = StreamSpec::from_json(trace).unwrap();
        assert_eq!(
            spec.arrivals,
            ArrivalProcess::Trace {
                events: vec![
                    TraceEvent { at: 1, class: 0 },
                    TraceEvent { at: 2, class: 0 }
                ]
            }
        );

        let base = |patch: &str| -> String {
            format!(
                r#"{{
                    "name": "bad",
                    "horizon": 100,
                    "arrivals": {{"process": "poisson", "rate": 0.01}},
                    "fleet": [{{"factory": {{"k": 2}}, "count": 1}}],
                    "classes": [{{"name": "c", "strategy": {{"strategy": "linear"}}}}]{patch}
                }}"#
            )
        };
        let cases: Vec<(String, &str)> = vec![
            ("not json".to_string(), "not valid JSON"),
            ("[1, 2]".to_string(), "must be a JSON object"),
            (r#"{"horizon": 1}"#.to_string(), "missing `name`"),
            (base(r#", "mystery": 1"#), "unknown field `mystery`"),
            (
                base(r#", "schedulers": [1]"#),
                "schedulers[0] must be a string",
            ),
            (base(r#", "cache": "yes""#), "`cache` must be a boolean"),
            (
                r#"{"name": "x", "horizon": 1, "fleet": [], "classes": []}"#.to_string(),
                "missing `arrivals`",
            ),
            (
                base("").replace(r#""process": "poisson""#, r#""process": "sneaky""#),
                "unknown process `sneaky`",
            ),
            (base("").replace(r#", "rate": 0.01"#, ""), "missing `rate`"),
            (
                base("").replace(
                    r#""arrivals": {"process": "poisson", "rate": 0.01}"#,
                    r#""arrivals": {"process": "trace", "events": [{"at": 1, "class": "ghost"}]}"#,
                ),
                "unknown class `ghost`",
            ),
            (
                base("").replace(r#""count": 1"#, r#""count": 1, "extra": 2"#),
                "fleet[0]: unknown field `extra`",
            ),
            (
                base("").replace(r#""name": "c", "#, r#""name": "c", "tier": 3, "#),
                "classes[0]: unknown field `tier`",
            ),
        ];
        for (bad, needle) in cases {
            let err = StreamSpec::from_json(&bad).unwrap_err().to_string();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }
}
