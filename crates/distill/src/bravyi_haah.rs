//! The Bravyi-Haah `(3k+8) → k` distillation module (Fig. 5 of the paper).
//!
//! The module consumes `3k+8` raw magic states, uses `k+5` ancillas and
//! produces `k` higher-fidelity output states. The gate sequence here follows
//! the Scaffold listing of Fig. 5 (itself taken from Fowler, Devitt and Jones,
//! "Surface code implementation of block code state distillation"), with one
//! correction: the tail's injection index is `2k + 8 + i` (the last `k` raw
//! states), which makes every raw state be consumed exactly once; the listing
//! in the paper prints this expression as `2*i + 8 + i`, which would reuse
//! some raw states and leave others untouched.

use msfu_circuit::{Circuit, CircuitBuilder, Gate, QubitId, QubitRole};

use crate::Result;

/// Emits the gate sequence of one Bravyi-Haah module over explicitly provided
/// qubits, appending the gates to `gates`.
///
/// `raw` must hold `3k+8` qubits, `anc` must hold `k+5`, and `out` must hold
/// `k`, where `k = out.len()`.
///
/// # Panics
///
/// Panics (via debug assertions) if the slice lengths are inconsistent with
/// the protocol; callers inside this crate always size them correctly.
pub fn emit_module_gates(raw: &[QubitId], anc: &[QubitId], out: &[QubitId], gates: &mut Vec<Gate>) {
    let k = out.len();
    debug_assert_eq!(raw.len(), 3 * k + 8, "raw register must hold 3k+8 qubits");
    debug_assert_eq!(anc.len(), k + 5, "ancilla register must hold k+5 qubits");

    // Header: prepare ancilla and output qubits.
    gates.push(Gate::H(anc[0]));
    gates.push(Gate::H(anc[1]));
    gates.push(Gate::H(anc[2]));
    for &o in out.iter() {
        gates.push(Gate::H(o));
    }
    gates.push(Gate::Cnot {
        control: anc[1],
        target: anc[3],
    });
    gates.push(Gate::Cnot {
        control: anc[2],
        target: anc[4],
    });
    // CXX(anc[0], anc, K): control anc[0], K targets anc[1..=K].
    gates.push(Gate::Cxx {
        control: anc[0],
        targets: anc[1..=k].to_vec(),
    });

    // Tail: couple each output qubit into the syndrome structure and inject
    // one of the trailing K raw states.
    for i in 0..k {
        gates.push(Gate::Cnot {
            control: out[i],
            target: anc[5 + i],
        });
        gates.push(Gate::InjectT {
            raw: raw[2 * k + 8 + i],
            target: anc[5 + i],
        });
        gates.push(Gate::Cnot {
            control: anc[5 + i],
            target: anc[4 + i],
        });
        gates.push(Gate::Cnot {
            control: anc[3 + i],
            target: anc[5 + i],
        });
        gates.push(Gate::Cnot {
            control: anc[4 + i],
            target: anc[3 + i],
        });
    }

    // First injection sweep: T injections on anc[1..k+5] from even raw slots.
    for i in 1..k + 5 {
        gates.push(Gate::InjectT {
            raw: raw[2 * i - 2],
            target: anc[i],
        });
    }
    // CXX(anc[0], anc, K+4): control anc[0], K+4 targets anc[1..=K+4].
    gates.push(Gate::Cxx {
        control: anc[0],
        targets: anc[1..=k + 4].to_vec(),
    });
    // Second injection sweep: T† injections from odd raw slots.
    for i in 1..k + 5 {
        gates.push(Gate::InjectTdg {
            raw: raw[2 * i - 1],
            target: anc[i],
        });
    }
    // Syndrome readout of every ancilla.
    for &a in anc.iter() {
        gates.push(Gate::MeasX(a));
    }
}

/// Number of gates emitted by [`emit_module_gates`] for a module of capacity
/// `k`.
pub fn module_gate_count(k: usize) -> usize {
    // 3 H + k H + 2 CNOT + 1 CXX + 5k tail + (k+4) injectT + 1 CXX
    // + (k+4) injectTdag + (k+5) MeasX
    3 + k + 2 + 1 + 5 * k + (k + 4) + 1 + (k + 4) + (k + 5)
}

/// Number of two-qubit interaction instances (braids) emitted by one module of
/// capacity `k`.
pub fn module_braid_count(k: usize) -> usize {
    // 2 CNOT + k CXX targets + 5k tail braids + (k+4) injections
    // + (k+4) CXX targets + (k+4) injections
    2 + k + 5 * k + 3 * (k + 4)
}

/// Builds a standalone single-module circuit of capacity `k` (the `L = 1`
/// factory of Fig. 4a / Fig. 5 of the paper).
///
/// # Errors
///
/// Returns an error only if the underlying circuit construction fails, which
/// indicates a bug in the generator.
///
/// # Example
///
/// ```
/// use msfu_distill::bravyi_haah;
///
/// let circuit = bravyi_haah::single_module_circuit(8)?;
/// assert_eq!(circuit.num_qubits(), 5 * 8 + 13);
/// assert_eq!(circuit.num_gates(), bravyi_haah::module_gate_count(8));
/// # Ok::<(), msfu_distill::DistillError>(())
/// ```
pub fn single_module_circuit(k: usize) -> Result<Circuit> {
    let mut b = CircuitBuilder::new(format!("bravyi-haah-k{k}"));
    let raw = b.register("raw_states", QubitRole::Raw, 3 * k + 8);
    let anc = b.register("anc", QubitRole::Ancilla, k + 5);
    let out = b.register("out", QubitRole::Output, k);
    let mut gates = Vec::with_capacity(module_gate_count(k));
    emit_module_gates(&raw, &anc, &out, &mut gates);
    for g in gates {
        b.push(g)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::{stats::CircuitStats, GateKind};
    use std::collections::HashMap;

    #[test]
    fn gate_count_matches_formula() {
        for k in [1usize, 2, 4, 8, 12] {
            let c = single_module_circuit(k).unwrap();
            assert_eq!(c.num_gates(), module_gate_count(k), "k={k}");
            assert_eq!(c.braid_count(), module_braid_count(k), "k={k}");
        }
    }

    #[test]
    fn qubit_counts_match_protocol() {
        let c = single_module_circuit(8).unwrap();
        assert_eq!(c.num_qubits(), 53);
        assert_eq!(c.qubits_with_role(QubitRole::Raw).len(), 32);
        assert_eq!(c.qubits_with_role(QubitRole::Ancilla).len(), 13);
        assert_eq!(c.qubits_with_role(QubitRole::Output).len(), 8);
    }

    #[test]
    fn every_raw_state_is_injected_exactly_once() {
        for k in [2usize, 4, 8] {
            let c = single_module_circuit(k).unwrap();
            let mut uses: HashMap<QubitId, usize> = HashMap::new();
            for g in c.gates() {
                if let Gate::InjectT { raw, .. } | Gate::InjectTdg { raw, .. } = g {
                    *uses.entry(*raw).or_insert(0) += 1;
                }
            }
            let raw_qubits = c.qubits_with_role(QubitRole::Raw);
            assert_eq!(uses.len(), raw_qubits.len(), "k={k}");
            for q in raw_qubits {
                assert_eq!(uses.get(&q), Some(&1), "raw state {q} must be used once");
            }
        }
    }

    #[test]
    fn t_count_is_three_k_plus_eight() {
        for k in [2usize, 8] {
            let c = single_module_circuit(k).unwrap();
            let stats = CircuitStats::of(&c);
            assert_eq!(stats.t_count(), 3 * k + 8);
        }
    }

    #[test]
    fn every_ancilla_is_measured_once() {
        let c = single_module_circuit(6).unwrap();
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.count(GateKind::MeasX), 6 + 5);
    }

    #[test]
    fn outputs_are_never_measured() {
        let c = single_module_circuit(4).unwrap();
        for g in c.gates() {
            if g.is_measurement() {
                let q = g.qubits()[0];
                assert_ne!(c.role(q), QubitRole::Output);
            }
        }
    }

    #[test]
    fn interaction_graph_touches_every_output() {
        let c = single_module_circuit(4).unwrap();
        let pairs = c.interaction_pairs();
        for out_q in c.qubits_with_role(QubitRole::Output) {
            let touched = pairs.keys().any(|(a, b)| *a == out_q || *b == out_q);
            assert!(touched, "output {out_q} must participate in the circuit");
        }
    }

    #[test]
    fn circuit_has_nontrivial_depth() {
        let c = single_module_circuit(8).unwrap();
        let stats = CircuitStats::of(&c);
        assert!(stats.depth >= 10, "depth {} too small", stats.depth);
        assert!(stats.critical_path_cycles > 20);
    }
}
