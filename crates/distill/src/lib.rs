//! # msfu-distill
//!
//! Generators and analytical models for **Bravyi-Haah block-code magic-state
//! distillation factories**, the workload studied by the MSFU paper
//! (Ding et al., MICRO 2018).
//!
//! The crate provides:
//!
//! * [`bravyi_haah`] — the `(3k+8) → k` distillation module of Fig. 5 of the
//!   paper, emitted gate-for-gate into the [`msfu_circuit`] IR.
//! * [`Factory`] / [`FactoryConfig`] — multi-level block-code factories
//!   (Section II-G): rounds of identical modules joined by an inter-round
//!   permutation that forwards at most one output state from any upstream
//!   module to each downstream module, optional barriers between rounds, and
//!   the two qubit-reuse policies of Section V-B.
//! * [`error_model`] — output-error suppression `(1+3k)ε²`, module success
//!   probability and level-count selection.
//! * [`resource`] — balanced-investment code distances and physical-qubit
//!   estimates `qᵣ = mᵣ (5k+13) dᵣ²` per round.
//!
//! # Example
//!
//! ```
//! use msfu_distill::{Factory, FactoryConfig, ReusePolicy};
//!
//! // A two-level factory with k = 2 per level (total capacity 4), barriers
//! // between rounds and qubit reuse enabled.
//! let config = FactoryConfig::new(2, 2)
//!     .with_reuse(ReusePolicy::Reuse)
//!     .with_barriers(true);
//! let factory = Factory::build(&config)?;
//! assert_eq!(factory.capacity(), 4);
//! assert_eq!(factory.rounds().len(), 2);
//! # Ok::<(), msfu_distill::DistillError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bravyi_haah;
mod config;
mod error;
pub mod error_model;
mod factory;
mod module;
mod ports;
pub mod resource;

pub use config::{FactoryConfig, ReusePolicy};
pub use error::DistillError;
pub use factory::Factory;
pub use module::{ModuleInfo, PermutationEdge, RoundInfo};
pub use ports::PortAssignment;

/// Convenience result alias used by fallible APIs in this crate.
pub type Result<T> = std::result::Result<T, DistillError>;
