//! Physical resource estimation: code distances and physical qubit counts.
//!
//! The surface code protects a logical qubit with distance `d` using roughly
//! `d²` physical qubits, and its logical error rate scales as
//! `P_L ≈ A·d·(ε/ε_th)^((d+1)/2)` (Section II-B of the paper, with threshold
//! `ε_th = 1/100`). Because later block-code rounds handle states of ever
//! lower error rate, the "balanced investment" strategy of O'Gorman and
//! Campbell assigns each round its own (increasing) code distance
//! (Section II-G): `qᵣ = mᵣ·(5k+13)·dᵣ²` physical qubits for round `r` with
//! `mᵣ` modules.

use serde::{Deserialize, Serialize};

use crate::{error_model, FactoryConfig};

/// Surface-code error threshold used by the `P_L` scaling law.
pub const CODE_THRESHOLD: f64 = 0.01;

/// Prefactor of the logical error-rate scaling law.
pub const LOGICAL_ERROR_PREFACTOR: f64 = 0.1;

/// Logical error rate per logical qubit per round of error correction for a
/// code of distance `d` running above physical error rate `p_phys`:
/// `A·d·(p/ε_th)^((d+1)/2)`.
pub fn logical_error_rate(d: u32, p_phys: f64) -> f64 {
    let ratio = p_phys / CODE_THRESHOLD;
    LOGICAL_ERROR_PREFACTOR * d as f64 * ratio.powf((d as f64 + 1.0) / 2.0)
}

/// Smallest odd code distance whose logical error rate is at or below
/// `target` for the given physical error rate. Returns `None` when the
/// physical error rate is at or above threshold, where no distance helps.
pub fn code_distance_for(p_phys: f64, target: f64) -> Option<u32> {
    if p_phys >= CODE_THRESHOLD {
        return None;
    }
    let mut d = 3;
    while d <= 101 {
        if logical_error_rate(d, p_phys) <= target {
            return Some(d);
        }
        d += 2;
    }
    None
}

/// Physical resource estimate of one factory round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundResources {
    /// Round index (0-based).
    pub round: usize,
    /// Number of modules in the round.
    pub modules: usize,
    /// Error rate of the states entering the round.
    pub input_error: f64,
    /// Code distance assigned to the round by balanced investment.
    pub code_distance: u32,
    /// Logical qubits occupied by the round.
    pub logical_qubits: usize,
    /// Physical qubits occupied by the round: `mᵣ·(5k+13)·dᵣ²`.
    pub physical_qubits: usize,
}

/// Physical resource estimate of a full multi-level factory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactoryResources {
    /// Per-round breakdown.
    pub rounds: Vec<RoundResources>,
    /// Error rate of the delivered output states.
    pub output_error: f64,
    /// Peak physical-qubit footprint across rounds (rounds execute one after
    /// another, so the footprint is the maximum, not the sum).
    pub peak_physical_qubits: usize,
}

/// Estimates per-round code distances and physical qubit counts for a factory
/// configuration using the balanced-investment rule: each round's code
/// distance is the smallest odd distance whose logical error rate is an order
/// of magnitude below the error rate of the states that round manipulates.
///
/// # Example
///
/// ```
/// use msfu_distill::{resource, FactoryConfig};
///
/// let est = resource::estimate(&FactoryConfig::two_level(4), 1e-3, 1e-4);
/// assert_eq!(est.rounds.len(), 2);
/// // Later rounds handle better states and therefore need larger distances.
/// assert!(est.rounds[1].code_distance >= est.rounds[0].code_distance);
/// ```
pub fn estimate(config: &FactoryConfig, eps_inject: f64, p_phys: f64) -> FactoryResources {
    let k = config.k;
    let qubits_per_module = config.qubits_per_module();
    let mut rounds = Vec::with_capacity(config.levels);
    let mut peak = 0usize;
    for r in 0..config.levels {
        let modules = config.modules_in_round(r);
        let input_error = error_model::input_error_at_round(k, r, eps_inject);
        // Balanced investment: logical failures should not dominate the error
        // of the states being distilled, so target one tenth of the error
        // rate of the *output* of this round.
        let target = error_model::output_error(k, input_error) / 10.0;
        let code_distance = code_distance_for(p_phys, target.max(f64::MIN_POSITIVE)).unwrap_or(101);
        let logical_qubits = modules * qubits_per_module;
        let physical_qubits = logical_qubits * (code_distance as usize).pow(2);
        peak = peak.max(physical_qubits);
        rounds.push(RoundResources {
            round: r,
            modules,
            input_error,
            code_distance,
            logical_qubits,
            physical_qubits,
        });
    }
    FactoryResources {
        output_error: error_model::error_after_levels(k, config.levels, eps_inject),
        peak_physical_qubits: peak,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_error_rate_decreases_with_distance() {
        let p = 1e-3;
        assert!(logical_error_rate(5, p) < logical_error_rate(3, p));
        assert!(logical_error_rate(15, p) < logical_error_rate(7, p));
    }

    #[test]
    fn code_distance_for_monotone_in_target() {
        let p = 1e-3;
        let loose = code_distance_for(p, 1e-4).unwrap();
        let tight = code_distance_for(p, 1e-12).unwrap();
        assert!(tight > loose);
        assert_eq!(loose % 2, 1);
        assert_eq!(tight % 2, 1);
    }

    #[test]
    fn code_distance_fails_above_threshold() {
        assert_eq!(code_distance_for(0.02, 1e-9), None);
        assert_eq!(code_distance_for(0.01, 1e-9), None);
    }

    #[test]
    fn estimate_assigns_increasing_distances() {
        let est = estimate(&FactoryConfig::two_level(6), 1e-3, 1e-4);
        assert_eq!(est.rounds.len(), 2);
        assert!(est.rounds[1].code_distance >= est.rounds[0].code_distance);
        assert!(est.rounds[0].input_error > est.rounds[1].input_error);
        assert!(est.output_error < est.rounds[1].input_error);
        assert!(est.peak_physical_qubits >= est.rounds[0].physical_qubits);
        assert!(est.peak_physical_qubits >= est.rounds[1].physical_qubits);
    }

    #[test]
    fn physical_qubits_follow_formula() {
        let cfg = FactoryConfig::two_level(2);
        let est = estimate(&cfg, 1e-3, 1e-4);
        for r in &est.rounds {
            assert_eq!(
                r.physical_qubits,
                r.modules * cfg.qubits_per_module() * (r.code_distance as usize).pow(2)
            );
        }
    }

    #[test]
    fn single_level_estimate_has_one_round() {
        let est = estimate(&FactoryConfig::single_level(8), 1e-3, 1e-4);
        assert_eq!(est.rounds.len(), 1);
        assert_eq!(est.rounds[0].modules, 1);
    }
}
