//! Factory configuration: capacity, levels, reuse policy, barriers.

use serde::{Deserialize, Serialize};

use crate::{DistillError, Result};

/// Qubit-reuse policy across block-code rounds (Section V-B of the paper).
///
/// Ancillary and raw-input qubits are measured at the end of every round and
/// reinitialised at the beginning of the next; whether the *same* logical
/// qubit locations are reused is a scheduling/area trade-off:
///
/// * [`ReusePolicy::Reuse`] shares qubits across rounds, minimising area at
///   the cost of false (sharing-after-measurement) dependencies.
/// * [`ReusePolicy::NoReuse`] allocates fresh qubits per round, removing the
///   false dependencies at the cost of extra area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReusePolicy {
    /// Reuse measured qubits from the previous round (smaller area, extra
    /// false dependencies).
    #[default]
    Reuse,
    /// Allocate fresh qubits for every round (larger area, fewer
    /// dependencies).
    NoReuse,
}

impl ReusePolicy {
    /// Short name used in reports ("R" / "NR", matching Table I of the paper).
    pub fn short_name(self) -> &'static str {
        match self {
            ReusePolicy::Reuse => "R",
            ReusePolicy::NoReuse => "NR",
        }
    }
}

/// Configuration of a multi-level Bravyi-Haah block-code factory.
///
/// A factory with per-level capacity `k` and `levels` rounds consumes
/// `(3k+8)^levels` raw input states and produces `k^levels` distilled output
/// states (Section II-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FactoryConfig {
    /// Per-module output capacity `k` of the Bravyi-Haah protocol.
    pub k: usize,
    /// Number of block-code levels `ℓ`.
    pub levels: usize,
    /// Qubit-reuse policy across rounds.
    pub reuse: ReusePolicy,
    /// Whether to insert a scheduling barrier at the end of every round
    /// (Section V-A). Barriers expose the planarity of individual rounds and
    /// are required by the hierarchical-stitching mapper.
    pub barriers: bool,
}

impl FactoryConfig {
    /// Creates a configuration with per-level capacity `k` and `levels`
    /// rounds, qubit reuse enabled and barriers enabled.
    pub fn new(k: usize, levels: usize) -> Self {
        FactoryConfig {
            k,
            levels,
            reuse: ReusePolicy::Reuse,
            barriers: true,
        }
    }

    /// Creates a single-level factory of capacity `k`.
    pub fn single_level(k: usize) -> Self {
        Self::new(k, 1)
    }

    /// Creates a two-level factory with per-level capacity `k`
    /// (total capacity `k²`).
    pub fn two_level(k: usize) -> Self {
        Self::new(k, 2)
    }

    /// Creates a configuration from a *total* output capacity, which must be
    /// an exact `levels`-th power of an integer (e.g. total capacity 36 with
    /// two levels gives `k = 6`).
    ///
    /// # Errors
    ///
    /// Returns [`DistillError::CapacityNotAPower`] if no integer `k` satisfies
    /// `k^levels == capacity`, and [`DistillError::ZeroLevels`] /
    /// [`DistillError::ZeroCapacity`] for degenerate inputs.
    pub fn from_total_capacity(capacity: usize, levels: usize) -> Result<Self> {
        if levels == 0 {
            return Err(DistillError::ZeroLevels);
        }
        if capacity == 0 {
            return Err(DistillError::ZeroCapacity);
        }
        let k = (capacity as f64).powf(1.0 / levels as f64).round() as usize;
        for candidate in [k.saturating_sub(1), k, k + 1] {
            if candidate >= 1 && candidate.pow(levels as u32) == capacity {
                return Ok(Self::new(candidate, levels));
            }
        }
        Err(DistillError::CapacityNotAPower { capacity, levels })
    }

    /// Sets the reuse policy.
    pub fn with_reuse(mut self, reuse: ReusePolicy) -> Self {
        self.reuse = reuse;
        self
    }

    /// Enables or disables inter-round barriers.
    pub fn with_barriers(mut self, barriers: bool) -> Self {
        self.barriers = barriers;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for zero capacity or zero levels.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(DistillError::ZeroCapacity);
        }
        if self.levels == 0 {
            return Err(DistillError::ZeroLevels);
        }
        Ok(())
    }

    /// Number of raw input states consumed by one module: `3k + 8`.
    pub fn inputs_per_module(&self) -> usize {
        3 * self.k + 8
    }

    /// Number of ancillary qubits used by one module: `k + 5`.
    pub fn ancillas_per_module(&self) -> usize {
        self.k + 5
    }

    /// Number of logical qubits in one module: `5k + 13`.
    pub fn qubits_per_module(&self) -> usize {
        5 * self.k + 13
    }

    /// Total output capacity of the factory: `k^levels`.
    pub fn capacity(&self) -> usize {
        self.k.pow(self.levels as u32)
    }

    /// Total number of raw input states consumed: `(3k+8)^levels`.
    pub fn total_raw_inputs(&self) -> usize {
        self.inputs_per_module().pow(self.levels as u32)
    }

    /// Number of modules in round `round` (0-based): `(3k+8)^(ℓ-1-round) · k^round`.
    pub fn modules_in_round(&self, round: usize) -> usize {
        debug_assert!(round < self.levels);
        self.inputs_per_module()
            .pow((self.levels - 1 - round) as u32)
            * self.k.pow(round as u32)
    }

    /// Total number of modules across all rounds.
    pub fn total_modules(&self) -> usize {
        (0..self.levels).map(|r| self.modules_in_round(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_counts_match_protocol() {
        let c = FactoryConfig::single_level(8);
        assert_eq!(c.inputs_per_module(), 32);
        assert_eq!(c.ancillas_per_module(), 13);
        assert_eq!(c.qubits_per_module(), 53);
        assert_eq!(c.capacity(), 8);
        assert_eq!(c.modules_in_round(0), 1);
        assert_eq!(c.total_modules(), 1);
    }

    #[test]
    fn two_level_module_counts() {
        let c = FactoryConfig::two_level(2);
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.total_raw_inputs(), 14 * 14);
        assert_eq!(c.modules_in_round(0), 14);
        assert_eq!(c.modules_in_round(1), 2);
        assert_eq!(c.total_modules(), 16);
    }

    #[test]
    fn output_consumption_balances_between_rounds() {
        // Outputs of round r must exactly cover inputs of round r+1.
        for k in [2usize, 4, 6, 8, 10] {
            for levels in [2usize, 3] {
                let c = FactoryConfig::new(k, levels);
                for r in 0..levels - 1 {
                    let produced = c.modules_in_round(r) * k;
                    let consumed = c.modules_in_round(r + 1) * c.inputs_per_module();
                    assert_eq!(produced, consumed, "k={k} levels={levels} round={r}");
                }
            }
        }
    }

    #[test]
    fn from_total_capacity_finds_exact_roots() {
        assert_eq!(FactoryConfig::from_total_capacity(36, 2).unwrap().k, 6);
        assert_eq!(FactoryConfig::from_total_capacity(100, 2).unwrap().k, 10);
        assert_eq!(FactoryConfig::from_total_capacity(8, 1).unwrap().k, 8);
        assert_eq!(FactoryConfig::from_total_capacity(8, 3).unwrap().k, 2);
        assert!(FactoryConfig::from_total_capacity(5, 2).is_err());
        assert!(FactoryConfig::from_total_capacity(0, 2).is_err());
        assert!(FactoryConfig::from_total_capacity(4, 0).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(FactoryConfig::new(0, 1).validate().is_err());
        assert!(FactoryConfig::new(2, 0).validate().is_err());
        assert!(FactoryConfig::new(2, 1).validate().is_ok());
    }

    #[test]
    fn builder_style_setters() {
        let c = FactoryConfig::new(4, 2)
            .with_reuse(ReusePolicy::NoReuse)
            .with_barriers(false);
        assert_eq!(c.reuse, ReusePolicy::NoReuse);
        assert!(!c.barriers);
        assert_eq!(ReusePolicy::Reuse.short_name(), "R");
        assert_eq!(ReusePolicy::NoReuse.short_name(), "NR");
    }
}
