//! Analytical error model of the Bravyi-Haah protocol.
//!
//! The `(3k+8) → k` protocol suppresses the injected-state error rate
//! quadratically: an input error rate ε yields an output error rate of
//! `(1 + 3k)·ε²`, and succeeds (to first order) with probability
//! `1 − (8 + 3k)·ε` (Section II-F of the paper). Multi-level block codes
//! iterate the suppression (Section II-G).

/// Output error rate of a single Bravyi-Haah module of capacity `k` fed with
/// states of error rate `eps_in`: `(1 + 3k)·ε²`, clamped to `[0, 1]`.
///
/// # Example
///
/// ```
/// let out = msfu_distill::error_model::output_error(8, 1e-3);
/// assert!((out - 25e-6).abs() < 1e-9);
/// ```
pub fn output_error(k: usize, eps_in: f64) -> f64 {
    ((1.0 + 3.0 * k as f64) * eps_in * eps_in).clamp(0.0, 1.0)
}

/// First-order success probability of a single module of capacity `k` fed
/// with states of error rate `eps_in`: `1 − (8 + 3k)·ε`, clamped to `[0, 1]`.
pub fn success_probability(k: usize, eps_in: f64) -> f64 {
    (1.0 - (8.0 + 3.0 * k as f64) * eps_in).clamp(0.0, 1.0)
}

/// Error rate after `levels` recursive applications of the protocol starting
/// from injected states of error rate `eps_inject`.
pub fn error_after_levels(k: usize, levels: usize, eps_inject: f64) -> f64 {
    let mut eps = eps_inject;
    for _ in 0..levels {
        eps = output_error(k, eps);
    }
    eps
}

/// Error rate of the states entering round `round` (0-based): the injected
/// error for round 0, the once-distilled error for round 1, and so on.
pub fn input_error_at_round(k: usize, round: usize, eps_inject: f64) -> f64 {
    error_after_levels(k, round, eps_inject)
}

/// Smallest number of levels for which the output error rate drops to
/// `target` or below, starting from `eps_inject`. Returns `None` if the
/// protocol does not converge (i.e. the input error is too large for the
/// quadratic suppression to win) within 16 levels.
pub fn required_levels(k: usize, eps_inject: f64, target: f64) -> Option<usize> {
    let mut eps = eps_inject;
    for level in 0..=16 {
        if eps <= target {
            return Some(level);
        }
        let next = output_error(k, eps);
        if next >= eps {
            return None;
        }
        eps = next;
    }
    None
}

/// Expected number of raw input states consumed per *successful* distilled
/// output state for a single level, accounting for module failures.
pub fn expected_inputs_per_output(k: usize, eps_in: f64) -> f64 {
    let p = success_probability(k, eps_in);
    if p <= 0.0 {
        f64::INFINITY
    } else {
        (3.0 * k as f64 + 8.0) / (k as f64 * p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_error_matches_formula() {
        let eps = 1e-3;
        assert!((output_error(2, eps) - 7.0 * eps * eps).abs() < 1e-15);
        assert!((output_error(8, eps) - 25.0 * eps * eps).abs() < 1e-15);
    }

    #[test]
    fn output_error_is_clamped() {
        assert_eq!(output_error(8, 1.0), 1.0);
        assert_eq!(output_error(8, 0.0), 0.0);
    }

    #[test]
    fn success_probability_decreases_with_k_and_eps() {
        assert!(success_probability(2, 1e-3) > success_probability(24, 1e-3));
        assert!(success_probability(8, 1e-4) > success_probability(8, 1e-2));
        assert_eq!(success_probability(8, 0.5), 0.0);
    }

    #[test]
    fn levels_compose_quadratically() {
        let eps = 1e-3;
        let one = error_after_levels(4, 1, eps);
        let two = error_after_levels(4, 2, eps);
        assert!((two - output_error(4, one)).abs() < 1e-18);
        assert!(two < one && one < eps);
    }

    #[test]
    fn input_error_at_round_zero_is_injection_error() {
        assert_eq!(input_error_at_round(4, 0, 1e-3), 1e-3);
        assert_eq!(input_error_at_round(4, 1, 1e-3), output_error(4, 1e-3));
    }

    #[test]
    fn required_levels_finds_minimum() {
        // eps = 1e-3, k = 8: one level reaches 2.5e-5, two levels ~1.6e-8.
        assert_eq!(required_levels(8, 1e-3, 1e-2), Some(0));
        assert_eq!(required_levels(8, 1e-3, 1e-4), Some(1));
        assert_eq!(required_levels(8, 1e-3, 1e-7), Some(2));
    }

    #[test]
    fn required_levels_detects_divergence() {
        // With a very high injection error the protocol cannot improve.
        assert_eq!(required_levels(8, 0.5, 1e-9), None);
    }

    #[test]
    fn expected_inputs_account_for_failures() {
        let ideal = (3.0 * 8.0 + 8.0) / 8.0;
        let realistic = expected_inputs_per_output(8, 1e-3);
        assert!(realistic > ideal);
        assert!(realistic < ideal * 1.1);
        assert!(expected_inputs_per_output(8, 0.9).is_infinite());
    }
}
