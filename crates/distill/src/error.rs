//! Error types for factory construction.

use std::fmt;

/// Errors produced when configuring or constructing a distillation factory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistillError {
    /// The requested per-module capacity `k` is zero.
    ZeroCapacity,
    /// The requested number of levels is zero.
    ZeroLevels,
    /// A total output capacity was requested that is not an exact `ℓ`-th
    /// power, so no per-level `k` reproduces it.
    CapacityNotAPower {
        /// The requested total capacity.
        capacity: usize,
        /// The requested number of levels.
        levels: usize,
    },
    /// The requested configuration is too large to build in memory.
    TooLarge {
        /// The number of logical qubits the configuration would require.
        qubits: usize,
        /// The configured hard limit.
        limit: usize,
    },
    /// An output-port swap referenced qubits that are not output qubits of the
    /// same module.
    InvalidPortSwap,
    /// Wrapper around an underlying circuit-construction error.
    Circuit(msfu_circuit::CircuitError),
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::ZeroCapacity => write!(f, "per-module capacity k must be at least 1"),
            DistillError::ZeroLevels => write!(f, "number of levels must be at least 1"),
            DistillError::CapacityNotAPower { capacity, levels } => write!(
                f,
                "total capacity {capacity} is not an exact {levels}-th power of an integer"
            ),
            DistillError::TooLarge { qubits, limit } => write!(
                f,
                "configuration requires {qubits} logical qubits which exceeds the limit of {limit}"
            ),
            DistillError::InvalidPortSwap => {
                write!(
                    f,
                    "port swap must reference two output qubits of the same module"
                )
            }
            DistillError::Circuit(e) => write!(f, "circuit construction failed: {e}"),
        }
    }
}

impl std::error::Error for DistillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistillError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<msfu_circuit::CircuitError> for DistillError {
    fn from(value: msfu_circuit::CircuitError) -> Self {
        DistillError::Circuit(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DistillError::ZeroCapacity.to_string().contains('k'));
        assert!(DistillError::CapacityNotAPower {
            capacity: 5,
            levels: 2
        }
        .to_string()
        .contains('5'));
        assert!(DistillError::TooLarge {
            qubits: 10,
            limit: 5
        }
        .to_string()
        .contains("10"));
    }

    #[test]
    fn wraps_circuit_errors() {
        let inner = msfu_circuit::CircuitError::EmptyTargets;
        let e = DistillError::from(inner.clone());
        assert_eq!(e, DistillError::Circuit(inner));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DistillError>();
    }
}
