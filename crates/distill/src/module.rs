//! Structural metadata describing modules, rounds and inter-round permutation
//! edges of a block-code factory.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use msfu_circuit::QubitId;

/// One Bravyi-Haah `(3k+8) → k` module instance within a factory.
///
/// A module owns three qubit groups: its raw inputs (fresh raw states in round
/// zero, upstream output states afterwards), its `k+5` ancillas, and its `k`
/// output states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleInfo {
    /// Index of this module within the whole factory.
    pub id: usize,
    /// Round (0-based level) this module belongs to.
    pub round: usize,
    /// Index of this module within its round.
    pub index_in_round: usize,
    /// The `3k+8` input magic-state qubits, in slot order.
    pub raw_inputs: Vec<QubitId>,
    /// The `k+5` ancillary qubits.
    pub ancillas: Vec<QubitId>,
    /// The `k` output magic-state qubits.
    pub outputs: Vec<QubitId>,
    /// Range of gate indices (into the factory circuit) emitted by this module.
    pub gate_range: Range<usize>,
}

impl ModuleInfo {
    /// All qubits *local* to this module: ancillas and outputs. Raw inputs of
    /// round-zero modules are also local; raw inputs of later rounds belong to
    /// upstream modules and are excluded.
    pub fn local_qubits(&self) -> Vec<QubitId> {
        let mut qs = Vec::with_capacity(
            self.ancillas.len()
                + self.outputs.len()
                + if self.round == 0 {
                    self.raw_inputs.len()
                } else {
                    0
                },
        );
        if self.round == 0 {
            qs.extend_from_slice(&self.raw_inputs);
        }
        qs.extend_from_slice(&self.ancillas);
        qs.extend_from_slice(&self.outputs);
        qs
    }

    /// Every qubit referenced by the module, including upstream raw inputs.
    pub fn all_qubits(&self) -> Vec<QubitId> {
        let mut qs =
            Vec::with_capacity(self.raw_inputs.len() + self.ancillas.len() + self.outputs.len());
        qs.extend_from_slice(&self.raw_inputs);
        qs.extend_from_slice(&self.ancillas);
        qs.extend_from_slice(&self.outputs);
        qs
    }

    /// Per-module capacity `k` (number of outputs).
    pub fn capacity(&self) -> usize {
        self.outputs.len()
    }
}

/// One round (block-code level) of a factory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundInfo {
    /// Round index (0-based; round 0 consumes raw injected states).
    pub index: usize,
    /// Identifiers of the modules belonging to this round, in order.
    pub modules: Vec<usize>,
    /// Range of gate indices (into the factory circuit) belonging to this
    /// round, including its trailing barrier if present.
    pub gate_range: Range<usize>,
    /// Gate index of the barrier terminating this round, if barriers were
    /// requested and this is not the final round.
    pub barrier_gate: Option<usize>,
}

impl RoundInfo {
    /// Number of modules in the round.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }
}

/// One edge of the inter-round permutation: an output state of a source module
/// that is consumed as raw-input slot `dest_slot` of a destination module in
/// the following round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermutationEdge {
    /// Round of the source module (the destination is in `source_round + 1`).
    pub source_round: usize,
    /// Factory-wide identifier of the source module.
    pub source_module: usize,
    /// Output qubit of the source module carrying the state.
    pub source_qubit: QubitId,
    /// Factory-wide identifier of the destination module.
    pub dest_module: usize,
    /// Raw-input slot index within the destination module.
    pub dest_slot: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn local_qubits_include_raw_only_in_round_zero() {
        let base = ModuleInfo {
            id: 0,
            round: 0,
            index_in_round: 0,
            raw_inputs: vec![q(0), q(1)],
            ancillas: vec![q(2)],
            outputs: vec![q(3)],
            gate_range: 0..4,
        };
        assert_eq!(base.local_qubits(), vec![q(0), q(1), q(2), q(3)]);
        assert_eq!(base.all_qubits().len(), 4);
        assert_eq!(base.capacity(), 1);

        let later = ModuleInfo { round: 1, ..base };
        assert_eq!(later.local_qubits(), vec![q(2), q(3)]);
        assert_eq!(later.all_qubits().len(), 4);
    }

    #[test]
    fn round_info_module_count() {
        let r = RoundInfo {
            index: 0,
            modules: vec![0, 1, 2],
            gate_range: 0..10,
            barrier_gate: Some(9),
        };
        assert_eq!(r.num_modules(), 3);
    }
}
