//! Multi-level block-code factory construction.

use serde::{Deserialize, Serialize};

use msfu_circuit::{Circuit, Gate, QubitId, QubitRole};

use crate::bravyi_haah::{emit_module_gates, module_gate_count};
use crate::{
    DistillError, FactoryConfig, ModuleInfo, PermutationEdge, PortAssignment, Result, ReusePolicy,
    RoundInfo,
};

/// Hard limit on the number of logical qubits a factory may allocate; guards
/// against accidentally requesting an astronomically large configuration.
const MAX_LOGICAL_QUBITS: usize = 500_000;

/// A fully elaborated multi-level Bravyi-Haah block-code factory: the flat
/// gate-level circuit plus the structural metadata (modules, rounds,
/// inter-round permutation) that the mapping and scheduling machinery relies
/// on.
///
/// # Example
///
/// ```
/// use msfu_distill::{Factory, FactoryConfig};
///
/// let factory = Factory::build(&FactoryConfig::two_level(2))?;
/// assert_eq!(factory.capacity(), 4);
/// assert_eq!(factory.rounds()[0].num_modules(), 14);
/// assert_eq!(factory.rounds()[1].num_modules(), 2);
/// // Every output of round 0 is consumed by exactly one round-1 module.
/// assert_eq!(factory.permutation_edges().len(), 14 * 2);
/// # Ok::<(), msfu_distill::DistillError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factory {
    config: FactoryConfig,
    circuit: Circuit,
    modules: Vec<ModuleInfo>,
    rounds: Vec<RoundInfo>,
    permutation_edges: Vec<PermutationEdge>,
}

/// Simple qubit allocator with an optional free list for the reuse policy.
struct Allocator {
    roles: Vec<QubitRole>,
    free: Vec<QubitId>,
    reuse: bool,
}

impl Allocator {
    fn new(reuse: bool) -> Self {
        Allocator {
            roles: Vec::new(),
            free: Vec::new(),
            reuse,
        }
    }

    fn alloc(&mut self, role: QubitRole, n: usize) -> Vec<QubitId> {
        let mut out = Vec::with_capacity(n);
        if self.reuse {
            while out.len() < n {
                match self.free.pop() {
                    Some(q) => {
                        self.roles[q.index()] = role;
                        out.push(q);
                    }
                    None => break,
                }
            }
        }
        while out.len() < n {
            let q = QubitId::new(self.roles.len() as u32);
            self.roles.push(role);
            out.push(q);
        }
        out
    }

    fn release(&mut self, qubits: &[QubitId]) {
        if self.reuse {
            self.free.extend_from_slice(qubits);
        }
    }

    fn num_qubits(&self) -> usize {
        self.roles.len()
    }
}

impl Factory {
    /// Builds a factory from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is degenerate
    /// ([`DistillError::ZeroCapacity`], [`DistillError::ZeroLevels`]), would
    /// exceed the logical-qubit safety limit ([`DistillError::TooLarge`]), or
    /// if circuit construction fails (a generator bug).
    pub fn build(config: &FactoryConfig) -> Result<Self> {
        config.validate()?;
        let worst_case_qubits = config.total_modules() * config.qubits_per_module();
        if worst_case_qubits > MAX_LOGICAL_QUBITS {
            return Err(DistillError::TooLarge {
                qubits: worst_case_qubits,
                limit: MAX_LOGICAL_QUBITS,
            });
        }

        let k = config.k;
        let inputs = config.inputs_per_module();
        let mut alloc = Allocator::new(config.reuse == ReusePolicy::Reuse);
        let mut gates: Vec<Gate> = Vec::new();
        let mut modules: Vec<ModuleInfo> = Vec::new();
        let mut rounds: Vec<RoundInfo> = Vec::new();
        let mut permutation_edges: Vec<PermutationEdge> = Vec::new();

        // Outputs of the previous round, per module (in index_in_round order).
        let mut prev_round_outputs: Vec<Vec<QubitId>> = Vec::new();
        let mut prev_round_module_ids: Vec<usize> = Vec::new();

        for round in 0..config.levels {
            let num_modules = config.modules_in_round(round);
            let round_gate_start = gates.len();
            let mut round_module_ids = Vec::with_capacity(num_modules);
            let mut this_round_outputs: Vec<Vec<QubitId>> = Vec::with_capacity(num_modules);
            // Qubits that become reusable once this round completes: its raw
            // inputs (consumed by injection) and its ancillas (measured).
            let mut released_after_round: Vec<QubitId> = Vec::new();

            for j in 0..num_modules {
                let module_id = modules.len();
                // Determine the raw inputs for this module.
                let raw_inputs: Vec<QubitId> = if round == 0 {
                    alloc.alloc(QubitRole::Raw, inputs)
                } else {
                    // Destination module j belongs to group g = j / k at
                    // position p = j % k. Slot i comes from the i-th source
                    // module of group g, output port p.
                    let g = j / k;
                    let p = j % k;
                    let mut slots = Vec::with_capacity(inputs);
                    for i in 0..inputs {
                        let source_index = g * inputs + i;
                        let source_qubit = prev_round_outputs[source_index][p];
                        let source_module = prev_round_module_ids[source_index];
                        permutation_edges.push(PermutationEdge {
                            source_round: round - 1,
                            source_module,
                            source_qubit,
                            dest_module: module_id,
                            dest_slot: i,
                        });
                        slots.push(source_qubit);
                    }
                    slots
                };
                let ancillas = alloc.alloc(QubitRole::Ancilla, config.ancillas_per_module());
                let outputs = alloc.alloc(QubitRole::Output, k);

                let gate_start = gates.len();
                emit_module_gates(&raw_inputs, &ancillas, &outputs, &mut gates);
                let gate_end = gates.len();
                debug_assert_eq!(gate_end - gate_start, module_gate_count(k));

                released_after_round.extend_from_slice(&raw_inputs);
                released_after_round.extend_from_slice(&ancillas);

                this_round_outputs.push(outputs.clone());
                round_module_ids.push(module_id);
                modules.push(ModuleInfo {
                    id: module_id,
                    round,
                    index_in_round: j,
                    raw_inputs,
                    ancillas,
                    outputs,
                    gate_range: gate_start..gate_end,
                });
            }

            // Insert a barrier over every qubit allocated so far, separating
            // this round from the next (Section V-A). No barrier after the
            // final round.
            let mut barrier_gate = None;
            if config.barriers && round + 1 < config.levels {
                let all: Vec<QubitId> = (0..alloc.num_qubits() as u32).map(QubitId::new).collect();
                barrier_gate = Some(gates.len());
                gates.push(Gate::Barrier(all));
            }

            rounds.push(RoundInfo {
                index: round,
                modules: round_module_ids,
                gate_range: round_gate_start..gates.len(),
                barrier_gate,
            });

            // Make this round's consumed qubits available for reuse by the
            // next round.
            alloc.release(&released_after_round);
            prev_round_outputs = this_round_outputs;
            prev_round_module_ids = rounds[round].modules.clone();
        }

        let mut circuit = Circuit::new(
            format!(
                "block-code-k{}-l{}-{}",
                k,
                config.levels,
                config.reuse.short_name()
            ),
            alloc.roles,
        );
        for g in gates {
            circuit.push(g)?;
        }

        Ok(Factory {
            config: *config,
            circuit,
            modules,
            rounds,
            permutation_edges,
        })
    }

    /// The configuration this factory was built from.
    pub fn config(&self) -> &FactoryConfig {
        &self.config
    }

    /// The flat gate-level circuit of the whole factory.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// All modules of the factory, ordered by round then by index within the
    /// round.
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// All rounds of the factory in execution order.
    pub fn rounds(&self) -> &[RoundInfo] {
        &self.rounds
    }

    /// The inter-round permutation edges (empty for single-level factories).
    pub fn permutation_edges(&self) -> &[PermutationEdge] {
        &self.permutation_edges
    }

    /// Total output capacity `k^levels`.
    pub fn capacity(&self) -> usize {
        self.config.capacity()
    }

    /// Number of logical qubits allocated by the factory. This is the circuit
    /// area in logical qubits before any mapping slack is added.
    pub fn num_qubits(&self) -> usize {
        self.circuit.num_qubits() as usize
    }

    /// The output qubits of the final round, i.e. the distilled magic states
    /// delivered by the factory.
    pub fn final_outputs(&self) -> Vec<QubitId> {
        let last = self.rounds.last().expect("factory has at least one round");
        last.modules
            .iter()
            .flat_map(|m| self.modules[*m].outputs.iter().copied())
            .collect()
    }

    /// Returns the modules belonging to a round.
    pub fn round_modules(&self, round: usize) -> Vec<&ModuleInfo> {
        self.rounds[round]
            .modules
            .iter()
            .map(|m| &self.modules[*m])
            .collect()
    }

    /// Builds a circuit containing only the gates of the given round, over the
    /// same qubit space as the full factory circuit. Used by the
    /// hierarchical-stitching mapper to optimise rounds in isolation.
    pub fn round_circuit(&self, round: usize) -> Circuit {
        let info = &self.rounds[round];
        let mut c = Circuit::new(
            format!("{}-round{}", self.circuit.name(), round),
            self.circuit.roles().to_vec(),
        );
        for idx in info.gate_range.clone() {
            let gate = self.circuit.gates()[idx].clone();
            c.push(gate)
                .expect("round gates are valid in the factory qubit space");
        }
        c
    }

    /// Builds the circuit fragment that realises the permutation step between
    /// `round` and `round + 1`: all gates of round `round + 1` that touch an
    /// output qubit of round `round` (the injection gates that consume the
    /// permuted states). Used for the Fig. 9c/9d permutation-latency study.
    pub fn permutation_circuit(&self, round: usize) -> Circuit {
        let mut is_output_of_round = vec![false; self.circuit.num_qubits() as usize];
        for m in self.round_modules(round) {
            for q in &m.outputs {
                is_output_of_round[q.index()] = true;
            }
        }
        let next = &self.rounds[round + 1];
        let mut c = Circuit::new(
            format!("{}-perm{}", self.circuit.name(), round),
            self.circuit.roles().to_vec(),
        );
        for idx in next.gate_range.clone() {
            let gate = &self.circuit.gates()[idx];
            if gate.is_barrier() {
                continue;
            }
            if gate.qubits().iter().any(|q| is_output_of_round[q.index()]) {
                c.push(gate.clone())
                    .expect("permutation gates are valid in the factory qubit space");
            }
        }
        c
    }

    /// Returns the module that owns `qubit` as one of its *local* qubits
    /// (round-0 raw inputs, ancillas or outputs), if any.
    pub fn owning_module(&self, qubit: QubitId) -> Option<usize> {
        self.modules
            .iter()
            .find(|m| m.local_qubits().contains(&qubit))
            .map(|m| m.id)
    }

    /// Swaps two output ports of the same module: every reference to the two
    /// qubits in *later-round* gates (and in the permutation metadata) is
    /// exchanged. This implements the "port reassignment" degree of freedom of
    /// Section VII-B2: outputs of a module are interchangeable as far as the
    /// next round is concerned, so the mapper may pick whichever port
    /// minimises permutation congestion.
    ///
    /// # Errors
    ///
    /// Returns [`DistillError::InvalidPortSwap`] if the two qubits are not
    /// distinct output qubits of the same module.
    pub fn swap_output_ports(&mut self, a: QubitId, b: QubitId) -> Result<()> {
        if a == b {
            return Err(DistillError::InvalidPortSwap);
        }
        let module = self
            .modules
            .iter()
            .find(|m| m.outputs.contains(&a) && m.outputs.contains(&b))
            .ok_or(DistillError::InvalidPortSwap)?;
        let source_round = module.round;
        if source_round + 1 >= self.rounds.len() {
            // Final-round outputs have no downstream consumers; the swap is a
            // no-op but not an error.
            return Ok(());
        }
        let later_start = self.rounds[source_round + 1].gate_range.start;

        let relabel = |q: QubitId| -> QubitId {
            if q == a {
                b
            } else if q == b {
                a
            } else {
                q
            }
        };

        // Rebuild the circuit with the relabelled later-round gates.
        let mut new_circuit = Circuit::new(
            self.circuit.name().to_string(),
            self.circuit.roles().to_vec(),
        );
        for (idx, gate) in self.circuit.gates().iter().enumerate() {
            let gate = if idx >= later_start {
                remap_gate(gate, &relabel)
            } else {
                gate.clone()
            };
            new_circuit.push(gate)?;
        }
        self.circuit = new_circuit;

        // Update permutation metadata and downstream module raw-input slots.
        for edge in &mut self.permutation_edges {
            if edge.source_round == source_round {
                edge.source_qubit = relabel(edge.source_qubit);
            }
        }
        for m in &mut self.modules {
            if m.round == source_round + 1 {
                for q in &mut m.raw_inputs {
                    *q = relabel(*q);
                }
            }
        }
        Ok(())
    }

    /// Applies a mapper-produced [`PortAssignment`] to a *copy* of this
    /// factory, returning the rewired factory and leaving `self` untouched.
    /// This is how the evaluation layer realises the port-reassignment
    /// decisions of the hierarchical-stitching mapper while the built factory
    /// stays immutable and shareable across threads.
    ///
    /// # Errors
    ///
    /// Returns [`DistillError::InvalidPortSwap`] if any entry does not name
    /// two distinct output qubits of one module (after earlier swaps applied).
    pub fn apply_port_assignment(&self, assignment: &PortAssignment) -> Result<Factory> {
        let mut rewired = self.clone();
        rewired.apply_port_assignment_in_place(assignment)?;
        Ok(rewired)
    }

    /// Applies a [`PortAssignment`] to this factory in place, swap by swap in
    /// recorded order (identical semantics to the historical mutating
    /// rewiring).
    ///
    /// # Errors
    ///
    /// Returns [`DistillError::InvalidPortSwap`] under the same conditions as
    /// [`Factory::swap_output_ports`].
    pub fn apply_port_assignment_in_place(&mut self, assignment: &PortAssignment) -> Result<()> {
        for &(a, b) in assignment.swaps() {
            self.swap_output_ports(a, b)?;
        }
        Ok(())
    }
}

/// Applies a qubit relabelling to a single gate.
fn remap_gate(gate: &Gate, relabel: &impl Fn(QubitId) -> QubitId) -> Gate {
    match gate {
        Gate::H(q) => Gate::H(relabel(*q)),
        Gate::X(q) => Gate::X(relabel(*q)),
        Gate::Z(q) => Gate::Z(relabel(*q)),
        Gate::S(q) => Gate::S(relabel(*q)),
        Gate::Sdg(q) => Gate::Sdg(relabel(*q)),
        Gate::T(q) => Gate::T(relabel(*q)),
        Gate::Tdg(q) => Gate::Tdg(relabel(*q)),
        Gate::Cnot { control, target } => Gate::Cnot {
            control: relabel(*control),
            target: relabel(*target),
        },
        Gate::Cxx { control, targets } => Gate::Cxx {
            control: relabel(*control),
            targets: targets.iter().map(|t| relabel(*t)).collect(),
        },
        Gate::InjectT { raw, target } => Gate::InjectT {
            raw: relabel(*raw),
            target: relabel(*target),
        },
        Gate::InjectTdg { raw, target } => Gate::InjectTdg {
            raw: relabel(*raw),
            target: relabel(*target),
        },
        Gate::MeasX(q) => Gate::MeasX(relabel(*q)),
        Gate::MeasZ(q) => Gate::MeasZ(relabel(*q)),
        Gate::Init(q) => Gate::Init(relabel(*q)),
        Gate::Barrier(qs) => Gate::Barrier(qs.iter().map(|q| relabel(*q)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn single_level_factory_matches_single_module() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        assert_eq!(f.capacity(), 8);
        assert_eq!(f.modules().len(), 1);
        assert_eq!(f.rounds().len(), 1);
        assert_eq!(f.num_qubits(), 53);
        assert!(f.permutation_edges().is_empty());
        assert_eq!(f.final_outputs().len(), 8);
    }

    #[test]
    fn two_level_structure_counts() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        assert_eq!(f.rounds()[0].num_modules(), 14);
        assert_eq!(f.rounds()[1].num_modules(), 2);
        assert_eq!(f.modules().len(), 16);
        assert_eq!(f.capacity(), 4);
        assert_eq!(f.final_outputs().len(), 4);
        // 2 destination modules x 14 slots each
        assert_eq!(f.permutation_edges().len(), 28);
    }

    #[test]
    fn permutation_respects_distinct_source_constraint() {
        // Each destination module must receive at most one state from any
        // source module (Section II-G).
        let f = Factory::build(&FactoryConfig::two_level(4)).unwrap();
        let mut per_dest: HashMap<usize, HashSet<usize>> = HashMap::new();
        for e in f.permutation_edges() {
            let sources = per_dest.entry(e.dest_module).or_default();
            assert!(
                sources.insert(e.source_module),
                "destination {} received two states from source {}",
                e.dest_module,
                e.source_module
            );
        }
        // Every destination module receives exactly 3k+8 states.
        for sources in per_dest.values() {
            assert_eq!(sources.len(), f.config().inputs_per_module());
        }
    }

    #[test]
    fn every_round_output_is_consumed_exactly_once() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let mut consumed: HashMap<QubitId, usize> = HashMap::new();
        for e in f.permutation_edges() {
            *consumed.entry(e.source_qubit).or_insert(0) += 1;
        }
        for m in f.round_modules(0) {
            for q in &m.outputs {
                assert_eq!(
                    consumed.get(q),
                    Some(&1),
                    "output {q} must be consumed once"
                );
            }
        }
    }

    #[test]
    fn reuse_reduces_qubit_count() {
        let reuse =
            Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse)).unwrap();
        let no_reuse =
            Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse)).unwrap();
        assert!(reuse.num_qubits() < no_reuse.num_qubits());
        // No-reuse allocates the full worst case.
        let cfg = FactoryConfig::two_level(2);
        let expected_no_reuse = cfg.modules_in_round(0) * cfg.qubits_per_module()
            + cfg.modules_in_round(1) * (cfg.ancillas_per_module() + cfg.k);
        assert_eq!(no_reuse.num_qubits(), expected_no_reuse);
    }

    #[test]
    fn reuse_never_reuses_live_outputs() {
        // Outputs of round 0 feed round 1, so they must not be handed out as
        // fresh ancillas for round 1.
        let f =
            Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse)).unwrap();
        let round0_outputs: HashSet<QubitId> = f
            .round_modules(0)
            .iter()
            .flat_map(|m| m.outputs.iter().copied())
            .collect();
        for m in f.round_modules(1) {
            for q in m.ancillas.iter().chain(m.outputs.iter()) {
                assert!(
                    !round0_outputs.contains(q),
                    "live output {q} was reused as a local qubit of round 1"
                );
            }
        }
    }

    #[test]
    fn barriers_present_between_rounds_only_when_requested() {
        let with = Factory::build(&FactoryConfig::two_level(2).with_barriers(true)).unwrap();
        assert!(with.rounds()[0].barrier_gate.is_some());
        assert!(with.rounds()[1].barrier_gate.is_none());

        let without = Factory::build(&FactoryConfig::two_level(2).with_barriers(false)).unwrap();
        assert!(without.rounds()[0].barrier_gate.is_none());
        assert!(!without.circuit().gates().iter().any(|g| g.is_barrier()));
    }

    #[test]
    fn round_circuit_extracts_exactly_the_round_gates() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let r0 = f.round_circuit(0);
        let r1 = f.round_circuit(1);
        assert_eq!(r0.num_gates() + r1.num_gates(), f.circuit().num_gates());
        assert_eq!(r0.num_qubits(), f.circuit().num_qubits());
    }

    #[test]
    fn permutation_circuit_only_touches_round_outputs() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let perm = f.permutation_circuit(0);
        assert!(!perm.is_empty());
        let round0_outputs: HashSet<QubitId> = f
            .round_modules(0)
            .iter()
            .flat_map(|m| m.outputs.iter().copied())
            .collect();
        for g in perm.gates() {
            assert!(g.qubits().iter().any(|q| round0_outputs.contains(q)));
        }
    }

    #[test]
    fn gate_ranges_partition_the_circuit() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let mut covered = vec![0usize; f.circuit().num_gates()];
        for m in f.modules() {
            for i in m.gate_range.clone() {
                covered[i] += 1;
            }
        }
        for r in f.rounds() {
            if let Some(b) = r.barrier_gate {
                covered[b] += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "module/barrier gate ranges must partition the circuit"
        );
    }

    #[test]
    fn owning_module_finds_local_qubits() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let m1 = &f.modules()[1];
        assert_eq!(f.owning_module(m1.ancillas[0]), Some(1));
        assert_eq!(f.owning_module(m1.outputs[0]), Some(1));
    }

    #[test]
    fn swap_output_ports_rewires_downstream_consumers() {
        let mut f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let m0 = f.modules()[0].clone();
        let (a, b) = (m0.outputs[0], m0.outputs[1]);

        // Record the downstream consumers (dest modules) before the swap.
        let dest_of = |f: &Factory, q: QubitId| -> usize {
            f.permutation_edges()
                .iter()
                .find(|e| e.source_qubit == q)
                .map(|e| e.dest_module)
                .unwrap()
        };
        let dest_a_before = dest_of(&f, a);
        let dest_b_before = dest_of(&f, b);
        assert_ne!(dest_a_before, dest_b_before);

        f.swap_output_ports(a, b).unwrap();

        // After the swap the destinations are exchanged.
        assert_eq!(dest_of(&f, a), dest_b_before);
        assert_eq!(dest_of(&f, b), dest_a_before);

        // Round-0 gates are untouched: a and b still carry their original
        // in-module gates.
        let r0 = f.round_circuit(0);
        assert!(r0.gates().iter().any(|g| g.qubits().contains(&a)));
    }

    #[test]
    fn swap_output_ports_rejects_unrelated_qubits() {
        let mut f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let a = f.modules()[0].outputs[0];
        let b = f.modules()[1].outputs[0];
        assert_eq!(
            f.swap_output_ports(a, b).unwrap_err(),
            DistillError::InvalidPortSwap
        );
        assert_eq!(
            f.swap_output_ports(a, a).unwrap_err(),
            DistillError::InvalidPortSwap
        );
    }

    #[test]
    fn apply_port_assignment_matches_sequential_swaps() {
        let base = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let m0 = base.modules()[0].clone();
        let m1 = base.modules()[1].clone();
        let mut pa = PortAssignment::new();
        pa.push_swap(m0.outputs[0], m0.outputs[1]);
        pa.push_swap(m1.outputs[0], m1.outputs[1]);

        let rewired = base.apply_port_assignment(&pa).unwrap();

        let mut manual = base.clone();
        manual
            .swap_output_ports(m0.outputs[0], m0.outputs[1])
            .unwrap();
        manual
            .swap_output_ports(m1.outputs[0], m1.outputs[1])
            .unwrap();

        assert_eq!(rewired, manual);
        // The source factory is untouched.
        assert_eq!(base, Factory::build(&FactoryConfig::two_level(2)).unwrap());
        // An empty assignment is the identity.
        assert_eq!(
            base.apply_port_assignment(&PortAssignment::new()).unwrap(),
            base
        );
    }

    #[test]
    fn apply_port_assignment_rejects_invalid_swaps() {
        let base = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let mut pa = PortAssignment::new();
        pa.push_swap(base.modules()[0].outputs[0], base.modules()[1].outputs[0]);
        assert_eq!(
            base.apply_port_assignment(&pa).unwrap_err(),
            DistillError::InvalidPortSwap
        );
    }

    #[test]
    fn rejects_oversized_configurations() {
        let err = Factory::build(&FactoryConfig::new(20, 4)).unwrap_err();
        assert!(matches!(err, DistillError::TooLarge { .. }));
    }

    #[test]
    fn three_level_factory_builds() {
        let f = Factory::build(&FactoryConfig::new(2, 3)).unwrap();
        assert_eq!(f.capacity(), 8);
        assert_eq!(f.rounds().len(), 3);
        assert_eq!(f.rounds()[0].num_modules(), 14 * 14);
        assert_eq!(f.rounds()[1].num_modules(), 14 * 2);
        assert_eq!(f.rounds()[2].num_modules(), 4);
        // Permutation edges: every non-final-round output is consumed.
        let non_final_outputs: usize = (0..2)
            .map(|r| f.round_modules(r).len() * f.config().k)
            .sum();
        assert_eq!(f.permutation_edges().len(), non_final_outputs);
    }
}
