//! Output-port assignments: the mapper-chosen rebinding of module output
//! ports as an explicit, applicable artifact.
//!
//! The outputs of a Bravyi-Haah module are interchangeable as far as the next
//! round is concerned (Section VII-B2 of the paper), so a mapper may re-bind
//! which output port feeds which downstream module to shorten the inter-round
//! permutation. Historically the hierarchical-stitching mapper rewired the
//! factory circuit *in place*, which forced `&mut Factory` through the whole
//! mapping API and made a built factory impossible to share across threads.
//!
//! A [`PortAssignment`] decouples the decision from the mutation: mappers
//! record the swaps they want, layouts carry the artifact, and the evaluation
//! layer applies it to a private copy via
//! [`Factory::apply_port_assignment`](crate::Factory::apply_port_assignment) —
//! the shared factory stays immutable.

use serde::{Deserialize, Serialize};

use msfu_circuit::QubitId;

/// An ordered sequence of output-port swaps to apply to a factory.
///
/// Order matters: each entry names two output qubits of one module whose
/// downstream bindings are exchanged, and later swaps see the effect of
/// earlier ones (exactly as the historical in-place rewiring did).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortAssignment {
    swaps: Vec<(QubitId, QubitId)>,
}

impl PortAssignment {
    /// Creates an empty assignment (no rewiring).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a swap of two output ports of the same module.
    pub fn push_swap(&mut self, a: QubitId, b: QubitId) {
        self.swaps.push((a, b));
    }

    /// The swaps in application order.
    pub fn swaps(&self) -> &[(QubitId, QubitId)] {
        &self.swaps
    }

    /// Number of swaps.
    pub fn len(&self) -> usize {
        self.swaps.len()
    }

    /// Returns `true` when the assignment rewires nothing.
    pub fn is_empty(&self) -> bool {
        self.swaps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_swaps_in_order() {
        let mut pa = PortAssignment::new();
        assert!(pa.is_empty());
        pa.push_swap(QubitId::new(1), QubitId::new(2));
        pa.push_swap(QubitId::new(3), QubitId::new(4));
        assert_eq!(pa.len(), 2);
        assert_eq!(pa.swaps()[0], (QubitId::new(1), QubitId::new(2)));
        assert_eq!(pa.swaps()[1], (QubitId::new(3), QubitId::new(4)));
    }
}
