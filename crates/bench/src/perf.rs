//! Performance stamping for the `BENCH_<name>.json` reports.
//!
//! Every `--json` run records, next to the sweep results themselves, how fast
//! they were produced: total wall time, simulated cycles per second, a
//! dense-contention microbenchmark that times the event-driven [`SimEngine`]
//! against the allocating [`msfu_sim::reference`] engine on the sweep's most
//! congested point, a mapping-phase microbenchmark that times the delta-cost
//! force-directed refinement against the full-recompute
//! [`msfu_layout::reference`] pipeline on the sweep's largest FD point, and
//! the evaluation-cache hit/miss counters of the run. The stamp is what
//! `bench-diff` gates wall-time regressions on; the recorded speedups
//! document where each optimisation pays off.

use std::time::{Duration, Instant};

use serde::Serialize;

use msfu_core::{effective_factory, BatchStats, CacheStats, SweepResults, SweepSpec};
use msfu_distill::Factory;
use msfu_graph::InteractionGraph;
use msfu_layout::{
    force_directed_config_from_params, reference as layout_reference, FactoryMapper,
    ForceDirectedMapper, LinearMapper,
};
use msfu_sim::{BatchEngine, BatchLane, SimEngine};

/// How often the dense-contention point is re-simulated per engine. The
/// simulators are deterministic, so repeats only smooth wall-clock noise.
const DENSE_REPEATS: u32 = 5;

/// How often the mapping-phase point is re-refined per implementation.
const MAPPING_REPEATS: u32 = 3;

/// Minimum batched wall time the lane microbenchmark calibrates itself to,
/// seconds. Keeps `perf.batch.batched_seconds` above bench-diff's 0.1s
/// gating floor so the speedup is actually gated, and far enough from timer
/// granularity to be meaningful. The calibration run is colder than the
/// steady-state repeats, so the target carries a generous margin over the
/// floor.
const BATCH_MIN_SECONDS: f64 = 0.3;

/// Upper bound on the calibrated repeat count (a pathological tiny point
/// would otherwise loop for ever).
const BATCH_MAX_REPEATS: u32 = 20_000;

/// Wall-time and throughput metadata stamped into a JSON report.
#[derive(Debug, Clone, Serialize)]
pub struct PerfStamp {
    /// End-to-end sweep wall time in seconds (mapping + simulation).
    pub wall_seconds: f64,
    /// Whether the sweep ran on all cores or serially.
    pub parallel: bool,
    /// Number of sweep points evaluated.
    pub points: usize,
    /// Total simulated cycles across all rows (sum of realised latencies).
    pub cycles_simulated: u64,
    /// `cycles_simulated / wall_seconds`.
    pub cycles_per_second: f64,
    /// Event-driven vs reference engine timing on the most congested point.
    pub dense: Option<DenseContentionPerf>,
    /// Delta-cost vs full-recompute refinement timing on the largest
    /// force-directed point (absent when the sweep has no FD point).
    pub mapping: Option<MappingPhasePerf>,
    /// Evaluation-cache hit/miss counters of the run (absent when the caller
    /// did not sample them).
    pub cache: Option<CacheStats>,
    /// Lane-batching occupancy of the run plus the batched-vs-sequential
    /// microbenchmark (absent when batching was off or the caller did not
    /// sample the counters).
    pub batch: Option<BatchPerf>,
}

/// Lane-batching stamp: the sweep's occupancy counters plus a
/// batched-vs-sequential timing of the sweep's most congested
/// lane-compatible point — K identical lanes through one [`BatchEngine`]
/// against K back-to-back runs of a reused solo [`SimEngine`]. Lane results
/// are byte-identical either way (gated by `tests/batch_equivalence.rs`);
/// the ratio records the shared-event-wheel speedup that `bench-diff` gates.
#[derive(Debug, Clone, Serialize)]
pub struct BatchPerf {
    /// The lane width the sweep batched at.
    pub lane_capacity: usize,
    /// Batches the sweep dispatched.
    pub batches: u64,
    /// Mean fraction of lanes occupied per batch.
    pub occupancy: f64,
    /// Points that occupied a batch lane.
    pub points_batched: u64,
    /// Points simulated solo (lane-incompatible).
    pub points_solo: u64,
    /// Points answered by the evaluation cache without occupying a lane.
    pub points_from_cache: u64,
    /// Row label of the microbenchmarked point.
    pub label: String,
    /// Strategy short name of the microbenchmarked point.
    pub strategy: String,
    /// Total factory capacity of the microbenchmarked point.
    pub capacity: usize,
    /// Lanes per batched run of the microbenchmark (= `lane_capacity`).
    pub lanes: usize,
    /// Calibrated repetitions per implementation (identical for both, so
    /// the ratio is repeat-free).
    pub repeats: u32,
    /// Total batched wall time across the repeats, seconds.
    pub batched_seconds: f64,
    /// Total sequential wall time across the repeats, seconds.
    pub sequential_seconds: f64,
    /// `sequential_seconds / batched_seconds`.
    pub speedup_vs_sequential: f64,
}

/// Timing of the sweep's heaviest force-directed mapping under both
/// refinement implementations: the production delta-cost path
/// ([`ForceDirectedMapper::refine`]) and the preserved full-recompute
/// pipeline ([`msfu_layout::reference::refine`]). Both produce byte-identical
/// mappings (asserted by `tests/refine_equivalence.rs`); the ratio records
/// the mapping-phase speedup that `bench-diff` gates at a coarse wall
/// tolerance.
#[derive(Debug, Clone, Serialize)]
pub struct MappingPhasePerf {
    /// Row label of the measured point.
    pub label: String,
    /// Strategy short name of the measured point.
    pub strategy: String,
    /// Total factory capacity of the measured point.
    pub capacity: usize,
    /// Logical qubits placed (graph vertices).
    pub qubits: usize,
    /// Refinement repetitions per implementation.
    pub repeats: u32,
    /// Total delta-cost refinement wall time across the repeats, seconds.
    pub refine_seconds: f64,
    /// Total full-recompute refinement wall time across the repeats, seconds.
    pub reference_seconds: f64,
    /// `reference_seconds / refine_seconds`.
    pub speedup: f64,
}

/// Timing of the sweep's dense-contention point under both simulator
/// implementations ([`SimEngine`] vs [`msfu_sim::reference`]).
#[derive(Debug, Clone, Serialize)]
pub struct DenseContentionPerf {
    /// Row label of the measured point.
    pub label: String,
    /// Strategy short name of the measured point.
    pub strategy: String,
    /// Total factory capacity of the measured point.
    pub capacity: usize,
    /// Routing conflicts of the point (the congestion that selected it).
    pub routing_conflicts: u64,
    /// Simulation repetitions per engine.
    pub repeats: u32,
    /// Total event-driven engine wall time across the repeats, seconds.
    pub event_driven_seconds: f64,
    /// Total reference engine wall time across the repeats, seconds.
    pub reference_seconds: f64,
    /// `reference_seconds / event_driven_seconds`.
    pub speedup: f64,
}

/// Assembles the perf stamp for an executed sweep, including the
/// dense-contention engine comparison, the mapping-phase refinement
/// comparison and the run's evaluation-cache counters.
pub fn stamp(
    spec: &SweepSpec,
    results: &SweepResults,
    wall: Duration,
    parallel: bool,
    cache: Option<CacheStats>,
    batch: Option<BatchStats>,
) -> PerfStamp {
    let wall_seconds = wall.as_secs_f64();
    let cycles_simulated: u64 = results
        .rows
        .iter()
        .map(|r| r.evaluation.latency_cycles)
        .sum();
    PerfStamp {
        wall_seconds,
        parallel,
        points: results.rows.len(),
        cycles_simulated,
        cycles_per_second: if wall_seconds > 0.0 {
            cycles_simulated as f64 / wall_seconds
        } else {
            0.0
        },
        dense: dense_contention(spec, results),
        mapping: mapping_phase(spec, results),
        cache,
        batch: batch.and_then(|stats| lane_batching(spec, results, &stats)),
    }
}

/// Re-simulates the sweep's most congested lane-compatible point as K
/// identical lanes through one [`BatchEngine`] and as K back-to-back solo
/// runs of a reused [`SimEngine`], with the repeat count calibrated so the
/// batched side stays above bench-diff's wall gating floor.
fn lane_batching(
    spec: &SweepSpec,
    results: &SweepResults,
    stats: &BatchStats,
) -> Option<BatchPerf> {
    let k = stats.lane_capacity;
    if k < 2 {
        return None;
    }
    // Most congested point whose layout is lane-compatible (no port
    // rewiring), ordered exactly like the dense-contention selection.
    let mut rows: Vec<(usize, &msfu_core::SweepRow)> = results.rows.iter().enumerate().collect();
    rows.sort_by_key(|(i, r)| (std::cmp::Reverse(r.evaluation.routing_conflicts), *i));
    let (row, factory, layout) = rows.iter().find_map(|&(i, row)| {
        let point = spec.points.get(i)?;
        let factory = Factory::build(&point.factory).ok()?;
        let layout = point.strategy.map(&factory).ok()?;
        (!layout.requires_port_rewiring()).then_some((row, factory, layout))
    })?;
    let circuit = factory.circuit();
    let lanes: Vec<BatchLane<'_>> = (0..k).map(|_| BatchLane::new(&layout)).collect();
    let mut batch_engine = BatchEngine::new(spec.eval.sim);
    let mut engine = SimEngine::new(spec.eval.sim);

    // Warm up untimed (the first run pays one-off arena growth), then
    // calibrate against a warm run and choose the repeat count that lifts
    // total batched wall time above the gating floor.
    batch_engine
        .run(circuit, &lanes)
        .expect("the sweep already simulated this point");
    let t = Instant::now();
    batch_engine
        .run(circuit, &lanes)
        .expect("the sweep already simulated this point");
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let repeats = ((BATCH_MIN_SECONDS / once).ceil() as u32).clamp(1, BATCH_MAX_REPEATS);

    let t0 = Instant::now();
    for _ in 0..repeats {
        batch_engine
            .run(circuit, &lanes)
            .expect("the sweep already simulated this point");
    }
    let batched_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for _ in 0..repeats {
        for _ in 0..k {
            engine
                .run(circuit, &layout)
                .expect("the sweep already simulated this point");
        }
    }
    let sequential_seconds = t1.elapsed().as_secs_f64();

    Some(BatchPerf {
        lane_capacity: k,
        batches: stats.batches,
        occupancy: stats.occupancy(),
        points_batched: stats.points_batched,
        points_solo: stats.points_solo,
        points_from_cache: stats.points_from_cache,
        label: row.label.clone(),
        strategy: row.evaluation.strategy.clone(),
        capacity: row.evaluation.factory.capacity(),
        lanes: k,
        repeats,
        batched_seconds,
        sequential_seconds,
        speedup_vs_sequential: if batched_seconds > 0.0 {
            sequential_seconds / batched_seconds
        } else {
            0.0
        },
    })
}

/// Re-simulates the sweep's most braid-congested point `DENSE_REPEATS` times
/// under each engine. Rows and spec points correspond one to one, so the
/// point's factory and layout are rebuilt exactly as the sweep built them.
fn dense_contention(spec: &SweepSpec, results: &SweepResults) -> Option<DenseContentionPerf> {
    let (i, row) = results
        .rows
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.evaluation.routing_conflicts)?;
    let point = spec.points.get(i)?;
    let factory = Factory::build(&point.factory).ok()?;
    let layout = point.strategy.map(&factory).ok()?;
    let effective = effective_factory(&factory, &layout).ok()?;
    let circuit = effective.circuit();

    let mut engine = SimEngine::new(spec.eval.sim);
    let t0 = Instant::now();
    for _ in 0..DENSE_REPEATS {
        engine
            .run(circuit, &layout)
            .expect("the sweep already simulated this point");
    }
    let event_driven_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for _ in 0..DENSE_REPEATS {
        msfu_sim::reference::run(&spec.eval.sim, circuit, &layout)
            .expect("the sweep already simulated this point");
    }
    let reference_seconds = t1.elapsed().as_secs_f64();

    Some(DenseContentionPerf {
        label: row.label.clone(),
        strategy: row.evaluation.strategy.clone(),
        capacity: row.evaluation.factory.capacity(),
        routing_conflicts: row.evaluation.routing_conflicts,
        repeats: DENSE_REPEATS,
        event_driven_seconds,
        reference_seconds,
        speedup: if event_driven_seconds > 0.0 {
            reference_seconds / event_driven_seconds
        } else {
            0.0
        },
    })
}

/// Re-refines the sweep's largest force-directed point `MAPPING_REPEATS`
/// times under the delta-cost and the full-recompute implementations. The
/// point is rebuilt exactly as the sweep mapped it (linear start + FD
/// refinement with the point's parameters).
fn mapping_phase(spec: &SweepSpec, results: &SweepResults) -> Option<MappingPhasePerf> {
    let (i, row) = results
        .rows
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            spec.points
                .get(*i)
                .is_some_and(|p| p.strategy.key() == "force_directed")
        })
        .max_by_key(|(_, r)| (r.evaluation.logical_qubits, r.evaluation.factory.capacity()))?;
    let point = spec.points.get(i)?;
    let cfg = force_directed_config_from_params(point.strategy.params()).ok()?;
    let factory = Factory::build(&point.factory).ok()?;
    let graph = InteractionGraph::from_circuit(factory.circuit());
    let initial = LinearMapper::new().map_factory(&factory).ok()?.mapping;

    let mapper = ForceDirectedMapper::with_config(cfg);
    let t0 = Instant::now();
    for _ in 0..MAPPING_REPEATS {
        mapper
            .refine(&graph, &initial)
            .expect("the sweep already refined this point");
    }
    let refine_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for _ in 0..MAPPING_REPEATS {
        layout_reference::refine(&cfg, &graph, &initial)
            .expect("the sweep already refined this point");
    }
    let reference_seconds = t1.elapsed().as_secs_f64();

    Some(MappingPhasePerf {
        label: row.label.clone(),
        strategy: row.evaluation.strategy.clone(),
        capacity: row.evaluation.factory.capacity(),
        qubits: row.evaluation.logical_qubits,
        repeats: MAPPING_REPEATS,
        refine_seconds,
        reference_seconds,
        speedup: if refine_seconds > 0.0 {
            reference_seconds / refine_seconds
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness_eval_config;
    use msfu_core::Strategy;
    use msfu_distill::FactoryConfig;

    #[test]
    fn stamp_records_throughput_and_dense_point() {
        let spec = SweepSpec::new("t", harness_eval_config())
            .point("a", FactoryConfig::single_level(2), Strategy::linear())
            .point("b", FactoryConfig::single_level(4), Strategy::random(1));
        let results = spec.run().unwrap();
        let stamp = stamp(
            &spec,
            &results,
            Duration::from_millis(500),
            true,
            Some(CacheStats::default()),
            None,
        );
        assert_eq!(stamp.points, 2);
        assert!(stamp.cycles_simulated > 0);
        assert!(stamp.cycles_per_second > 0.0);
        let dense = stamp.dense.expect("dense point measured");
        assert_eq!(dense.repeats, DENSE_REPEATS);
        assert!(dense.event_driven_seconds > 0.0);
        assert!(dense.reference_seconds > 0.0);
        // The selected point is the most congested row of the sweep.
        let max_conflicts = results
            .rows
            .iter()
            .map(|r| r.evaluation.routing_conflicts)
            .max()
            .unwrap();
        assert_eq!(dense.routing_conflicts, max_conflicts);
        // No force-directed point: no mapping-phase comparison.
        assert!(stamp.mapping.is_none());
        assert_eq!(stamp.cache, Some(CacheStats::default()));
    }

    #[test]
    fn stamp_measures_the_mapping_phase_on_fd_points() {
        use msfu_layout::ForceDirectedConfig;
        let fd = Strategy::force_directed(ForceDirectedConfig {
            seed: 1,
            iterations: 6,
            repulsion_sample: 400,
            ..ForceDirectedConfig::default()
        });
        let spec = SweepSpec::new("t", harness_eval_config())
            .point("a", FactoryConfig::single_level(2), fd.clone())
            .point("b", FactoryConfig::single_level(4), fd);
        let results = spec.run().unwrap();
        let stamp = stamp(
            &spec,
            &results,
            Duration::from_millis(500),
            true,
            None,
            None,
        );
        let mapping = stamp.mapping.expect("mapping phase measured");
        // The larger of the two FD points is selected.
        assert_eq!(mapping.capacity, 4);
        assert_eq!(mapping.strategy, "FD");
        assert_eq!(mapping.repeats, MAPPING_REPEATS);
        assert!(mapping.refine_seconds > 0.0);
        assert!(mapping.reference_seconds > 0.0);
        assert!(mapping.speedup > 0.0);
        assert!(stamp.cache.is_none());
    }

    #[test]
    fn empty_sweep_has_no_dense_point() {
        let spec = SweepSpec::new("empty", harness_eval_config());
        let results = spec.run().unwrap();
        let stamp = stamp(&spec, &results, Duration::from_millis(1), false, None, None);
        assert_eq!(stamp.points, 0);
        assert!(stamp.dense.is_none());
        assert!(stamp.mapping.is_none());
        assert!(stamp.batch.is_none());
    }

    #[test]
    fn batch_stamp_times_lanes_against_sequential_runs() {
        use msfu_core::RunControl;
        let spec = SweepSpec::new("t", harness_eval_config())
            .point("a", FactoryConfig::single_level(2), Strategy::linear())
            .point("b", FactoryConfig::single_level(4), Strategy::random(1))
            .with_lanes(4);
        let outcome = spec.run_with(&RunControl::default()).unwrap();
        let stamp = stamp(
            &spec,
            &outcome.results,
            Duration::from_millis(500),
            true,
            None,
            Some(outcome.batch),
        );
        let batch = stamp.batch.expect("lane batching measured");
        assert_eq!(batch.lane_capacity, 4);
        assert_eq!(batch.lanes, 4);
        assert!(batch.repeats >= 1);
        assert!(batch.batched_seconds > 0.0);
        assert!(batch.sequential_seconds > 0.0);
        assert!(batch.speedup_vs_sequential > 0.0);
        assert_eq!(batch.occupancy, outcome.batch.occupancy());
        // Batching off (or unsampled): no stamp block.
        let off = stamp_fn_off(&spec, &outcome.results);
        assert!(off.is_none());
    }

    fn stamp_fn_off(spec: &SweepSpec, results: &SweepResults) -> Option<BatchPerf> {
        lane_batching(spec, results, &BatchStats::default())
    }
}
