//! Regenerates **Fig. 10** of the paper: latency (10a/10c), area (10b/10d)
//! and space-time volume (10e/10f) of single- and two-level factories under
//! the linear, force-directed, graph-partitioning and (for two-level)
//! hierarchical-stitching mappers. Each strategy uses its better qubit-reuse
//! policy, as in the paper (Section VIII-C1).
//!
//! The whole figure is one declarative [`SweepSpec`] (both levels, all
//! capacities, all strategies, both reuse policies) executed in parallel by
//! the sweep engine; this binary only selects and formats rows.
//!
//! Usage: `cargo run -p msfu-bench --bin fig10 --release [full] [serial] [--json]`

use msfu_bench::{
    best_reuse_row, harness_eval_config, lineup_for, reuse_variants, run_spec, HarnessArgs,
};
use msfu_core::{Evaluation, SweepIndex, SweepSpec};

/// Strategies plotted per level: Fig. 10 omits Random entirely and HS on
/// single-level factories.
fn plotted_strategies(levels: usize) -> Vec<&'static str> {
    if levels == 1 {
        vec!["Line", "FD", "GP"]
    } else {
        vec!["Line", "FD", "GP", "HS"]
    }
}

fn build_spec(args: &HarnessArgs, seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::new("fig10", harness_eval_config());
    for (label, levels, capacities) in [
        ("single", 1, args.mode.single_level_capacities()),
        ("double", 2, args.mode.two_level_capacities()),
    ] {
        let plotted = plotted_strategies(levels);
        for &capacity in &capacities {
            spec = spec.grid(label, &reuse_variants(capacity, levels), |c| {
                lineup_for(c, seed)
                    .into_iter()
                    .filter(|s| plotted.contains(&s.short_name()))
                    .collect()
            });
        }
    }
    spec
}

fn print_metric(
    title: &str,
    index: &SweepIndex<'_>,
    label: &str,
    capacities: &[usize],
    strategies: &[&str],
    metric: impl Fn(&Evaluation) -> f64,
) {
    println!("# {title}");
    print!("{:<12}", "capacity");
    for name in strategies {
        print!("{name:>16}");
    }
    println!();
    for &capacity in capacities {
        print!("{capacity:<12}");
        for name in strategies {
            match best_reuse_row(index, label, name, capacity) {
                Some(row) => print!("{:>16.0}", metric(&row.evaluation)),
                None => print!("{:>16}", "-"),
            }
        }
        println!();
    }
    println!();
}

fn main() {
    let args = HarnessArgs::from_env();
    let seed = 42;
    let spec = build_spec(&args, seed);
    let results = run_spec(&spec, &args);
    // One pass over the rows; every per-cell lookup below is O(1).
    let index = results.index();

    let single_caps = args.mode.single_level_capacities();
    let double_caps = args.mode.two_level_capacities();
    let single = plotted_strategies(1);
    let double = plotted_strategies(2);

    print_metric(
        "Fig. 10a — single-level latency (cycles)",
        &index,
        "single",
        &single_caps,
        &single,
        |e| e.latency_cycles as f64,
    );
    print_metric(
        "Fig. 10b — single-level area (qubits)",
        &index,
        "single",
        &single_caps,
        &single,
        |e| e.area as f64,
    );
    print_metric(
        "Fig. 10e — single-level quantum volume (qubits x cycles)",
        &index,
        "single",
        &single_caps,
        &single,
        |e| e.volume as f64,
    );
    print_metric(
        "Fig. 10c — two-level latency (cycles)",
        &index,
        "double",
        &double_caps,
        &double,
        |e| e.latency_cycles as f64,
    );
    print_metric(
        "Fig. 10d — two-level area (qubits)",
        &index,
        "double",
        &double_caps,
        &double,
        |e| e.area as f64,
    );
    print_metric(
        "Fig. 10f — two-level quantum volume (qubits x cycles)",
        &index,
        "double",
        &double_caps,
        &double,
        |e| e.volume as f64,
    );

    // Headline number: volume reduction from Line to HS at the largest
    // two-level capacity evaluated (5.64x in the paper at capacity 100).
    if let Some(&capacity) = double_caps.last() {
        let line = best_reuse_row(&index, "double", "Line", capacity);
        let hs = best_reuse_row(&index, "double", "HS", capacity);
        if let (Some(line), Some(hs)) = (line, hs) {
            println!(
                "# headline: capacity {} two-level volume reduction Line -> HS = {:.2}x (paper: 5.64x at capacity 100, Line(NR) -> HS)",
                capacity,
                line.evaluation.volume as f64 / hs.evaluation.volume as f64
            );
        }
    }
}
