//! Regenerates **Fig. 10** of the paper: latency (10a/10c), area (10b/10d)
//! and space-time volume (10e/10f) of single- and two-level factories under
//! the linear, force-directed, graph-partitioning and (for two-level)
//! hierarchical-stitching mappers. Each strategy uses its better qubit-reuse
//! policy, as in the paper (Section VIII-C1).
//!
//! Usage: `cargo run -p msfu-bench --bin fig10 --release [full]`

use msfu_bench::{evaluate_best_reuse, lineup_for, Mode};
use msfu_core::Evaluation;
use msfu_distill::FactoryConfig;

struct Row {
    capacity: usize,
    evals: Vec<(String, Evaluation)>,
}

fn sweep(levels: usize, capacities: &[usize], seed: u64, include_hs: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    for &capacity in capacities {
        let config = FactoryConfig::from_total_capacity(capacity, levels).expect("exact power");
        let mut evals = Vec::new();
        for strategy in lineup_for(&config, seed) {
            let name = strategy.short_name().to_string();
            if name == "Random" {
                continue; // Fig. 10 plots Linear/FD/GP(/HS); Random appears in Table I only.
            }
            if name == "HS" && !include_hs {
                continue;
            }
            let (eval, policy) =
                evaluate_best_reuse(capacity, levels, &strategy).expect("evaluation succeeds");
            eprintln!(
                "done L={levels} capacity={capacity} {name}({}) latency={} area={} volume={}",
                policy.short_name(),
                eval.latency_cycles,
                eval.area,
                eval.volume
            );
            evals.push((name, eval));
        }
        rows.push(Row { capacity, evals });
    }
    rows
}

fn print_metric(title: &str, rows: &[Row], metric: impl Fn(&Evaluation) -> f64) {
    println!("# {title}");
    if let Some(first) = rows.first() {
        print!("{:<12}", "capacity");
        for (name, _) in &first.evals {
            print!("{name:>16}");
        }
        println!();
    }
    for row in rows {
        print!("{:<12}", row.capacity);
        for (_, eval) in &row.evals {
            print!("{:>16.0}", metric(eval));
        }
        println!();
    }
    println!();
}

fn main() {
    let mode = Mode::from_args();
    let seed = 42;

    let single = sweep(1, &mode.single_level_capacities(), seed, false);
    print_metric("Fig. 10a — single-level latency (cycles)", &single, |e| {
        e.latency_cycles as f64
    });
    print_metric("Fig. 10b — single-level area (qubits)", &single, |e| {
        e.area as f64
    });
    print_metric(
        "Fig. 10e — single-level quantum volume (qubits x cycles)",
        &single,
        |e| e.volume as f64,
    );

    let double = sweep(2, &mode.two_level_capacities(), seed, true);
    print_metric("Fig. 10c — two-level latency (cycles)", &double, |e| {
        e.latency_cycles as f64
    });
    print_metric("Fig. 10d — two-level area (qubits)", &double, |e| {
        e.area as f64
    });
    print_metric(
        "Fig. 10f — two-level quantum volume (qubits x cycles)",
        &double,
        |e| e.volume as f64,
    );

    // Headline number: volume reduction from Line(NR) to HS at the largest
    // two-level capacity evaluated (5.64x in the paper at capacity 100).
    if let Some(last) = double.last() {
        let line = last.evals.iter().find(|(n, _)| n == "Line");
        let hs = last.evals.iter().find(|(n, _)| n == "HS");
        if let (Some((_, line)), Some((_, hs))) = (line, hs) {
            println!(
                "# headline: capacity {} two-level volume reduction Line -> HS = {:.2}x (paper: 5.64x at capacity 100, Line(NR) -> HS)",
                last.capacity,
                line.volume as f64 / hs.volume as f64
            );
        }
    }
}
