//! Regenerates **Fig. 6** of the paper: correlation of the three congestion
//! metrics (edge crossings, average edge Manhattan length, average edge
//! spacing) with simulated circuit latency across randomised mappings of a
//! single-level distillation circuit.
//!
//! Usage: `cargo run -p msfu-bench --bin fig6 --release [full]`

use msfu_bench::Mode;
use msfu_distill::{Factory, FactoryConfig};
use msfu_graph::{correlation, metrics, InteractionGraph};
use msfu_layout::{Layout, RandomMapper};
use msfu_sim::{SimConfig, Simulator};

fn main() {
    let mode = Mode::from_args();
    let samples = mode.fig6_samples();
    // The paper's correlation study uses a single-level factory; capacity 8 is
    // the canonical example of Fig. 4a / Fig. 5.
    let factory = Factory::build(&FactoryConfig::single_level(8)).expect("factory builds");
    let graph = InteractionGraph::from_circuit(factory.circuit());
    // Fixed-path routing with stall-on-intersection, as in the paper's
    // simulator: this is what makes edge crossings show up as latency.
    let simulator = Simulator::new(SimConfig::dimension_ordered());

    let mut crossings = Vec::with_capacity(samples);
    let mut lengths = Vec::with_capacity(samples);
    let mut spacings = Vec::with_capacity(samples);
    let mut latencies = Vec::with_capacity(samples);

    println!("# Fig. 6 reproduction: metric vs latency over {samples} randomised mappings");
    println!("# columns: seed crossings avg_edge_length avg_edge_spacing latency_cycles");
    for seed in 0..samples as u64 {
        // Expansion 1.5 leaves routing slack, as in the paper's randomised
        // mappings which are not packed solid.
        let mapping = RandomMapper::new(seed)
            .with_expansion(1.5)
            .map_qubits(factory.num_qubits())
            .expect("random mapping succeeds");
        let points = mapping.to_points();
        let m = metrics::MappingMetrics::compute(&graph, &points);
        let result = simulator
            .run(factory.circuit(), &Layout::new(mapping))
            .expect("simulation succeeds");
        println!(
            "{seed:>4} {:>8} {:>18.3} {:>18.3} {:>14}",
            m.edge_crossings, m.avg_edge_length, m.avg_edge_spacing, result.cycles
        );
        crossings.push(m.edge_crossings as f64);
        lengths.push(m.avg_edge_length);
        spacings.push(m.avg_edge_spacing);
        latencies.push(result.cycles as f64);
    }

    let r_cross = correlation::pearson(&crossings, &latencies).unwrap_or(0.0);
    let r_len = correlation::pearson(&lengths, &latencies).unwrap_or(0.0);
    let r_space = correlation::pearson(&spacings, &latencies).unwrap_or(0.0);

    println!();
    println!("# Pearson correlation with simulated latency (paper values in parentheses)");
    println!("edge crossings      r = {r_cross:+.3}   (paper: +0.831)");
    println!("avg edge length     r = {r_len:+.3}   (paper: +0.601)");
    println!("avg edge spacing    r = {r_space:+.3}   (paper: -0.625)");
}
