//! Regenerates **Fig. 6** of the paper: correlation of the three congestion
//! metrics (edge crossings, average edge Manhattan length, average edge
//! spacing) with simulated circuit latency across randomised mappings of a
//! single-level distillation circuit.
//!
//! The randomised mappings are one declarative [`SweepSpec`] — one
//! `RandomWithSlack` point per seed over a single shared factory — with the
//! congestion metrics collected by the engine alongside each simulation.
//!
//! Usage: `cargo run -p msfu-bench --bin fig6 --release [full] [serial] [--json]`

use msfu_bench::{harness_eval_config, run_spec, HarnessArgs};
use msfu_core::{Strategy, SweepSpec};
use msfu_distill::FactoryConfig;
use msfu_graph::correlation;

fn main() {
    let args = HarnessArgs::from_env();
    let samples = args.mode.fig6_samples();
    // The paper's correlation study uses a single-level factory; capacity 8 is
    // the canonical example of Fig. 4a / Fig. 5. Expansion 1.5 leaves routing
    // slack, as in the paper's randomised mappings which are not packed solid.
    let factory_config = FactoryConfig::single_level(8);
    let mut spec = SweepSpec::new("fig6", harness_eval_config()).with_mapping_metrics();
    for seed in 0..samples as u64 {
        spec = spec.point(
            "random",
            factory_config,
            Strategy::random_with_slack(seed, 1.5),
        );
    }
    let results = run_spec(&spec, &args);

    let mut crossings = Vec::with_capacity(samples);
    let mut lengths = Vec::with_capacity(samples);
    let mut spacings = Vec::with_capacity(samples);
    let mut latencies = Vec::with_capacity(samples);

    println!("# Fig. 6 reproduction: metric vs latency over {samples} randomised mappings");
    println!("# columns: seed crossings avg_edge_length avg_edge_spacing latency_cycles");
    for (seed, row) in results.rows.iter().enumerate() {
        let m = row.metrics.expect("mapping metrics were collected");
        println!(
            "{seed:>4} {:>8} {:>18.3} {:>18.3} {:>14}",
            m.edge_crossings, m.avg_edge_length, m.avg_edge_spacing, row.evaluation.latency_cycles
        );
        crossings.push(m.edge_crossings as f64);
        lengths.push(m.avg_edge_length);
        spacings.push(m.avg_edge_spacing);
        latencies.push(row.evaluation.latency_cycles as f64);
    }

    let r_cross = correlation::pearson(&crossings, &latencies).unwrap_or(0.0);
    let r_len = correlation::pearson(&lengths, &latencies).unwrap_or(0.0);
    let r_space = correlation::pearson(&spacings, &latencies).unwrap_or(0.0);

    println!();
    println!("# Pearson correlation with simulated latency (paper values in parentheses)");
    println!("edge crossings      r = {r_cross:+.3}   (paper: +0.831)");
    println!("avg edge length     r = {r_len:+.3}   (paper: +0.601)");
    println!("avg edge spacing    r = {r_space:+.3}   (paper: -0.625)");
}
