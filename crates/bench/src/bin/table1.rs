//! Regenerates **Table I** of the paper: quantum volumes (qubits × cycles)
//! required by factory designs optimised by randomisation, linear mapping
//! with and without qubit reuse, force-directed annealing, graph
//! partitioning, hierarchical stitching, and the critical-path lower bound —
//! for single-level and two-level factories across the capacity sweep.
//!
//! The whole table is one declarative [`SweepSpec`] executed in parallel by
//! the sweep engine; this binary only selects and formats rows.
//!
//! Usage: `cargo run -p msfu-bench --bin table1 --release [full] [serial] [--json]`

use msfu_bench::{
    best_reuse_row, harness_eval_config, lineup_for, reuse_variants, run_spec, HarnessArgs,
};
use msfu_core::report::Table;
use msfu_core::{SweepIndex, SweepSpec};
use msfu_distill::ReusePolicy;

/// Table I rows per level: Random is only reported for single-level
/// factories, HS only for multi-level ones.
fn tabled_strategies(levels: usize) -> Vec<&'static str> {
    if levels == 1 {
        vec!["Random", "Line", "FD", "GP"]
    } else {
        vec!["Line", "FD", "GP", "HS"]
    }
}

fn build_spec(args: &HarnessArgs, seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::new("table1", harness_eval_config());
    for (label, levels, capacities) in [
        ("L1", 1, args.mode.single_level_capacities()),
        ("L2", 2, args.mode.two_level_capacities()),
    ] {
        let tabled = tabled_strategies(levels);
        for &capacity in &capacities {
            spec = spec.grid(label, &reuse_variants(capacity, levels), |c| {
                // Random is only evaluated under reuse, as in the paper.
                let random_here = c.reuse == ReusePolicy::Reuse;
                lineup_for(c, seed)
                    .into_iter()
                    .filter(|s| {
                        tabled.contains(&s.short_name())
                            && (s.short_name() != "Random" || random_here)
                    })
                    .collect()
            });
        }
    }
    spec
}

fn level_table(index: &SweepIndex<'_>, label: &str, levels: usize, capacities: &[usize]) -> Table {
    let headers: Vec<String> = std::iter::once("Procedure".to_string())
        .chain(capacities.iter().map(|c| format!("K = {c}")))
        .collect();
    let mut table = Table::new(
        format!("Table I (level {levels}) — quantum volumes (qubits x cycles)"),
        headers,
    );

    // Picks the row evaluated under a specific reuse policy: an O(1) index
    // bucket, then a two-element filter over the reuse variants.
    let with_policy = |strategy: &str, capacity: usize, policy: ReusePolicy| {
        index
            .rows(label, strategy, capacity)
            .find(|r| r.evaluation.factory.reuse == policy)
            .map(|r| r.evaluation.volume as f64)
    };
    // Picks the better of the two reuse policies, as the paper does for the
    // optimised procedures.
    let best = |strategy: &str, capacity: usize| {
        best_reuse_row(index, label, strategy, capacity).map(|r| r.evaluation.volume as f64)
    };

    // Row labels follow the paper: Random, Line(NR), Line(R), FD, GP, HS, Critical.
    table.push_row(
        "Random",
        capacities
            .iter()
            .map(|&c| with_policy("Random", c, ReusePolicy::Reuse))
            .collect(),
    );
    table.push_row(
        "Line(NR)",
        capacities
            .iter()
            .map(|&c| with_policy("Line", c, ReusePolicy::NoReuse))
            .collect(),
    );
    table.push_row(
        "Line(R)",
        capacities
            .iter()
            .map(|&c| with_policy("Line", c, ReusePolicy::Reuse))
            .collect(),
    );
    table.push_row("FD", capacities.iter().map(|&c| best("FD", c)).collect());
    table.push_row("GP", capacities.iter().map(|&c| best("GP", c)).collect());
    table.push_row("HS", capacities.iter().map(|&c| best("HS", c)).collect());
    table.push_row(
        "Critical",
        capacities
            .iter()
            .map(|&c| {
                index
                    .rows(label, "Line", c)
                    .find(|r| r.evaluation.factory.reuse == ReusePolicy::Reuse)
                    .map(|r| r.evaluation.critical_volume as f64)
            })
            .collect(),
    );
    table
}

fn main() {
    let args = HarnessArgs::from_env();
    let seed = 42;
    let spec = build_spec(&args, seed);
    let results = run_spec(&spec, &args);
    // One pass over the rows; every per-cell lookup below is O(1).
    let index = results.index();

    let level1 = level_table(&index, "L1", 1, &args.mode.single_level_capacities());
    println!("{}", level1.to_text());

    let double_caps = args.mode.two_level_capacities();
    let level2 = level_table(&index, "L2", 2, &double_caps);
    println!("{}", level2.to_text());

    // Headline reduction: Line(NR) -> HS at the largest two-level capacity.
    if let Some(&capacity) = double_caps.last() {
        let line_nr = index
            .rows("L2", "Line", capacity)
            .find(|r| r.evaluation.factory.reuse == ReusePolicy::NoReuse);
        let hs = best_reuse_row(&index, "L2", "HS", capacity);
        if let (Some(nr), Some(hs)) = (line_nr, hs) {
            println!(
                "# headline: Line(NR) -> HS volume reduction at the largest evaluated two-level capacity = {:.2}x (paper: 5.64x at K = 100)",
                nr.evaluation.volume as f64 / hs.evaluation.volume as f64
            );
        }
    }
}
