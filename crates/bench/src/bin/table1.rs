//! Regenerates **Table I** of the paper: quantum volumes (qubits × cycles)
//! required by factory designs optimised by randomisation, linear mapping
//! with and without qubit reuse, force-directed annealing, graph
//! partitioning, hierarchical stitching, and the critical-path lower bound —
//! for single-level and two-level factories across the capacity sweep.
//!
//! Usage: `cargo run -p msfu-bench --bin table1 --release [full]`

use msfu_bench::{evaluate_best_reuse, evaluate_with_reuse, lineup_for, Mode};
use msfu_core::report::Table;
use msfu_core::Strategy;
use msfu_distill::{FactoryConfig, ReusePolicy};

fn level_table(levels: usize, capacities: &[usize], seed: u64) -> Table {
    let headers: Vec<String> = std::iter::once("Procedure".to_string())
        .chain(capacities.iter().map(|c| format!("K = {c}")))
        .collect();
    let mut table = Table::new(
        format!("Table I (level {levels}) — quantum volumes (qubits x cycles)"),
        headers,
    );

    // Row labels follow the paper: Random, Line(NR), Line(R), FD, GP, HS, Critical.
    let mut random_row = Vec::new();
    let mut line_nr_row = Vec::new();
    let mut line_r_row = Vec::new();
    let mut fd_row = Vec::new();
    let mut gp_row = Vec::new();
    let mut hs_row = Vec::new();
    let mut critical_row = Vec::new();

    for &capacity in capacities {
        let config = FactoryConfig::from_total_capacity(capacity, levels).expect("exact power");
        let lineup = lineup_for(&config, seed);

        // Random: the paper only reports it for single-level factories.
        if levels == 1 {
            let eval = evaluate_with_reuse(capacity, levels, &lineup[0], ReusePolicy::Reuse)
                .expect("random evaluation succeeds");
            random_row.push(Some(eval.volume as f64));
        } else {
            random_row.push(None);
        }

        // Linear with and without reuse.
        let line_nr = evaluate_with_reuse(capacity, levels, &Strategy::Linear, ReusePolicy::NoReuse)
            .expect("Line(NR) evaluation succeeds");
        let line_r = evaluate_with_reuse(capacity, levels, &Strategy::Linear, ReusePolicy::Reuse)
            .expect("Line(R) evaluation succeeds");
        line_nr_row.push(Some(line_nr.volume as f64));
        line_r_row.push(Some(line_r.volume as f64));

        // FD and GP use their better reuse policy, as in the paper.
        let (fd, _) = evaluate_best_reuse(capacity, levels, &lineup[2]).expect("FD evaluation");
        let (gp, _) = evaluate_best_reuse(capacity, levels, &lineup[3]).expect("GP evaluation");
        fd_row.push(Some(fd.volume as f64));
        gp_row.push(Some(gp.volume as f64));

        // HS applies to multi-level factories only.
        if levels >= 2 {
            let (hs, _) = evaluate_best_reuse(capacity, levels, &lineup[4]).expect("HS evaluation");
            hs_row.push(Some(hs.volume as f64));
        } else {
            hs_row.push(None);
        }

        critical_row.push(Some(line_r.critical_volume as f64));
        eprintln!("done level {levels} capacity {capacity}");
    }

    table.push_row("Random", random_row);
    table.push_row("Line(NR)", line_nr_row);
    table.push_row("Line(R)", line_r_row);
    table.push_row("FD", fd_row);
    table.push_row("GP", gp_row);
    table.push_row("HS", hs_row);
    table.push_row("Critical", critical_row);
    table
}

fn main() {
    let mode = Mode::from_args();
    let seed = 42;

    let level1 = level_table(1, &mode.single_level_capacities(), seed);
    println!("{}", level1.to_text());

    let level2 = level_table(2, &mode.two_level_capacities(), seed);
    println!("{}", level2.to_text());

    // Headline reduction: Line(NR) -> HS at the largest two-level capacity.
    let last = level2.headers.len() - 2;
    let line_nr = level2.rows.iter().find(|(l, _)| l == "Line(NR)").unwrap();
    let hs = level2.rows.iter().find(|(l, _)| l == "HS").unwrap();
    if let (Some(Some(nr)), Some(Some(h))) = (line_nr.1.get(last), hs.1.get(last)) {
        println!(
            "# headline: Line(NR) -> HS volume reduction at the largest evaluated two-level capacity = {:.2}x (paper: 5.64x at K = 100)",
            nr / h
        );
    }
}
