//! Compares two sets of `BENCH_<name>.json` reports and fails on
//! regressions — the gate behind the `bench-regression` CI job.
//!
//! Usage:
//!
//! ```text
//! bench-diff <BASELINE> <CURRENT> [--tolerance F] [--wall-tolerance F]
//! ```
//!
//! `BASELINE` and `CURRENT` are report files or directories containing
//! `BENCH_*.json` files (matched by file name). Two checks run per report:
//!
//! * **Latency/volume** (deterministic): every row's simulated
//!   `latency_cycles` and `volume` must not exceed the baseline by more than
//!   `--tolerance` (default 0.10). The sweeps are bit-reproducible, so any
//!   drift is a real behaviour change; the tolerance only leaves room for
//!   intentional small refinements.
//! * **Wall time** (machine-dependent): only when `--wall-tolerance` is
//!   given, the report's `perf.wall_seconds` must not exceed the baseline by
//!   more than that fraction. Use a generous value when baseline and current
//!   come from different machines.
//!
//! Exit status: 0 when clean, 1 on any regression, 2 on usage/IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serde_json::Value;

/// One metric excursion beyond tolerance.
#[derive(Debug)]
struct Regression {
    report: String,
    what: String,
    baseline: f64,
    current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {} (+{:.1}%)",
            self.report,
            self.what,
            self.baseline,
            self.current,
            (self.current / self.baseline - 1.0) * 100.0
        )
    }
}

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
    wall_tolerance: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut tolerance = 0.10;
    let mut wall_tolerance = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a value")?;
                tolerance = v.parse().map_err(|_| format!("bad tolerance `{v}`"))?;
            }
            "--wall-tolerance" => {
                let v = argv.next().ok_or("--wall-tolerance needs a value")?;
                wall_tolerance = Some(v.parse().map_err(|_| format!("bad wall tolerance `{v}`"))?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => positional.push(arg),
        }
    }
    if positional.len() != 2 {
        return Err(
            "usage: bench-diff <BASELINE> <CURRENT> [--tolerance F] [--wall-tolerance F]"
                .to_string(),
        );
    }
    Ok(Args {
        baseline: PathBuf::from(&positional[0]),
        current: PathBuf::from(&positional[1]),
        tolerance,
        wall_tolerance,
    })
}

/// Lists the `BENCH_*.json` reports under `path` (or `path` itself when it is
/// a file), as `(file name, parsed report)` pairs sorted by name.
fn load_reports(path: &Path) -> Result<Vec<(String, Value)>, String> {
    let mut files: Vec<PathBuf> = if path.is_dir() {
        std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect()
    } else if path.is_file() {
        vec![path.to_path_buf()]
    } else {
        return Err(format!("{} does not exist", path.display()));
    };
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let value = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push((name, value));
    }
    Ok(out)
}

/// The sweep rows of a report — `results.rows` for [`msfu_bench::BenchReport`]
/// documents, `rows` for legacy bare `SweepResults` documents.
fn rows(report: &Value) -> Option<&Vec<Value>> {
    report
        .get("results")
        .unwrap_or(report)
        .get("rows")
        .and_then(Value::as_array)
}

/// Compares one report pair, appending regressions.
fn compare_report(
    name: &str,
    baseline: &Value,
    current: &Value,
    args: &Args,
    regressions: &mut Vec<Regression>,
) -> Result<(), String> {
    let base_rows = rows(baseline).ok_or_else(|| format!("{name}: baseline has no rows"))?;
    let cur_rows = rows(current).ok_or_else(|| format!("{name}: current has no rows"))?;
    if base_rows.len() != cur_rows.len() {
        return Err(format!(
            "{name}: row count changed ({} -> {}); refresh the baselines if intentional",
            base_rows.len(),
            cur_rows.len()
        ));
    }
    for (i, (b, c)) in base_rows.iter().zip(cur_rows).enumerate() {
        let b_eval = b
            .get("evaluation")
            .ok_or_else(|| format!("{name} row {i}: no evaluation"))?;
        let c_eval = c
            .get("evaluation")
            .ok_or_else(|| format!("{name} row {i}: no evaluation"))?;
        let key = |v: &Value, e: &Value| {
            format!(
                "{}/{}",
                v.get("label").and_then(Value::as_str).unwrap_or("?"),
                e.get("strategy").and_then(Value::as_str).unwrap_or("?"),
            )
        };
        let (b_key, c_key) = (key(b, b_eval), key(c, c_eval));
        if b_key != c_key {
            return Err(format!(
                "{name} row {i}: points diverged ({b_key} vs {c_key}); refresh the baselines if intentional"
            ));
        }
        for metric in ["latency_cycles", "volume"] {
            let read = |e: &Value| e.get(metric).and_then(Value::as_f64);
            let (Some(base), Some(cur)) = (read(b_eval), read(c_eval)) else {
                return Err(format!("{name} row {i}: missing {metric}"));
            };
            if base > 0.0 && cur > base * (1.0 + args.tolerance) {
                regressions.push(Regression {
                    report: name.to_string(),
                    what: format!("row {i} ({b_key}) {metric}"),
                    baseline: base,
                    current: cur,
                });
            }
        }
    }
    if let Some(wall_tol) = args.wall_tolerance {
        let wall = |v: &Value| {
            v.get("perf")
                .and_then(|p| p.get("wall_seconds"))
                .and_then(Value::as_f64)
        };
        if let (Some(base), Some(cur)) = (wall(baseline), wall(current)) {
            if base > 0.0 && cur > base * (1.0 + wall_tol) {
                regressions.push(Regression {
                    report: name.to_string(),
                    what: "perf.wall_seconds".to_string(),
                    baseline: base,
                    current: cur,
                });
            }
        }
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baselines = load_reports(&args.baseline)?;
    let currents = load_reports(&args.current)?;
    if baselines.is_empty() {
        return Err(format!("no BENCH_*.json under {}", args.baseline.display()));
    }
    let mut regressions = Vec::new();
    for (name, baseline) in &baselines {
        let Some((_, current)) = currents.iter().find(|(n, _)| n == name) else {
            return Err(format!(
                "{name}: present in baseline but missing from {}",
                args.current.display()
            ));
        };
        compare_report(name, baseline, current, &args, &mut regressions)?;
        println!(
            "[bench-diff] {name}: {} rows compared",
            rows(baseline).map(Vec::len).unwrap_or(0)
        );
    }
    // A current report with no baseline is not gated at all — say so loudly
    // rather than letting a newly added benchmark go silently unchecked.
    for (name, _) in &currents {
        if !baselines.iter().any(|(n, _)| n == name) {
            eprintln!(
                "[bench-diff] WARNING: {name} has no baseline under {} and was not compared; \
                 check one in to gate it",
                args.baseline.display()
            );
        }
    }
    if regressions.is_empty() {
        println!(
            "[bench-diff] OK — {} report(s) within {:.0}% tolerance{}",
            baselines.len(),
            args.tolerance * 100.0,
            args.wall_tolerance
                .map(|w| format!(" (wall {:.0}%)", w * 100.0))
                .unwrap_or_else(|| ", wall time not gated".to_string()),
        );
        Ok(true)
    } else {
        eprintln!("[bench-diff] {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: &[u64], wall: f64) -> Value {
        let rows: Vec<Value> = latencies
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                Value::Object(vec![
                    ("label".into(), Value::Str(format!("l{i}"))),
                    (
                        "evaluation".into(),
                        Value::Object(vec![
                            ("strategy".into(), Value::Str("Line".into())),
                            ("latency_cycles".into(), Value::UInt(lat)),
                            ("volume".into(), Value::UInt(lat * 10)),
                        ]),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("name".into(), Value::Str("t".into())),
            (
                "perf".into(),
                Value::Object(vec![("wall_seconds".into(), Value::Float(wall))]),
            ),
            (
                "results".into(),
                Value::Object(vec![("rows".into(), Value::Array(rows))]),
            ),
        ])
    }

    fn args(tolerance: f64, wall_tolerance: Option<f64>) -> Args {
        Args {
            baseline: PathBuf::new(),
            current: PathBuf::new(),
            tolerance,
            wall_tolerance,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[100, 200], 1.0);
        let mut regs = Vec::new();
        compare_report("t", &r, &r, &args(0.10, Some(0.10)), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn injected_twenty_percent_latency_slowdown_fails_at_ten_percent() {
        let base = report(&[100, 200], 1.0);
        let slow = report(&[100, 240], 1.0); // +20% on row 1
        let mut regs = Vec::new();
        compare_report("t", &base, &slow, &args(0.10, None), &mut regs).unwrap();
        // latency_cycles and volume both regress on row 1.
        assert_eq!(regs.len(), 2);
        assert!(regs[0].what.contains("row 1"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = report(&[100], 1.0);
        let ok = report(&[105], 1.0); // +5%
        let mut regs = Vec::new();
        compare_report("t", &base, &ok, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn improvements_always_pass() {
        let base = report(&[100], 1.0);
        let fast = report(&[40], 0.2);
        let mut regs = Vec::new();
        compare_report("t", &base, &fast, &args(0.10, Some(0.10)), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn wall_time_gated_only_when_requested() {
        let base = report(&[100], 1.0);
        let slow_wall = report(&[100], 3.0);
        let mut regs = Vec::new();
        compare_report("t", &base, &slow_wall, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty(), "wall ungated by default");
        compare_report("t", &base, &slow_wall, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "perf.wall_seconds");
    }

    #[test]
    fn structural_drift_is_an_error_not_a_pass() {
        let base = report(&[100, 200], 1.0);
        let fewer = report(&[100], 1.0);
        let mut regs = Vec::new();
        assert!(compare_report("t", &base, &fewer, &args(0.10, None), &mut regs).is_err());
    }
}
