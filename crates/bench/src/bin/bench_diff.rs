//! Compares two sets of `BENCH_<name>.json` reports and fails on
//! regressions — the gate behind the `bench-regression` CI job.
//!
//! Usage:
//!
//! ```text
//! bench-diff <BASELINE> <CURRENT> [--tolerance F] [--wall-tolerance F]
//! ```
//!
//! `BASELINE` and `CURRENT` are report files or directories containing
//! `BENCH_*.json` files (matched by file name). Two checks run per report:
//!
//! * **Latency/volume** (deterministic): every row's simulated
//!   `latency_cycles` and `volume` must not exceed the baseline by more than
//!   `--tolerance` (default 0.10). The sweeps are bit-reproducible, so any
//!   drift is a real behaviour change; the tolerance only leaves room for
//!   intentional small refinements.
//! * **Wall time** (machine-dependent): only when `--wall-tolerance` is
//!   given, the report's `perf.wall_seconds` must not exceed the baseline by
//!   more than that fraction. Use a generous value when baseline and current
//!   come from different machines.
//!
//! Perf fields outside the gated set are observability-only and ignored —
//! e.g. `perf.cluster` (stamped by `msfu serve --workers N`) never affects a
//! comparison, which is what lets the CI `cluster-smoke` job diff sharded
//! runs against serial baselines at `--tolerance 0.0`. One structural
//! exception: a *current* report carrying a `perf.cache` stamp is validated
//! for internal consistency (`hits`/`misses` present and finite,
//! `disk_hits <= hits`) so a corrupted cache stamp fails loudly; baselines
//! predating the stamp are untouched.
//!
//! Exit status: 0 when clean, 1 on any regression, 2 on usage/IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use serde_json::Value;

/// One metric excursion beyond tolerance.
#[derive(Debug)]
struct Regression {
    report: String,
    what: String,
    baseline: f64,
    current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {} ({:+.1}%)",
            self.report,
            self.what,
            self.baseline,
            self.current,
            (self.current / self.baseline - 1.0) * 100.0
        )
    }
}

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
    wall_tolerance: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut tolerance = 0.10;
    let mut wall_tolerance = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = argv.next().ok_or("--tolerance needs a value")?;
                tolerance = v.parse().map_err(|_| format!("bad tolerance `{v}`"))?;
            }
            "--wall-tolerance" => {
                let v = argv.next().ok_or("--wall-tolerance needs a value")?;
                wall_tolerance = Some(v.parse().map_err(|_| format!("bad wall tolerance `{v}`"))?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => positional.push(arg),
        }
    }
    if positional.len() != 2 {
        return Err(
            "usage: bench-diff <BASELINE> <CURRENT> [--tolerance F] [--wall-tolerance F]"
                .to_string(),
        );
    }
    Ok(Args {
        baseline: PathBuf::from(&positional[0]),
        current: PathBuf::from(&positional[1]),
        tolerance,
        wall_tolerance,
    })
}

/// Lists the `BENCH_*.json` reports under `path` (or `path` itself when it is
/// a file), as `(file name, parsed report)` pairs sorted by name.
fn load_reports(path: &Path) -> Result<Vec<(String, Value)>, String> {
    let mut files: Vec<PathBuf> = if path.is_dir() {
        std::fs::read_dir(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect()
    } else if path.is_file() {
        vec![path.to_path_buf()]
    } else {
        return Err(format!("{} does not exist", path.display()));
    };
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let value = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        out.push((name, value));
    }
    Ok(out)
}

/// The sweep rows of a report — `results.rows` for [`msfu_bench::BenchReport`]
/// documents, `rows` for legacy bare `SweepResults` documents.
fn rows(report: &Value) -> Option<&Vec<Value>> {
    report
        .get("results")
        .unwrap_or(report)
        .get("rows")
        .and_then(Value::as_array)
}

/// The `label/strategy` key of one sweep row.
fn row_key(row: &Value) -> String {
    format!(
        "{}/{}",
        row.get("label").and_then(Value::as_str).unwrap_or("?"),
        row.get("evaluation")
            .and_then(|e| e.get("strategy"))
            .and_then(Value::as_str)
            .unwrap_or("?"),
    )
}

/// Verifies that baseline and current cover the same row keys in the same
/// order. Disjoint config sets are reported explicitly — which keys only the
/// baseline has and which only the current run has — instead of a bare count
/// mismatch, so a renamed strategy or dropped capacity is obvious at a
/// glance.
fn check_same_configs(name: &str, base_rows: &[Value], cur_rows: &[Value]) -> Result<(), String> {
    let base_keys: Vec<String> = base_rows.iter().map(row_key).collect();
    let cur_keys: Vec<String> = cur_rows.iter().map(row_key).collect();
    if base_keys == cur_keys {
        return Ok(());
    }
    // Multiset difference: keys may legitimately repeat (reuse variants,
    // seed batches), so count occurrences instead of set-subtracting.
    let count = |keys: &[String]| {
        let mut by_key: std::collections::BTreeMap<String, i64> = Default::default();
        for key in keys {
            *by_key.entry(key.clone()).or_default() += 1;
        }
        by_key
    };
    let (base_count, cur_count) = (count(&base_keys), count(&cur_keys));
    let only_in = |a: &std::collections::BTreeMap<String, i64>,
                   b: &std::collections::BTreeMap<String, i64>| {
        a.iter()
            .filter(|(k, n)| b.get(*k).copied().unwrap_or(0) < **n)
            .map(|(k, _)| k.clone())
            .collect::<Vec<_>>()
    };
    let baseline_only = only_in(&base_count, &cur_count);
    let current_only = only_in(&cur_count, &base_count);
    if baseline_only.is_empty() && current_only.is_empty() {
        return Err(format!(
            "{name}: same configs in a different row order; refresh the baselines if intentional"
        ));
    }
    Err(format!(
        "{name}: config sets are disjoint — baseline-only: [{}], current-only: [{}]; \
         refresh the baselines if intentional",
        baseline_only.join(", "),
        current_only.join(", "),
    ))
}

/// Gates one metric cell. Non-finite values and zero baselines (against
/// which a relative tolerance is undefined) are explicit errors, never a
/// silent pass. `higher_is_better` flips the gate: a latency or wall-time
/// cell regresses when it grows past `base * (1 + tol)`, a speedup cell
/// regresses when it shrinks below `base / (1 + tol)`.
fn gate_cell(
    name: &str,
    what: &str,
    base: f64,
    cur: f64,
    tolerance: f64,
    higher_is_better: bool,
    regressions: &mut Vec<Regression>,
) -> Result<(), String> {
    if !base.is_finite() || !cur.is_finite() {
        return Err(format!(
            "{name}: {what} is not a finite number ({base} -> {cur}); the report is corrupt"
        ));
    }
    if base == 0.0 {
        if cur == 0.0 {
            return Ok(());
        }
        return Err(format!(
            "{name}: {what} baseline is zero so a relative tolerance is undefined \
             (current {cur}); refresh the baselines"
        ));
    }
    let regressed = if higher_is_better {
        cur < base / (1.0 + tolerance)
    } else {
        cur > base * (1.0 + tolerance)
    };
    if regressed {
        regressions.push(Regression {
            report: name.to_string(),
            what: what.to_string(),
            baseline: base,
            current: cur,
        });
    }
    Ok(())
}

/// Validates the `perf.cache` stamp of a *current* report, when present.
///
/// The eval-cache counters are observability-only and never compared against
/// a baseline (old baselines predate the stamp entirely), but a report that
/// does carry one must be internally consistent: `hits` and `misses` present
/// and finite, and `disk_hits` (disk-served hits are a subset of all hits)
/// never exceeding `hits`. A violated invariant means the stamp — the very
/// signal the warm-start CI gate greps — is corrupt.
fn check_cache_stamp(name: &str, current: &Value) -> Result<(), String> {
    let Some(cache) = current.get("perf").and_then(|p| p.get("cache")) else {
        return Ok(());
    };
    let read = |field: &str| -> Result<f64, String> {
        let value = cache.get(field).and_then(Value::as_f64).ok_or_else(|| {
            format!("{name}: perf.cache.{field} is missing; the cache stamp is corrupt")
        })?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "{name}: perf.cache.{field} is {value}; the cache stamp is corrupt"
            ));
        }
        Ok(value)
    };
    let hits = read("hits")?;
    read("misses")?;
    // Reports written before the persistent tier lack disk_hits; that is an
    // older-but-valid stamp, not corruption.
    if cache.get("disk_hits").is_some() {
        let disk_hits = read("disk_hits")?;
        if disk_hits > hits {
            return Err(format!(
                "{name}: perf.cache.disk_hits {disk_hits} exceeds hits {hits}; \
                 the cache stamp is corrupt"
            ));
        }
    }
    Ok(())
}

/// Compares one report pair, appending regressions.
fn compare_report(
    name: &str,
    baseline: &Value,
    current: &Value,
    args: &Args,
    regressions: &mut Vec<Regression>,
) -> Result<(), String> {
    let base_rows = rows(baseline).ok_or_else(|| format!("{name}: baseline has no rows"))?;
    let cur_rows = rows(current).ok_or_else(|| format!("{name}: current has no rows"))?;
    check_same_configs(name, base_rows, cur_rows)?;
    check_cache_stamp(name, current)?;
    for (i, (b, c)) in base_rows.iter().zip(cur_rows).enumerate() {
        let b_eval = b
            .get("evaluation")
            .ok_or_else(|| format!("{name} row {i}: no evaluation"))?;
        let c_eval = c
            .get("evaluation")
            .ok_or_else(|| format!("{name} row {i}: no evaluation"))?;
        let key = row_key(b);
        for metric in ["latency_cycles", "volume"] {
            let read = |e: &Value| e.get(metric).and_then(Value::as_f64);
            let (Some(base), Some(cur)) = (read(b_eval), read(c_eval)) else {
                return Err(format!("{name} row {i}: missing {metric}"));
            };
            gate_cell(
                name,
                &format!("row {i} ({key}) {metric}"),
                base,
                cur,
                args.tolerance,
                false,
                regressions,
            )?;
        }
    }
    if let Some(wall_tol) = args.wall_tolerance {
        // The machine-dependent wall metrics share one coarse tolerance: the
        // sweep's end-to-end wall time, the mapping-phase refinement time
        // (the delta-cost path must not quietly regress towards the
        // full-recompute reference), and the lane-batched speedup over
        // sequential runs (higher is better — the batch engine must not
        // quietly decay back to one-run-at-a-time throughput). Each metric
        // names the wall-seconds cell whose *baseline* must clear the noise
        // floor for ratio-gating to be meaningful; for the speedup that is
        // the timed batched window, not the ratio itself.
        for metric in [
            WallMetric {
                what: "perf.wall_seconds",
                path: &["perf", "wall_seconds"],
                floor_path: &["perf", "wall_seconds"],
                higher_is_better: false,
            },
            WallMetric {
                what: "perf.mapping.refine_seconds",
                path: &["perf", "mapping", "refine_seconds"],
                floor_path: &["perf", "mapping", "refine_seconds"],
                higher_is_better: false,
            },
            WallMetric {
                what: "perf.batch.speedup_vs_sequential",
                path: &["perf", "batch", "speedup_vs_sequential"],
                floor_path: &["perf", "batch", "batched_seconds"],
                higher_is_better: true,
            },
        ] {
            let read = |v: &Value, path: &[&str]| {
                let mut node = v;
                for key in path {
                    node = node.get(key)?;
                }
                node.as_f64()
            };
            let what = metric.what;
            // A baseline predating a metric (or lacking an FD point, or run
            // with lane batching off) simply skips it; a *current* report
            // that dropped a metric its baseline carries is structural drift
            // and must fail loudly — otherwise the exact gate this field
            // exists for silently disappears.
            match (read(baseline, metric.path), read(current, metric.path)) {
                (Some(_), None) => {
                    return Err(format!(
                        "{name}: baseline records {what} but the current report lacks it; \
                         the metric can no longer be gated — refresh the baselines if \
                         intentional"
                    ));
                }
                (Some(base), Some(cur)) => {
                    let Some(floor) = read(baseline, metric.floor_path) else {
                        return Err(format!(
                            "{name}: baseline records {what} but lacks its gating-floor cell \
                             {}; the report is corrupt",
                            metric.floor_path.join("."),
                        ));
                    };
                    if floor < MIN_GATED_WALL_SECONDS {
                        // A sub-noise-floor baseline (e.g. the millisecond
                        // search smoke) cannot be ratio-gated: scheduler
                        // jitter alone exceeds any reasonable tolerance. Say
                        // so instead of flaking or silently skipping.
                        eprintln!(
                            "[bench-diff] NOTE: {name}: baseline {} {floor:.4}s is below the \
                             {MIN_GATED_WALL_SECONDS}s gating floor; {what} not gated",
                            metric.floor_path.join("."),
                        );
                    } else {
                        gate_cell(
                            name,
                            what,
                            base,
                            cur,
                            wall_tol,
                            metric.higher_is_better,
                            regressions,
                        )?;
                    }
                }
                (None, _) => {}
            }
        }
    }
    Ok(())
}

/// One machine-dependent metric gated under `--wall-tolerance`.
struct WallMetric {
    /// Dotted metric name as printed in regressions and errors.
    what: &'static str,
    /// JSON path of the gated value.
    path: &'static [&'static str],
    /// JSON path of the wall-seconds cell whose baseline value must clear
    /// [`MIN_GATED_WALL_SECONDS`] — the metric itself for raw timings, the
    /// underlying timed window for derived ratios.
    floor_path: &'static [&'static str],
    /// Whether a *drop* (rather than a rise) past tolerance is a regression.
    higher_is_better: bool,
}

/// Baseline wall times below this are not ratio-gated: at millisecond scale,
/// scheduler jitter on a shared CI runner dwarfs any multiplicative
/// tolerance, so gating would only produce flakes.
const MIN_GATED_WALL_SECONDS: f64 = 0.1;

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baselines = load_reports(&args.baseline)?;
    let currents = load_reports(&args.current)?;
    if baselines.is_empty() {
        return Err(format!("no BENCH_*.json under {}", args.baseline.display()));
    }
    let mut regressions = Vec::new();
    for (name, baseline) in &baselines {
        let Some((_, current)) = currents.iter().find(|(n, _)| n == name) else {
            return Err(format!(
                "{name}: present in baseline but missing from {}",
                args.current.display()
            ));
        };
        compare_report(name, baseline, current, &args, &mut regressions)?;
        println!(
            "[bench-diff] {name}: {} rows compared",
            rows(baseline).map(Vec::len).unwrap_or(0)
        );
    }
    // A current report with no baseline is not gated at all — say so loudly
    // rather than letting a newly added benchmark go silently unchecked.
    for (name, _) in &currents {
        if !baselines.iter().any(|(n, _)| n == name) {
            eprintln!(
                "[bench-diff] WARNING: {name} has no baseline under {} and was not compared; \
                 check one in to gate it",
                args.baseline.display()
            );
        }
    }
    if regressions.is_empty() {
        println!(
            "[bench-diff] OK — {} report(s) within {:.0}% tolerance{}",
            baselines.len(),
            args.tolerance * 100.0,
            args.wall_tolerance
                .map(|w| format!(" (wall {:.0}%)", w * 100.0))
                .unwrap_or_else(|| ", wall time not gated".to_string()),
        );
        Ok(true)
    } else {
        eprintln!("[bench-diff] {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("bench-diff: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: &[u64], wall: f64) -> Value {
        let rows: Vec<Value> = latencies
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                Value::Object(vec![
                    ("label".into(), Value::Str(format!("l{i}"))),
                    (
                        "evaluation".into(),
                        Value::Object(vec![
                            ("strategy".into(), Value::Str("Line".into())),
                            ("latency_cycles".into(), Value::UInt(lat)),
                            ("volume".into(), Value::UInt(lat * 10)),
                        ]),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("name".into(), Value::Str("t".into())),
            (
                "perf".into(),
                Value::Object(vec![("wall_seconds".into(), Value::Float(wall))]),
            ),
            (
                "results".into(),
                Value::Object(vec![("rows".into(), Value::Array(rows))]),
            ),
        ])
    }

    fn args(tolerance: f64, wall_tolerance: Option<f64>) -> Args {
        Args {
            baseline: PathBuf::new(),
            current: PathBuf::new(),
            tolerance,
            wall_tolerance,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[100, 200], 1.0);
        let mut regs = Vec::new();
        compare_report("t", &r, &r, &args(0.10, Some(0.10)), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn injected_twenty_percent_latency_slowdown_fails_at_ten_percent() {
        let base = report(&[100, 200], 1.0);
        let slow = report(&[100, 240], 1.0); // +20% on row 1
        let mut regs = Vec::new();
        compare_report("t", &base, &slow, &args(0.10, None), &mut regs).unwrap();
        // latency_cycles and volume both regress on row 1.
        assert_eq!(regs.len(), 2);
        assert!(regs[0].what.contains("row 1"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = report(&[100], 1.0);
        let ok = report(&[105], 1.0); // +5%
        let mut regs = Vec::new();
        compare_report("t", &base, &ok, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn improvements_always_pass() {
        let base = report(&[100], 1.0);
        let fast = report(&[40], 0.2);
        let mut regs = Vec::new();
        compare_report("t", &base, &fast, &args(0.10, Some(0.10)), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn wall_time_gated_only_when_requested() {
        let base = report(&[100], 1.0);
        let slow_wall = report(&[100], 3.0);
        let mut regs = Vec::new();
        compare_report("t", &base, &slow_wall, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty(), "wall ungated by default");
        compare_report("t", &base, &slow_wall, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "perf.wall_seconds");
    }

    /// Adds a `perf.mapping.refine_seconds` cell to a fixture report.
    fn with_mapping_refine(mut r: Value, refine_seconds: f64) -> Value {
        if let Value::Object(entries) = &mut r {
            if let Some((_, Value::Object(perf))) = entries.iter_mut().find(|(k, _)| k == "perf") {
                perf.push((
                    "mapping".into(),
                    Value::Object(vec![(
                        "refine_seconds".into(),
                        Value::Float(refine_seconds),
                    )]),
                ));
            }
        }
        r
    }

    #[test]
    fn mapping_phase_regression_is_gated_under_wall_tolerance() {
        let base = with_mapping_refine(report(&[100], 1.0), 1.0);
        let slow = with_mapping_refine(report(&[100], 1.0), 4.0);
        let mut regs = Vec::new();
        compare_report("t", &base, &slow, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty(), "ungated without --wall-tolerance");
        compare_report("t", &base, &slow, &args(0.10, Some(2.0)), &mut regs).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "perf.mapping.refine_seconds");
        // A baseline without the field (pre-metric report) is skipped.
        let old_base = report(&[100], 1.0);
        let mut regs = Vec::new();
        compare_report("t", &old_base, &slow, &args(0.10, Some(2.0)), &mut regs).unwrap();
        assert!(regs.is_empty());
        // A *current* report that dropped a gated metric its baseline
        // carries is an explicit error, not a silent skip.
        let current_without = report(&[100], 1.0);
        let err = compare_report(
            "t",
            &base,
            &current_without,
            &args(0.10, Some(2.0)),
            &mut regs,
        )
        .expect_err("dropping a gated metric must error");
        assert!(err.contains("perf.mapping.refine_seconds"), "{err}");
    }

    /// Adds a `perf.batch` block (speedup + its timed window) to a fixture.
    fn with_batch(mut r: Value, speedup: f64, batched_seconds: f64) -> Value {
        if let Value::Object(entries) = &mut r {
            if let Some((_, Value::Object(perf))) = entries.iter_mut().find(|(k, _)| k == "perf") {
                perf.push((
                    "batch".into(),
                    Value::Object(vec![
                        ("batched_seconds".into(), Value::Float(batched_seconds)),
                        ("speedup_vs_sequential".into(), Value::Float(speedup)),
                    ]),
                ));
            }
        }
        r
    }

    #[test]
    fn batch_speedup_drop_is_gated_under_wall_tolerance() {
        let base = with_batch(report(&[100], 1.0), 3.0, 0.5);
        let decayed = with_batch(report(&[100], 1.0), 1.2, 0.5);
        let mut regs = Vec::new();
        compare_report("t", &base, &decayed, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty(), "ungated without --wall-tolerance");
        // 1.2 < 3.0 / (1 + 0.5) = 2.0 → regression.
        compare_report("t", &base, &decayed, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "perf.batch.speedup_vs_sequential");
        // The drop prints as a signed negative delta, not "+-60%".
        assert!(regs[0].to_string().contains("(-60.0%)"), "{}", regs[0]);
        // A drop within tolerance passes: 2.5 ≥ 3.0 / 1.5.
        let mut regs = Vec::new();
        let ok = with_batch(report(&[100], 1.0), 2.5, 0.5);
        compare_report("t", &base, &ok, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert!(regs.is_empty());
        // An *improvement* in speedup (higher) always passes.
        let faster = with_batch(report(&[100], 1.0), 9.0, 0.5);
        compare_report("t", &base, &faster, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert!(regs.is_empty());
        // A baseline without the block (lane batching off) is skipped.
        let old_base = report(&[100], 1.0);
        compare_report("t", &old_base, &decayed, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert!(regs.is_empty());
        // A current report that dropped the gated speedup errors loudly.
        let current_without = report(&[100], 1.0);
        let err = compare_report(
            "t",
            &base,
            &current_without,
            &args(0.10, Some(0.5)),
            &mut regs,
        )
        .expect_err("dropping a gated batch metric must error");
        assert!(err.contains("perf.batch.speedup_vs_sequential"), "{err}");
    }

    #[test]
    fn batch_speedup_floor_reads_the_timed_window_not_the_ratio() {
        // batched_seconds below the floor → the ratio is jitter-dominated
        // and must not be gated, even on a huge apparent decay.
        let tiny = with_batch(report(&[100], 1.0), 4.0, 0.001);
        let decayed = with_batch(report(&[100], 1.0), 1.0, 0.001);
        let mut regs = Vec::new();
        compare_report("t", &tiny, &decayed, &args(0.10, Some(0.5)), &mut regs).unwrap();
        assert!(regs.is_empty(), "sub-floor batched window must not gate");
        // A speedup cell without its timed window is a corrupt report.
        let mut no_window = report(&[100], 1.0);
        if let Value::Object(entries) = &mut no_window {
            if let Some((_, Value::Object(perf))) = entries.iter_mut().find(|(k, _)| k == "perf") {
                perf.push((
                    "batch".into(),
                    Value::Object(vec![("speedup_vs_sequential".into(), Value::Float(4.0))]),
                ));
            }
        }
        let cur = with_batch(report(&[100], 1.0), 4.0, 0.5);
        let err = compare_report("t", &no_window, &cur, &args(0.10, Some(0.5)), &mut regs)
            .expect_err("missing floor cell must error");
        assert!(err.contains("batched_seconds"), "{err}");
    }

    #[test]
    fn sub_floor_wall_baselines_are_not_gated() {
        // A millisecond-scale baseline (the search smoke) cannot be
        // ratio-gated — runner jitter exceeds any tolerance — so even a
        // 1000x "slowdown" must not regress.
        let tiny = report(&[100], 0.0005);
        let jittery = report(&[100], 0.5);
        let mut regs = Vec::new();
        compare_report("t", &tiny, &jittery, &args(0.10, Some(2.0)), &mut regs).unwrap();
        assert!(regs.is_empty(), "sub-floor wall must not be gated");
        // At or above the floor, gating applies as usual.
        let base = report(&[100], MIN_GATED_WALL_SECONDS);
        let slow = report(&[100], MIN_GATED_WALL_SECONDS * 10.0);
        compare_report("t", &base, &slow, &args(0.10, Some(2.0)), &mut regs).unwrap();
        assert_eq!(regs.len(), 1);
    }

    /// Adds a `perf.cache` stamp to a fixture report.
    fn with_cache(mut r: Value, entries: &[(&str, Value)]) -> Value {
        if let Value::Object(fields) = &mut r {
            if let Some((_, Value::Object(perf))) = fields.iter_mut().find(|(k, _)| k == "perf") {
                perf.push((
                    "cache".into(),
                    Value::Object(
                        entries
                            .iter()
                            .map(|(k, v)| (k.to_string(), v.clone()))
                            .collect(),
                    ),
                ));
            }
        }
        r
    }

    #[test]
    fn consistent_cache_stamps_pass() {
        let base = report(&[100], 1.0);
        let stamped = with_cache(
            report(&[100], 1.0),
            &[
                ("hits", Value::UInt(8)),
                ("misses", Value::UInt(2)),
                ("disk_hits", Value::UInt(5)),
                ("loaded", Value::UInt(10)),
                ("persisted", Value::UInt(2)),
            ],
        );
        let mut regs = Vec::new();
        compare_report("t", &base, &stamped, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty(), "a valid cache stamp is never a regression");
        // A pre-persistent-tier stamp (no disk_hits) is older-but-valid.
        let legacy = with_cache(
            report(&[100], 1.0),
            &[("hits", Value::UInt(3)), ("misses", Value::UInt(1))],
        );
        compare_report("t", &base, &legacy, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn corrupt_cache_stamps_are_an_explicit_error() {
        let base = report(&[100], 1.0);
        let mut regs = Vec::new();
        // disk_hits exceeding hits breaks the subset invariant.
        let inverted = with_cache(
            report(&[100], 1.0),
            &[
                ("hits", Value::UInt(2)),
                ("misses", Value::UInt(0)),
                ("disk_hits", Value::UInt(5)),
            ],
        );
        let err = compare_report("t", &base, &inverted, &args(0.10, None), &mut regs)
            .expect_err("disk_hits > hits must error");
        assert!(err.contains("disk_hits"), "{err}");
        // A stamp missing its hit counter is corrupt, not skippable.
        let truncated = with_cache(report(&[100], 1.0), &[("misses", Value::UInt(1))]);
        let err = compare_report("t", &base, &truncated, &args(0.10, None), &mut regs)
            .expect_err("missing hits must error");
        assert!(err.contains("perf.cache.hits"), "{err}");
        // Non-finite counters are corrupt.
        let poisoned = with_cache(
            report(&[100], 1.0),
            &[("hits", Value::Float(f64::NAN)), ("misses", Value::UInt(1))],
        );
        let err = compare_report("t", &base, &poisoned, &args(0.10, None), &mut regs)
            .expect_err("NaN hits must error");
        assert!(err.contains("perf.cache.hits"), "{err}");
        // Only the *current* side is validated: a baseline with a corrupt
        // stamp (e.g. hand-edited history) must not block comparisons.
        let current = report(&[100], 1.0);
        compare_report("t", &inverted, &current, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn structural_drift_is_an_error_not_a_pass() {
        let base = report(&[100, 200], 1.0);
        let fewer = report(&[100], 1.0);
        let mut regs = Vec::new();
        assert!(compare_report("t", &base, &fewer, &args(0.10, None), &mut regs).is_err());
    }

    #[test]
    fn disjoint_config_sets_error_names_the_keys() {
        // Same row count, different keys: the error must spell out which
        // keys each side has exclusively, not just fail on a count.
        let base = report(&[100, 200], 1.0);
        let mut renamed = report(&[100, 200], 1.0);
        if let Value::Object(entries) = &mut renamed {
            let results = entries
                .iter_mut()
                .find(|(k, _)| k == "results")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Object(r) = results {
                if let Some((_, Value::Array(rows))) = r.iter_mut().find(|(k, _)| k == "rows") {
                    if let Value::Object(row) = &mut rows[1] {
                        row[0].1 = Value::Str("l9".into()); // label l1 -> l9
                    }
                }
            }
        }
        let mut regs = Vec::new();
        let err = compare_report("t", &base, &renamed, &args(0.10, None), &mut regs)
            .expect_err("disjoint sets must error");
        assert!(err.contains("baseline-only: [l1/Line]"), "{err}");
        assert!(err.contains("current-only: [l9/Line]"), "{err}");
        assert!(regs.is_empty(), "no cell may be gated after a key error");
    }

    /// Builds a report whose row-0 latency cell is the given float.
    fn report_with_latency_cell(cell: Value) -> Value {
        let mut r = report(&[100], 1.0);
        if let Value::Object(entries) = &mut r {
            let results = entries
                .iter_mut()
                .find(|(k, _)| k == "results")
                .map(|(_, v)| v)
                .unwrap();
            if let Value::Object(res) = results {
                if let Some((_, Value::Array(rows))) = res.iter_mut().find(|(k, _)| k == "rows") {
                    if let Value::Object(row) = &mut rows[0] {
                        if let Some((_, Value::Object(eval))) =
                            row.iter_mut().find(|(k, _)| k == "evaluation")
                        {
                            if let Some(entry) =
                                eval.iter_mut().find(|(k, _)| k == "latency_cycles")
                            {
                                entry.1 = cell;
                            }
                        }
                    }
                }
            }
        }
        r
    }

    #[test]
    fn nan_cells_are_an_explicit_error() {
        let base = report(&[100], 1.0);
        let poisoned = report_with_latency_cell(Value::Float(f64::NAN));
        let mut regs = Vec::new();
        let err = compare_report("t", &base, &poisoned, &args(0.10, None), &mut regs)
            .expect_err("NaN must error, not silently pass");
        assert!(err.contains("not a finite number"), "{err}");
        // NaN in the baseline position must error too.
        let err = compare_report("t", &poisoned, &base, &args(0.10, None), &mut regs)
            .expect_err("NaN baseline must error");
        assert!(err.contains("not a finite number"), "{err}");
    }

    #[test]
    fn zero_baseline_cells_are_an_explicit_error() {
        let zero_base = report_with_latency_cell(Value::UInt(0));
        let current = report(&[100], 1.0);
        let mut regs = Vec::new();
        let err = compare_report("t", &zero_base, &current, &args(0.10, None), &mut regs)
            .expect_err("zero baseline with nonzero current must error");
        assert!(err.contains("baseline is zero"), "{err}");
        assert!(regs.is_empty());
        // Zero against zero is an unchanged cell, not an error.
        let mut regs = Vec::new();
        compare_report("t", &zero_base, &zero_base, &args(0.10, None), &mut regs).unwrap();
        assert!(regs.is_empty());
    }
}
