//! Runs a streaming workload declared as a JSON spec file and reports
//! per-scheduler latency/throughput/utilization — the online-traffic
//! counterpart of the fixed figure/table sweeps.
//!
//! Usage: `cargo run -p msfu-bench --bin stream --release -- <SPEC.json> [--json] [--cache-dir DIR]`
//!
//! * `<SPEC.json>` — a [`StreamSpec`] document (see
//!   `msfu_core::stream::StreamSpec::from_json` and the README's
//!   "Streaming workload" section; `benches/specs/stream_quick.json` is a
//!   worked example).
//! * `--json` — additionally write `BENCH_<name>.json` with `p50`, `p99`
//!   and `throughput` rows per scheduler, in the same shape the figure
//!   binaries emit so `bench-diff` gates streaming results too.
//! * `--cache-dir DIR` — point the run at a persistent evaluation-cache
//!   directory (overrides the spec's own `cache_dir`): per-class service
//!   times already simulated are served from disk, new ones are appended,
//!   and results stay byte-identical either way.
//!
//! Like the figure binaries, this is a thin wrapper over the service
//! façade: it builds a stream [`Request`](msfu_service::Request) via
//! [`msfu_bench::run_stream_spec`] and only formats the returned report.

use std::process::ExitCode;

use msfu_bench::run_stream_spec;
use msfu_core::{StreamReport, StreamSpec};

fn print_report(report: &StreamReport) {
    println!(
        "# stream {} — seed {}, horizon {} cycles, {} arrivals over {} server(s), setup {} cycles",
        report.name,
        report.seed,
        report.horizon,
        report.arrivals,
        report.fleet.len(),
        report.setup_cycles,
    );
    println!();
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>10}{:>14}{:>8}{:>8}{:>8}",
        "scheduler", "done", "p50", "p95", "p99", "jobs/kcycle", "util%", "maxq", "setups"
    );
    for run in &report.runs {
        println!(
            "{:<16}{:>10}{:>10}{:>10}{:>10}{:>14.3}{:>8.1}{:>8}{:>8}",
            run.scheduler,
            run.completed,
            run.latency_p50,
            run.latency_p95,
            run.latency_p99,
            run.throughput_jobs_per_kcycle,
            run.utilization * 100.0,
            run.max_queue_depth,
            run.setup_switches,
        );
    }
}

fn run() -> Result<(), String> {
    let mut spec_path: Option<String> = None;
    let mut serial = false;
    let mut json = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Accepted for symmetry with the other harness binaries; the
            // streaming engine is sequential either way.
            "serial" | "--serial" => serial = true,
            "--json" => json = true,
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a directory")?;
                cache_dir = Some(dir.into());
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => {
                if spec_path.replace(arg).is_some() {
                    return Err("exactly one spec file is expected".to_string());
                }
            }
        }
    }
    let spec_path = spec_path
        .ok_or("usage: stream <SPEC.json> [serial] [--json] [--cache-dir DIR]".to_string())?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = StreamSpec::from_json(&text).map_err(|e| e.to_string())?;
    let report = run_stream_spec(&spec, serial, json, cache_dir.as_deref())?;
    print_report(&report);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("stream: {msg}");
            ExitCode::from(2)
        }
    }
}
