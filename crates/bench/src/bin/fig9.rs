//! Regenerates **Fig. 9** of the paper:
//!
//! * 9a/9b — sensitivity of the achieved quantum volume to the qubit-reuse
//!   policy: the volume differential `(NR − R)/NR` per mapping strategy.
//! * 9c/9d — latency of the inter-round permutation step under the four
//!   intermediate-hop strategies (no hop, randomised Valiant hop, annealed
//!   random hop, annealed midpoint hop).
//!
//! Both studies live in one declarative [`SweepSpec`]: the reuse grid under
//! the `reuse` label, and one labelled point per hop strategy with per-round
//! breakdowns collected by the engine. This binary only formats rows.
//!
//! Usage: `cargo run -p msfu-bench --bin fig9 --release [full] [serial] [--json]`

use msfu_bench::{harness_eval_config, run_spec, scaled_fd_config, HarnessArgs};
use msfu_core::{pipeline, Strategy, SweepIndex, SweepSpec};
use msfu_distill::{FactoryConfig, ReusePolicy};
use msfu_layout::{HopStrategy, StitchingConfig};

const HOP_STRATEGIES: [HopStrategy; 4] = [
    HopStrategy::None,
    HopStrategy::RandomHop,
    HopStrategy::AnnealedRandomHop,
    HopStrategy::AnnealedMidpointHop,
];

fn build_spec(args: &HarnessArgs, seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::new("fig9", harness_eval_config()).with_breakdowns();
    for &capacity in &args.mode.two_level_capacities() {
        let base =
            FactoryConfig::from_total_capacity(capacity, 2).expect("capacity is an exact power");
        // 9a/9b: three strategies under both reuse policies.
        for policy in [ReusePolicy::Reuse, ReusePolicy::NoReuse] {
            spec = spec.grid("reuse", &[base.with_reuse(policy)], |c| {
                let qubits = c.total_modules() * c.qubits_per_module();
                vec![
                    Strategy::linear(),
                    Strategy::force_directed(scaled_fd_config(seed, qubits)),
                    Strategy::graph_partition(seed),
                ]
            });
        }
        // 9c/9d: hierarchical stitching under each hop strategy, labelled by
        // hop so the rows stay distinguishable.
        for hop in HOP_STRATEGIES {
            spec = spec.point(
                format!("hops/{}", hop.name()),
                base,
                Strategy::hierarchical_stitching(StitchingConfig {
                    seed,
                    hop_strategy: hop,
                    ..StitchingConfig::default()
                }),
            );
        }
    }
    spec
}

fn reuse_differentials(index: &SweepIndex<'_>, capacities: &[usize]) {
    println!("# Fig. 9a/9b — volume differential (NR - R)/NR per strategy, two-level factories");
    println!(
        "{:<12}{:>18}{:>18}{:>18}",
        "capacity", "Linear Mapping", "Force Directed", "Graph Partitioning"
    );
    for &capacity in capacities {
        print!("{capacity:<12}");
        for strategy in ["Line", "FD", "GP"] {
            let volume_under = |policy: ReusePolicy| {
                index
                    .rows("reuse", strategy, capacity)
                    .find(|r| r.evaluation.factory.reuse == policy)
                    .expect("reuse grid row present")
                    .evaluation
                    .volume as f64
            };
            let reuse = volume_under(ReusePolicy::Reuse);
            let no_reuse = volume_under(ReusePolicy::NoReuse);
            print!("{:>18.3}", (no_reuse - reuse) / no_reuse);
        }
        println!();
    }
    println!("# positive values mean reuse achieves the smaller volume");
    println!();
}

fn permutation_latencies(index: &SweepIndex<'_>, capacities: &[usize]) {
    println!("# Fig. 9c/9d — permutation-step latency (cycles) by intermediate-hop strategy");
    println!(
        "{:<12}{:>14}{:>18}{:>22}{:>24}",
        "capacity", "No Hop", "Randomized Hop", "Annealed Random Hop", "Annealed Midpoint Hop"
    );
    for &capacity in capacities {
        print!("{capacity:<12}");
        for hop in HOP_STRATEGIES {
            let row = index
                .find(&format!("hops/{}", hop.name()), "HS", capacity)
                .expect("hop row present");
            let breakdown = row.breakdown.as_ref().expect("breakdowns were collected");
            let cycles = pipeline::total_permutation_cycles(breakdown);
            let width = match hop {
                HopStrategy::None => 14,
                HopStrategy::RandomHop => 18,
                HopStrategy::AnnealedRandomHop => 22,
                HopStrategy::AnnealedMidpointHop => 24,
            };
            print!("{cycles:>width$}");
        }
        println!();
    }
    println!();
}

fn main() {
    let args = HarnessArgs::from_env();
    let seed = 42;
    let spec = build_spec(&args, seed);
    let results = run_spec(&spec, &args);
    // One pass over the rows; every per-cell lookup below is O(1).
    let index = results.index();
    let capacities = args.mode.two_level_capacities();
    reuse_differentials(&index, &capacities);
    permutation_latencies(&index, &capacities);
}
