//! Regenerates **Fig. 9** of the paper:
//!
//! * 9a/9b — sensitivity of the achieved quantum volume to the qubit-reuse
//!   policy: the volume differential `(NR − R)/NR` per mapping strategy.
//! * 9c/9d — latency of the inter-round permutation step under the four
//!   intermediate-hop strategies (no hop, randomised Valiant hop, annealed
//!   random hop, annealed midpoint hop).
//!
//! Usage: `cargo run -p msfu-bench --bin fig9 --release [full]`

use msfu_bench::{evaluate_with_reuse, harness_eval_config, scaled_fd_config, Mode};
use msfu_core::{pipeline, Strategy};
use msfu_distill::{Factory, FactoryConfig, ReusePolicy};
use msfu_layout::{HierarchicalStitchingMapper, HopStrategy, StitchingConfig};

fn reuse_differentials(capacities: &[usize], seed: u64) {
    println!("# Fig. 9a/9b — volume differential (NR - R)/NR per strategy, two-level factories");
    println!(
        "{:<12}{:>18}{:>18}{:>18}",
        "capacity", "Linear Mapping", "Force Directed", "Graph Partitioning"
    );
    for &capacity in capacities {
        let config = FactoryConfig::from_total_capacity(capacity, 2).expect("exact power");
        let qubits = config.total_modules() * config.qubits_per_module();
        let strategies = [
            Strategy::Linear,
            Strategy::ForceDirected(scaled_fd_config(seed, qubits)),
            Strategy::GraphPartition { seed },
        ];
        print!("{capacity:<12}");
        for strategy in &strategies {
            let reuse = evaluate_with_reuse(capacity, 2, strategy, ReusePolicy::Reuse)
                .expect("reuse evaluation succeeds");
            let no_reuse = evaluate_with_reuse(capacity, 2, strategy, ReusePolicy::NoReuse)
                .expect("no-reuse evaluation succeeds");
            let differential =
                (no_reuse.volume as f64 - reuse.volume as f64) / no_reuse.volume as f64;
            print!("{differential:>18.3}");
        }
        println!();
    }
    println!("# positive values mean reuse achieves the smaller volume");
    println!();
}

fn permutation_latencies(capacities: &[usize], seed: u64) {
    println!("# Fig. 9c/9d — permutation-step latency (cycles) by intermediate-hop strategy");
    println!(
        "{:<12}{:>14}{:>18}{:>22}{:>24}",
        "capacity", "No Hop", "Randomized Hop", "Annealed Random Hop", "Annealed Midpoint Hop"
    );
    let hop_strategies = [
        HopStrategy::None,
        HopStrategy::RandomHop,
        HopStrategy::AnnealedRandomHop,
        HopStrategy::AnnealedMidpointHop,
    ];
    for &capacity in capacities {
        let config = FactoryConfig::from_total_capacity(capacity, 2).expect("exact power");
        print!("{capacity:<12}");
        for hop in hop_strategies {
            let mut factory = Factory::build(&config).expect("factory builds");
            let mapper = HierarchicalStitchingMapper::with_config(StitchingConfig {
                seed,
                hop_strategy: hop,
                ..StitchingConfig::default()
            });
            let layout = mapper
                .map_factory_optimized(&mut factory)
                .expect("stitching succeeds");
            let breakdown =
                pipeline::per_round_breakdown(&factory, &layout, &harness_eval_config().sim)
                    .expect("breakdown succeeds");
            let cycles = pipeline::total_permutation_cycles(&breakdown);
            let width = match hop {
                HopStrategy::None => 14,
                HopStrategy::RandomHop => 18,
                HopStrategy::AnnealedRandomHop => 22,
                HopStrategy::AnnealedMidpointHop => 24,
            };
            print!("{cycles:>width$}");
        }
        println!();
    }
    println!();
}

fn main() {
    let mode = Mode::from_args();
    let seed = 42;
    let capacities = mode.two_level_capacities();
    reuse_differentials(&capacities, seed);
    permutation_latencies(&capacities, seed);
}
