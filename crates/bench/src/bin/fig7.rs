//! Regenerates **Fig. 7** of the paper: realised circuit latency of the
//! force-directed and graph-partitioning mappers against the critical-path
//! ("theoretical lower bound") latency, for single-level (7a) and two-level
//! (7b) factories of increasing capacity.
//!
//! Usage: `cargo run -p msfu-bench --bin fig7 --release [full]`

use msfu_bench::{evaluate_with_reuse, scaled_fd_config, Mode};
use msfu_core::{report::Series, Strategy};
use msfu_distill::{FactoryConfig, ReusePolicy};

fn sweep(levels: usize, capacities: &[usize], seed: u64) -> Vec<Series> {
    let mut fd = Series::new("Force Directed");
    let mut gp = Series::new("Graph Partitioning");
    let mut lower = Series::new("Theoretical Lower Bound");
    for &capacity in capacities {
        let config = FactoryConfig::from_total_capacity(capacity, levels).expect("exact power");
        let qubits = config.total_modules() * config.qubits_per_module();
        let fd_strategy = Strategy::ForceDirected(scaled_fd_config(seed, qubits));
        let gp_strategy = Strategy::GraphPartition { seed };

        let fd_eval = evaluate_with_reuse(capacity, levels, &fd_strategy, ReusePolicy::Reuse)
            .expect("FD evaluation succeeds");
        let gp_eval = evaluate_with_reuse(capacity, levels, &gp_strategy, ReusePolicy::Reuse)
            .expect("GP evaluation succeeds");

        fd.push(capacity as f64, fd_eval.latency_cycles as f64);
        gp.push(capacity as f64, gp_eval.latency_cycles as f64);
        lower.push(capacity as f64, gp_eval.critical_path_cycles as f64);
        eprintln!(
            "done L={levels} capacity={capacity}: FD={} GP={} bound={}",
            fd_eval.latency_cycles, gp_eval.latency_cycles, gp_eval.critical_path_cycles
        );
    }
    vec![fd, gp, lower]
}

fn print_series(title: &str, series: &[Series]) {
    println!("# {title}");
    print!("{:<12}", "capacity");
    for s in series {
        print!("{:>26}", s.label);
    }
    println!();
    if let Some(first) = series.first() {
        for (i, x) in first.x.iter().enumerate() {
            print!("{:<12}", x);
            for s in series {
                print!("{:>26.0}", s.y[i]);
            }
            println!();
        }
    }
    println!();
}

fn main() {
    let mode = Mode::from_args();
    let seed = 42;

    let single = sweep(1, &mode.single_level_capacities(), seed);
    print_series(
        "Fig. 7a — single-level factory latency (cycles) vs capacity",
        &single,
    );

    let double = sweep(2, &mode.two_level_capacities(), seed);
    print_series(
        "Fig. 7b — two-level factory latency (cycles) vs capacity",
        &double,
    );
}
