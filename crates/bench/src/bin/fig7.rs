//! Regenerates **Fig. 7** of the paper: realised circuit latency of the
//! force-directed and graph-partitioning mappers against the critical-path
//! ("theoretical lower bound") latency, for single-level (7a) and two-level
//! (7b) factories of increasing capacity.
//!
//! One declarative [`msfu_bench::fig7_spec`] sweep (both levels × all
//! capacities × {FD, GP}) executed in parallel by the sweep engine; this
//! binary only formats rows. The same grid is also checked in as pure JSON
//! data (`benches/specs/fig7_quick.json`) and asserted byte-identical by
//! `tests/registry_sweep.rs`.
//!
//! Usage: `cargo run -p msfu-bench --bin fig7 --release [full] [serial] [--json]`

use msfu_bench::{fig7_spec, run_spec, HarnessArgs};
use msfu_core::{report::Series, SweepIndex};

fn series(index: &SweepIndex<'_>, label: &str, capacities: &[usize]) -> Vec<Series> {
    let mut fd = Series::new("Force Directed");
    let mut gp = Series::new("Graph Partitioning");
    let mut lower = Series::new("Theoretical Lower Bound");
    for &capacity in capacities {
        let fd_row = index.find(label, "FD", capacity).expect("FD row present");
        let gp_row = index.find(label, "GP", capacity).expect("GP row present");
        fd.push(capacity as f64, fd_row.evaluation.latency_cycles as f64);
        gp.push(capacity as f64, gp_row.evaluation.latency_cycles as f64);
        lower.push(
            capacity as f64,
            gp_row.evaluation.critical_path_cycles as f64,
        );
    }
    vec![fd, gp, lower]
}

fn print_series(title: &str, series: &[Series]) {
    println!("# {title}");
    print!("{:<12}", "capacity");
    for s in series {
        print!("{:>26}", s.label);
    }
    println!();
    if let Some(first) = series.first() {
        for (i, x) in first.x.iter().enumerate() {
            print!("{x:<12}");
            for s in series {
                print!("{:>26.0}", s.y[i]);
            }
            println!();
        }
    }
    println!();
}

fn main() {
    let args = HarnessArgs::from_env();
    let seed = 42;
    let spec = fig7_spec(args.mode, seed);
    let results = run_spec(&spec, &args);
    // One pass over the rows; every per-cell lookup below is O(1).
    let index = results.index();

    print_series(
        "Fig. 7a — single-level factory latency (cycles) vs capacity",
        &series(&index, "single", &args.mode.single_level_capacities()),
    );
    print_series(
        "Fig. 7b — two-level factory latency (cycles) vs capacity",
        &series(&index, "double", &args.mode.two_level_capacities()),
    );
}
