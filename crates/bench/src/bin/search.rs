//! Runs a portfolio search declared as a JSON spec file and reports the
//! best-so-far incumbent — the "open line-up" counterpart of the fixed
//! figure/table sweeps.
//!
//! Usage: `cargo run -p msfu-bench --bin search --release -- <SPEC.json> [serial] [--json] [--cache-dir DIR]`
//!
//! * `<SPEC.json>` — a [`SearchSpec`] document (see
//!   `msfu_core::search::SearchSpec::from_json` and the README's
//!   "Portfolio search" section; `benches/specs/search_smoke.json` is a
//!   worked example).
//! * `serial` — run candidate batches sequentially (results are identical).
//! * `--json` — additionally write `BENCH_<name>.json` with one
//!   `portfolio/<strategy>` row per portfolio entry plus the `incumbent`
//!   row, in the same shape the figure binaries emit so `bench-diff` gates
//!   search results too.
//! * `--cache-dir DIR` — point the search at a persistent evaluation-cache
//!   directory (overrides the spec's own `cache_dir`): already simulated
//!   candidates are served from disk, new ones are appended, and results
//!   stay byte-identical either way.
//!
//! Like the figure binaries, this is a thin wrapper over the service
//! façade: it builds a search [`Request`](msfu_service::Request) via
//! [`msfu_bench::run_search_spec`] and only formats the returned report.

use std::process::ExitCode;

use msfu_bench::run_search_spec;
use msfu_core::{SearchReport, SearchSpec};

fn print_report(report: &SearchReport) {
    println!(
        "# search {} — objective {}, factory k={} levels={} ({:?})",
        report.name,
        report.objective.name(),
        report.factory.k,
        report.factory.levels,
        report.stop,
    );
    println!(
        "# {} candidates in {} batch(es)",
        report.evaluations, report.batches
    );
    println!();
    println!("# incumbent trajectory (candidate -> objective)");
    for point in &report.trajectory {
        println!("{:>6} {:>14}", point.evaluation, point.value);
    }
    println!();
    println!("# best candidate per portfolio entry");
    println!(
        "{:<12}{:>10}{:>14}{:>14}{:>10}",
        "strategy", "candidate", "latency", "volume", "area"
    );
    for best in &report.entry_bests {
        println!(
            "{:<12}{:>10}{:>14}{:>14}{:>10}",
            best.evaluation.strategy,
            best.candidate,
            best.evaluation.latency_cycles,
            best.evaluation.volume,
            best.evaluation.area,
        );
    }
    println!();
    if let Some(incumbent) = &report.incumbent {
        println!(
            "# incumbent: {} (candidate {}) -> {} = {} (volume {}, latency {}, area {})",
            incumbent.evaluation.strategy,
            incumbent.candidate,
            report.objective.name(),
            incumbent.value,
            incumbent.evaluation.volume,
            incumbent.evaluation.latency_cycles,
            incumbent.evaluation.area,
        );
        println!("# incumbent params: {}", describe(incumbent));
    }
}

fn describe(incumbent: &msfu_core::search::Incumbent) -> String {
    let params: Vec<String> = incumbent
        .strategy
        .params()
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    format!("{}({})", incumbent.strategy.key(), params.join(", "))
}

fn run() -> Result<(), String> {
    let mut spec_path: Option<String> = None;
    let mut serial = false;
    let mut json = false;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "serial" | "--serial" => serial = true,
            "--json" => json = true,
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a directory")?;
                cache_dir = Some(dir.into());
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => {
                if spec_path.replace(arg).is_some() {
                    return Err("exactly one spec file is expected".to_string());
                }
            }
        }
    }
    let spec_path = spec_path
        .ok_or("usage: search <SPEC.json> [serial] [--json] [--cache-dir DIR]".to_string())?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = SearchSpec::from_json(&text).map_err(|e| e.to_string())?;
    let report = run_search_spec(&spec, serial, json, cache_dir.as_deref())?;
    print_report(&report);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("search: {msg}");
            ExitCode::from(2)
        }
    }
}
