//! # msfu-bench
//!
//! Benchmark harness that regenerates every table and figure of the MSFU
//! paper's evaluation (Section VIII):
//!
//! | Binary    | Paper artefact | Content |
//! |-----------|----------------|---------|
//! | `fig6`    | Fig. 6         | correlation of edge crossings / length / spacing with simulated latency over randomised mappings |
//! | `fig7`    | Fig. 7a/7b     | FD and GP latency vs capacity against the critical-path lower bound |
//! | `fig9`    | Fig. 9a–9d     | qubit reuse vs no-reuse volume differentials; permutation-step latency per hop strategy |
//! | `fig10`   | Fig. 10a–10f   | latency / area / volume for every strategy, single- and two-level |
//! | `table1`  | Table I        | quantum volumes for Random, Line(NR), Line(R), FD, GP, HS and the critical bound |
//!
//! Every binary accepts an optional `full` argument to sweep the paper's
//! complete capacity range; without it a reduced sweep is used so the whole
//! harness completes in minutes on a laptop. Criterion benches
//! (`cargo bench -p msfu-bench`) measure the runtime scalability of the
//! mapping algorithms themselves (Section VI-B3) and the ablations called out
//! in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use msfu_core::{evaluate, Evaluation, EvaluationConfig, Strategy};
use msfu_distill::{FactoryConfig, ReusePolicy};
use msfu_layout::{ForceDirectedConfig, StitchingConfig};

/// Execution mode of a figure/table binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reduced parameter sweep (default): completes in minutes.
    Quick,
    /// The paper's full parameter sweep.
    Full,
}

impl Mode {
    /// Parses the mode from the process arguments: any argument equal to
    /// `full` selects [`Mode::Full`].
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// Single-level capacities to sweep (Fig. 10a/b/e, Table I level 1).
    pub fn single_level_capacities(self) -> Vec<usize> {
        match self {
            Mode::Quick => vec![2, 4, 8],
            Mode::Full => vec![2, 4, 6, 8, 12, 16, 20, 24],
        }
    }

    /// Two-level total capacities to sweep (Fig. 10c/d/f, Table I level 2).
    pub fn two_level_capacities(self) -> Vec<usize> {
        match self {
            Mode::Quick => vec![4, 16],
            Mode::Full => vec![4, 16, 36, 64, 100],
        }
    }

    /// Number of randomised mappings for the Fig. 6 correlation study.
    pub fn fig6_samples(self) -> usize {
        match self {
            Mode::Quick => 40,
            Mode::Full => 200,
        }
    }
}

/// The evaluation configuration used by every harness binary.
///
/// The paper's simulator routes each braid along a fixed path and inserts a
/// stall whenever two braids would intersect (Section VIII-A); the harness
/// therefore uses dimension-ordered routing, so that mapping quality (edge
/// crossings, lengths) translates into realised latency the same way it does
/// in the paper. Adaptive routing remains available as an ablation
/// (`benches/ablation.rs`).
pub fn harness_eval_config() -> EvaluationConfig {
    EvaluationConfig {
        sim: msfu_sim::SimConfig::dimension_ordered(),
    }
}

/// Force-directed configuration scaled to the problem size: large factories
/// get fewer sweeps and a smaller repulsion sample so the harness stays
/// tractable, mirroring the paper's observation that FD is the most expensive
/// procedure (Section VI-B3).
pub fn scaled_fd_config(seed: u64, num_qubits: usize) -> ForceDirectedConfig {
    let (iterations, sample) = if num_qubits > 1500 {
        (8, 4_000)
    } else if num_qubits > 500 {
        (15, 8_000)
    } else {
        (30, 20_000)
    };
    ForceDirectedConfig {
        seed,
        iterations,
        repulsion_sample: sample,
        ..ForceDirectedConfig::default()
    }
}

/// The strategy line-up used by the Fig. 10 / Table I sweeps for a given
/// factory configuration (FD iteration counts scale with factory size).
pub fn lineup_for(config: &FactoryConfig, seed: u64) -> Vec<Strategy> {
    let qubits = config.total_modules() * config.qubits_per_module();
    vec![
        Strategy::Random { seed },
        Strategy::Linear,
        Strategy::ForceDirected(scaled_fd_config(seed, qubits)),
        Strategy::GraphPartition { seed },
        Strategy::HierarchicalStitching(StitchingConfig {
            seed,
            ..StitchingConfig::default()
        }),
    ]
}

/// Evaluates a strategy under both reuse policies and returns the evaluation
/// with the smaller quantum volume, together with the policy that won. This is
/// how the paper selects the configuration for its final plots
/// (Section VIII-C1).
pub fn evaluate_best_reuse(
    capacity: usize,
    levels: usize,
    strategy: &Strategy,
) -> Result<(Evaluation, ReusePolicy), msfu_core::CoreError> {
    let mut best: Option<(Evaluation, ReusePolicy)> = None;
    for policy in [ReusePolicy::Reuse, ReusePolicy::NoReuse] {
        let config = FactoryConfig::from_total_capacity(capacity, levels)
            .expect("capacity is an exact power")
            .with_reuse(policy);
        let eval = evaluate(&config, strategy, &harness_eval_config())?;
        match &best {
            Some((b, _)) if b.volume <= eval.volume => {}
            _ => best = Some((eval, policy)),
        }
    }
    Ok(best.expect("both policies evaluated"))
}

/// Evaluates a strategy under a specific reuse policy.
pub fn evaluate_with_reuse(
    capacity: usize,
    levels: usize,
    strategy: &Strategy,
    policy: ReusePolicy,
) -> Result<Evaluation, msfu_core::CoreError> {
    let config = FactoryConfig::from_total_capacity(capacity, levels)
        .expect("capacity is an exact power")
        .with_reuse(policy);
    evaluate(&config, strategy, &harness_eval_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_sweeps_are_subsets_of_full() {
        let q1 = Mode::Quick.single_level_capacities();
        let f1 = Mode::Full.single_level_capacities();
        assert!(q1.iter().all(|c| f1.contains(c)));
        let q2 = Mode::Quick.two_level_capacities();
        let f2 = Mode::Full.two_level_capacities();
        assert!(q2.iter().all(|c| f2.contains(c)));
        assert!(Mode::Quick.fig6_samples() < Mode::Full.fig6_samples());
    }

    #[test]
    fn full_mode_matches_paper_capacities() {
        assert_eq!(Mode::Full.two_level_capacities(), vec![4, 16, 36, 64, 100]);
        assert!(Mode::Full.single_level_capacities().contains(&24));
    }

    #[test]
    fn scaled_fd_config_shrinks_with_size() {
        let small = scaled_fd_config(1, 100);
        let big = scaled_fd_config(1, 3000);
        assert!(big.iterations < small.iterations);
        assert!(big.repulsion_sample < small.repulsion_sample);
    }

    #[test]
    fn lineup_contains_all_five_strategies() {
        let lineup = lineup_for(&FactoryConfig::two_level(2), 1);
        let names: Vec<&str> = lineup.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["Random", "Line", "FD", "GP", "HS"]);
    }

    #[test]
    fn evaluate_with_reuse_runs_end_to_end() {
        let eval = evaluate_with_reuse(2, 1, &Strategy::Linear, ReusePolicy::Reuse).unwrap();
        assert!(eval.latency_cycles > 0);
    }
}
