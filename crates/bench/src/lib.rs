//! # msfu-bench
//!
//! Benchmark harness that regenerates every table and figure of the MSFU
//! paper's evaluation (Section VIII).
//!
//! Every binary is a thin *declarative* layer over the parallel sweep engine
//! of `msfu_core::sweep`: it assembles one [`SweepSpec`] naming all of its
//! `FactoryConfig × Strategy` points, hands it to [`run_spec`] (which executes
//! the grid across all cores with each distinct factory built exactly once),
//! and then only formats rows out of the returned [`SweepResults`]. None of
//! the binaries contains an evaluation loop of its own.
//!
//! | Binary    | Paper artefact | Content |
//! |-----------|----------------|---------|
//! | `fig6`    | Fig. 6         | correlation of edge crossings / length / spacing with simulated latency over randomised mappings |
//! | `fig7`    | Fig. 7a/7b     | FD and GP latency vs capacity against the critical-path lower bound |
//! | `fig9`    | Fig. 9a–9d     | qubit reuse vs no-reuse volume differentials; permutation-step latency per hop strategy |
//! | `fig10`   | Fig. 10a–10f   | latency / area / volume for every strategy, single- and two-level |
//! | `table1`  | Table I        | quantum volumes for Random, Line(NR), Line(R), FD, GP, HS and the critical bound |
//!
//! Shared command-line flags (see [`HarnessArgs`]):
//!
//! * `full` — sweep the paper's complete capacity range (default: a reduced
//!   grid that completes in minutes on a laptop);
//! * `serial` — run the sweep sequentially instead of in parallel (the
//!   baseline for speedup measurements; results are bit-identical);
//! * `--json` — additionally serialise the full [`SweepResults`] to
//!   `BENCH_<name>.json` so perf trajectories can be tracked over time.
//!
//! Criterion benches (`cargo bench -p msfu-bench`) measure the runtime
//! scalability of the mapping algorithms themselves (Section VI-B3) and the
//! ablations called out in DESIGN.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod perf;

use std::time::Duration;

use serde::Serialize;

use msfu_core::{
    EvaluationConfig, NoProgress, SearchReport, SearchSpec, Strategy, StreamReport, StreamSpec,
    SweepIndex, SweepResults, SweepRow, SweepSpec,
};
use msfu_distill::{FactoryConfig, ReusePolicy};
use msfu_layout::{ForceDirectedConfig, StitchingConfig};
use msfu_service::{JobHandle, Payload, Request, Service};

use crate::perf::PerfStamp;

/// Execution mode of a figure/table binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reduced parameter sweep (default): completes in minutes.
    Quick,
    /// The paper's full parameter sweep.
    Full,
}

impl Mode {
    /// Parses the mode from the process arguments: any argument equal to
    /// `full` selects [`Mode::Full`].
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// Single-level capacities to sweep (Fig. 10a/b/e, Table I level 1).
    pub fn single_level_capacities(self) -> Vec<usize> {
        match self {
            Mode::Quick => vec![2, 4, 8],
            Mode::Full => vec![2, 4, 6, 8, 12, 16, 20, 24],
        }
    }

    /// Two-level total capacities to sweep (Fig. 10c/d/f, Table I level 2).
    pub fn two_level_capacities(self) -> Vec<usize> {
        match self {
            Mode::Quick => vec![4, 16],
            Mode::Full => vec![4, 16, 36, 64, 100],
        }
    }

    /// Number of randomised mappings for the Fig. 6 correlation study.
    pub fn fig6_samples(self) -> usize {
        match self {
            Mode::Quick => 40,
            Mode::Full => 200,
        }
    }
}

/// The command-line surface shared by every harness binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Reduced or full parameter sweep.
    pub mode: Mode,
    /// Run the sweep sequentially (speedup baseline) instead of in parallel.
    pub serial: bool,
    /// Also write the sweep results to `BENCH_<name>.json`.
    pub json: bool,
    /// Lane-batching width override (`--lanes <K>`; 0 disables batching).
    /// `None` keeps the spec's own width.
    pub lanes: Option<usize>,
    /// Persistent evaluation-cache directory (`--cache-dir <DIR>`): already
    /// simulated evaluations are served from disk, new ones appended. Rows
    /// are byte-identical with or without it. `None` keeps runs memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl HarnessArgs {
    /// Parses `full`, `serial`, `--json`, `--lanes <K>` and
    /// `--cache-dir <DIR>` out of the process arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--lanes` is missing its value or the value is not a
    /// non-negative integer, or when `--cache-dir` is missing its directory.
    pub fn from_env() -> Self {
        let mut args = HarnessArgs {
            mode: Mode::from_args(),
            serial: false,
            json: false,
            lanes: None,
            cache_dir: None,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "serial" | "--serial" => args.serial = true,
                "--json" => args.json = true,
                "--lanes" => {
                    let value = argv.get(i + 1).unwrap_or_else(|| {
                        panic!("--lanes requires a value (0 disables batching)")
                    });
                    args.lanes = Some(
                        value
                            .parse()
                            .unwrap_or_else(|_| panic!("--lanes: `{value}` is not a lane count")),
                    );
                    i += 1;
                }
                "--cache-dir" => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("--cache-dir requires a directory"));
                    args.cache_dir = Some(value.into());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        args
    }
}

/// A `BENCH_<name>.json` report: the sweep results plus the perf stamp the
/// regression gate (`bench-diff`) compares run over run.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// The sweep's name.
    pub name: String,
    /// Wall-time/throughput stamp for this run.
    pub perf: PerfStamp,
    /// The sweep results (deterministic across machines and thread counts).
    pub results: SweepResults,
}

/// Executes a sweep according to the harness arguments by submitting it as a
/// [`Request`] to the service façade: parallel by default, serial when
/// requested, timing reported on stderr, and a [`BenchReport`] (results +
/// perf stamp) serialised to `BENCH_<name>.json` when `--json` was passed.
///
/// Every figure/table binary therefore exercises the exact code path a
/// server or queue worker uses; results are identical to calling
/// [`SweepSpec::run`] directly.
///
/// # Panics
///
/// Panics if any sweep point fails to evaluate (the harness sweeps are all
/// valid configurations) or if the JSON report cannot be written.
pub fn run_spec(spec: &SweepSpec, args: &HarnessArgs) -> SweepResults {
    let mut spec = spec.clone();
    if let Some(lanes) = args.lanes {
        spec = spec.with_lanes(lanes);
    }
    if let Some(dir) = &args.cache_dir {
        spec = spec.with_cache_dir(dir.clone());
    }
    let spec = &spec;
    // Cache and batch counters are sampled from the process-wide totals
    // around the service call: the per-run counters live on `SweepOutcome`,
    // which the service facade's pinned `Response` shape does not expose.
    // Each harness binary runs exactly one job per process, so the delta is
    // that job's — a multi-job host must not reuse this sampling pattern.
    let cache_before = msfu_core::process_cache_stats();
    let batch_before = msfu_core::process_batch_stats();
    let request = Request::sweep(spec.name.clone(), spec.clone()).with_serial(args.serial);
    let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
    let cache = msfu_core::process_cache_stats().since(&cache_before);
    let batch = msfu_core::process_batch_stats().since(&batch_before);
    let results = match response.result {
        Ok(Payload::Sweep(results)) => results,
        Ok(_) => unreachable!("a sweep request yields a sweep payload"),
        Err(error) => panic!("sweep evaluation failed: {error}"),
    };
    let wall = Duration::from_secs_f64(response.perf.wall_seconds);
    eprintln!(
        "[sweep {}] {} points in {:.2?} ({}); eval cache {} hits / {} misses ({:.0}% hit rate){}",
        spec.name,
        spec.points.len(),
        wall,
        if args.serial { "serial" } else { "parallel" },
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        disk_summary(&cache, spec.cache_dir.is_some()),
    );
    if args.json {
        // The run's counters carry the process-wide maximum lane width; pin
        // the stamp to this spec's effective width instead.
        let batch = (spec.lanes > 1).then(|| msfu_core::BatchStats {
            lane_capacity: spec.lanes.min(msfu_sim::MAX_LANES),
            ..batch
        });
        let stamp = perf::stamp(spec, &results, wall, !args.serial, Some(cache), batch);
        eprintln!(
            "[sweep {}] {:.0} cycles/s{}{}{}",
            spec.name,
            stamp.cycles_per_second,
            stamp
                .dense
                .as_ref()
                .map(|d| {
                    format!(
                        "; dense point {}/{}/{}: event-driven {:.1}x vs reference",
                        d.label, d.strategy, d.capacity, d.speedup
                    )
                })
                .unwrap_or_default(),
            stamp
                .mapping
                .as_ref()
                .map(|m| {
                    format!(
                        "; mapping {}/{}/{} ({} qubits): delta-cost {:.1}x vs full recompute",
                        m.label, m.strategy, m.capacity, m.qubits, m.speedup
                    )
                })
                .unwrap_or_default(),
            stamp
                .batch
                .as_ref()
                .map(|b| {
                    format!(
                        "; batch {} lanes, {:.0}% occupancy: {:.1}x vs sequential",
                        b.lane_capacity,
                        b.occupancy * 100.0,
                        b.speedup_vs_sequential
                    )
                })
                .unwrap_or_default()
        );
        let report = BenchReport {
            name: spec.name.clone(),
            perf: stamp,
            results: results.clone(),
        };
        let path = format!("BENCH_{}.json", spec.name);
        let text = serde_json::to_string_pretty(&report).expect("results serialise");
        std::fs::write(&path, text).expect("JSON report is writable");
        eprintln!("[sweep {}] wrote {path}", spec.name);
    }
    results
}

/// The persistent-tier suffix of the harness cache log line, printed only
/// when a cache directory is in play (the CI warm-start gate greps it).
fn disk_summary(cache: &msfu_core::CacheStats, persistent: bool) -> String {
    if !persistent {
        return String::new();
    }
    format!(
        "; disk {} hits / {} loaded / {} persisted",
        cache.disk_hits, cache.loaded, cache.persisted
    )
}

/// Wall-time stamp of a search run (the search analogue of
/// [`PerfStamp`]; `bench-diff` reads `wall_seconds`).
#[derive(Debug, Clone, Serialize)]
pub struct SearchPerf {
    /// End-to-end search wall time in seconds.
    pub wall_seconds: f64,
    /// Whether batches ran on all cores or serially.
    pub parallel: bool,
    /// Candidates evaluated.
    pub evaluations: usize,
    /// `evaluations / wall_seconds`.
    pub evaluations_per_second: f64,
    /// Evaluation-cache counters of the run (candidates that converged to an
    /// already simulated layout were answered from the cache).
    pub cache: msfu_core::CacheStats,
}

/// The `BENCH_<name>.json` document for a search run.
#[derive(Debug, Clone, Serialize)]
pub struct SearchBenchReport {
    /// The search's name.
    pub name: String,
    /// Wall-time stamp for this run.
    pub perf: SearchPerf,
    /// Entry-best and incumbent rows in sweep shape (what `bench-diff`
    /// gates).
    pub results: SweepResults,
    /// The full search report.
    pub search: SearchReport,
}

/// Executes a portfolio search by submitting it as a [`Request`] to the
/// service façade: timing reported on stderr and a [`SearchBenchReport`]
/// written to `BENCH_<name>.json` when `json` is set — the exact shape the
/// `bench-diff` regression gate compares.
///
/// # Errors
///
/// Returns the service error message on any spec/mapping/simulation failure
/// or when the report cannot be written.
pub fn run_search_spec(
    spec: &SearchSpec,
    serial: bool,
    json: bool,
    cache_dir: Option<&std::path::Path>,
) -> Result<SearchReport, String> {
    let mut spec = spec.clone();
    if let Some(dir) = cache_dir {
        // An explicit flag overrides the spec's own cache_dir.
        spec.cache_dir = Some(dir.to_path_buf());
    }
    let spec = &spec;
    // Process-wide delta sampling: valid because each harness binary runs a
    // single job per process (see the note in `run_spec`).
    let cache_before = msfu_core::process_cache_stats();
    let request = Request::search(spec.name.clone(), spec.clone()).with_serial(serial);
    let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
    let cache = msfu_core::process_cache_stats().since(&cache_before);
    let report = match response.result {
        Ok(Payload::Search(report)) => *report,
        Ok(_) => unreachable!("a search request yields a search payload"),
        Err(error) => return Err(error.to_string()),
    };
    let wall_seconds = response.perf.wall_seconds;
    eprintln!(
        "[search {}] {} candidates in {:.2?} ({}); eval cache {} hits / {} misses \
         ({:.0}% hit rate){}",
        report.name,
        report.evaluations,
        Duration::from_secs_f64(wall_seconds),
        if serial { "serial" } else { "parallel" },
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        disk_summary(&cache, spec.cache_dir.is_some()),
    );
    if json {
        let bench = SearchBenchReport {
            name: report.name.clone(),
            perf: SearchPerf {
                wall_seconds,
                parallel: !serial,
                evaluations: report.evaluations,
                evaluations_per_second: if wall_seconds > 0.0 {
                    report.evaluations as f64 / wall_seconds
                } else {
                    0.0
                },
                cache,
            },
            results: report.to_sweep_results(),
            search: report.clone(),
        };
        let path = format!("BENCH_{}.json", bench.name);
        let text = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[search {}] wrote {path}", bench.name);
    }
    Ok(report)
}

/// Observability-only per-scheduler counters inside a stream perf stamp.
///
/// `bench-diff` ignores unknown perf fields, so nothing in here is gated;
/// regressions are caught through the `results` rows (p50/p99/throughput
/// per scheduler) instead.
#[derive(Debug, Clone, Serialize)]
pub struct StreamSchedulerPerf {
    /// Registered scheduler name.
    pub scheduler: String,
    /// Fraction of fleet server-cycles spent busy.
    pub utilization: f64,
    /// Deepest queue observed during the run.
    pub max_queue_depth: u64,
    /// Setup costs paid on class switches (including cold starts).
    pub setup_switches: u64,
}

/// Wall-time stamp of a streaming run (the stream analogue of
/// [`PerfStamp`]; `bench-diff` reads `wall_seconds`).
#[derive(Debug, Clone, Serialize)]
pub struct StreamPerf {
    /// End-to-end wall time in seconds (all schedulers).
    pub wall_seconds: f64,
    /// Jobs injected per scheduler run.
    pub arrivals: u64,
    /// Jobs completed across all scheduler runs divided by wall time.
    pub jobs_per_second: f64,
    /// Evaluation-cache counters of the run (per-class service times are
    /// answered from the shared cache after the first scheduler's run).
    pub cache: msfu_core::CacheStats,
    /// Per-scheduler observability counters (never gated).
    pub stream: Vec<StreamSchedulerPerf>,
}

/// The `BENCH_<name>.json` document for a streaming run.
#[derive(Debug, Clone, Serialize)]
pub struct StreamBenchReport {
    /// The stream's name.
    pub name: String,
    /// Wall-time stamp for this run.
    pub perf: StreamPerf,
    /// Per-scheduler p50/p99/throughput rows in sweep shape (what
    /// `bench-diff` gates).
    pub results: SweepResults,
    /// The full streaming report.
    pub stream: StreamReport,
}

/// Executes a streaming workload by submitting it as a [`Request`] to the
/// service façade: timing reported on stderr and a [`StreamBenchReport`]
/// written to `BENCH_<name>.json` when `json` is set — the exact shape the
/// `bench-diff` regression gate compares.
///
/// The streaming engine advances one shared clock, so `serial` changes
/// nothing; it is accepted for CLI symmetry with the sweep/search harnesses
/// and recorded nowhere.
///
/// # Errors
///
/// Returns the service error message on any spec/mapping/simulation failure
/// or when the report cannot be written.
pub fn run_stream_spec(
    spec: &StreamSpec,
    serial: bool,
    json: bool,
    cache_dir: Option<&std::path::Path>,
) -> Result<StreamReport, String> {
    let mut spec = spec.clone();
    if let Some(dir) = cache_dir {
        // An explicit flag overrides the spec's own cache_dir.
        spec.cache_dir = Some(dir.to_path_buf());
    }
    let spec = &spec;
    // Process-wide delta sampling: valid because each harness binary runs a
    // single job per process (see the note in `run_spec`).
    let cache_before = msfu_core::process_cache_stats();
    let request = Request::stream(spec.name.clone(), spec.clone()).with_serial(serial);
    let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
    let cache = msfu_core::process_cache_stats().since(&cache_before);
    let report = match response.result {
        Ok(Payload::Stream(report)) => *report,
        Ok(_) => unreachable!("a stream request yields a stream payload"),
        Err(error) => return Err(error.to_string()),
    };
    let wall_seconds = response.perf.wall_seconds;
    let completed: u64 = report.runs.iter().map(|r| r.completed).sum();
    eprintln!(
        "[stream {}] {} arrivals x {} scheduler(s) in {:.2?}; eval cache {} hits / {} misses \
         ({:.0}% hit rate){}",
        report.name,
        report.arrivals,
        report.runs.len(),
        Duration::from_secs_f64(wall_seconds),
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        disk_summary(&cache, spec.cache_dir.is_some()),
    );
    if json {
        let bench = StreamBenchReport {
            name: report.name.clone(),
            perf: StreamPerf {
                wall_seconds,
                arrivals: report.arrivals,
                jobs_per_second: if wall_seconds > 0.0 {
                    completed as f64 / wall_seconds
                } else {
                    0.0
                },
                cache,
                stream: report
                    .runs
                    .iter()
                    .map(|r| StreamSchedulerPerf {
                        scheduler: r.scheduler.clone(),
                        utilization: r.utilization,
                        max_queue_depth: r.max_queue_depth,
                        setup_switches: r.setup_switches,
                    })
                    .collect(),
            },
            results: report.to_sweep_results(),
            stream: report.clone(),
        };
        let path = format!("BENCH_{}.json", bench.name);
        let text = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[stream {}] wrote {path}", bench.name);
    }
    Ok(report)
}

/// The evaluation configuration used by every harness binary.
///
/// The paper's simulator routes each braid along a fixed path and inserts a
/// stall whenever two braids would intersect (Section VIII-A); the harness
/// therefore uses dimension-ordered routing, so that mapping quality (edge
/// crossings, lengths) translates into realised latency the same way it does
/// in the paper. Adaptive routing remains available as an ablation
/// (`benches/ablation.rs`).
pub fn harness_eval_config() -> EvaluationConfig {
    EvaluationConfig::default().with_sim(msfu_sim::SimConfig::dimension_ordered())
}

/// Force-directed configuration scaled to the problem size: large factories
/// get fewer sweeps and a smaller repulsion sample so the harness stays
/// tractable, mirroring the paper's observation that FD is the most expensive
/// procedure (Section VI-B3).
pub fn scaled_fd_config(seed: u64, num_qubits: usize) -> ForceDirectedConfig {
    let (iterations, sample) = if num_qubits > 1500 {
        (8, 4_000)
    } else if num_qubits > 500 {
        (15, 8_000)
    } else {
        (30, 20_000)
    };
    ForceDirectedConfig {
        seed,
        iterations,
        repulsion_sample: sample,
        ..ForceDirectedConfig::default()
    }
}

/// The strategy line-up used by the Fig. 10 / Table I sweeps for a given
/// factory configuration (FD iteration counts scale with factory size).
pub fn lineup_for(config: &FactoryConfig, seed: u64) -> Vec<Strategy> {
    let qubits = config.total_modules() * config.qubits_per_module();
    vec![
        Strategy::random(seed),
        Strategy::linear(),
        Strategy::force_directed(scaled_fd_config(seed, qubits)),
        Strategy::graph_partition(seed),
        Strategy::hierarchical_stitching(StitchingConfig {
            seed,
            ..StitchingConfig::default()
        }),
    ]
}

/// The Fig. 7 sweep: single- and two-level factories across the mode's
/// capacity range, mapped by {FD, GP} under qubit reuse. Shared by the
/// `fig7` binary and by the JSON sweep-spec round-trip test
/// (`tests/registry_sweep.rs`), which asserts that the same grid declared as
/// pure JSON data reproduces these results byte-identically.
pub fn fig7_spec(mode: Mode, seed: u64) -> SweepSpec {
    let mut spec = SweepSpec::new("fig7", harness_eval_config());
    for (label, levels, capacities) in [
        ("single", 1, mode.single_level_capacities()),
        ("double", 2, mode.two_level_capacities()),
    ] {
        for &capacity in &capacities {
            let config = FactoryConfig::from_total_capacity(capacity, levels)
                .expect("capacity is an exact power")
                .with_reuse(ReusePolicy::Reuse);
            spec = spec.grid(label, &[config], |c| {
                let qubits = c.total_modules() * c.qubits_per_module();
                vec![
                    Strategy::force_directed(scaled_fd_config(seed, qubits)),
                    Strategy::graph_partition(seed),
                ]
            });
        }
    }
    spec
}

/// Both reuse variants of a total-capacity configuration, reuse first.
///
/// # Panics
///
/// Panics when `capacity` is not an exact `levels`-th power.
pub fn reuse_variants(capacity: usize, levels: usize) -> [FactoryConfig; 2] {
    let base =
        FactoryConfig::from_total_capacity(capacity, levels).expect("capacity is an exact power");
    [
        base.with_reuse(ReusePolicy::Reuse),
        base.with_reuse(ReusePolicy::NoReuse),
    ]
}

/// Of the rows matching `label`, `strategy` and `capacity`, returns the one
/// with the smallest quantum volume — how the paper picks each strategy's
/// better reuse policy for its final plots (Section VIII-C1).
///
/// Takes the results' [`SweepIndex`] (build it once per table with
/// [`SweepResults::index`]) so per-cell lookups are O(1) instead of a scan
/// over every row.
pub fn best_reuse_row<'a>(
    index: &SweepIndex<'a>,
    label: &str,
    strategy: &str,
    capacity: usize,
) -> Option<&'a SweepRow> {
    index.best_reuse(label, strategy, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_sweeps_are_subsets_of_full() {
        let q1 = Mode::Quick.single_level_capacities();
        let f1 = Mode::Full.single_level_capacities();
        assert!(q1.iter().all(|c| f1.contains(c)));
        let q2 = Mode::Quick.two_level_capacities();
        let f2 = Mode::Full.two_level_capacities();
        assert!(q2.iter().all(|c| f2.contains(c)));
        assert!(Mode::Quick.fig6_samples() < Mode::Full.fig6_samples());
    }

    #[test]
    fn full_mode_matches_paper_capacities() {
        assert_eq!(Mode::Full.two_level_capacities(), vec![4, 16, 36, 64, 100]);
        assert!(Mode::Full.single_level_capacities().contains(&24));
    }

    #[test]
    fn scaled_fd_config_shrinks_with_size() {
        let small = scaled_fd_config(1, 100);
        let big = scaled_fd_config(1, 3000);
        assert!(big.iterations < small.iterations);
        assert!(big.repulsion_sample < small.repulsion_sample);
    }

    #[test]
    fn lineup_contains_all_five_strategies() {
        let lineup = lineup_for(&FactoryConfig::two_level(2), 1);
        let names: Vec<&str> = lineup.iter().map(|s| s.short_name()).collect();
        assert_eq!(names, vec!["Random", "Line", "FD", "GP", "HS"]);
    }

    #[test]
    fn reuse_variants_cover_both_policies() {
        let [r, nr] = reuse_variants(16, 2);
        assert_eq!(r.reuse, ReusePolicy::Reuse);
        assert_eq!(nr.reuse, ReusePolicy::NoReuse);
        assert_eq!(r.capacity(), 16);
        assert_eq!(nr.k, 4);
    }

    #[test]
    fn best_reuse_row_picks_the_smaller_volume() {
        let spec = SweepSpec::new("t", harness_eval_config())
            .point("x", reuse_variants(4, 2)[0], Strategy::linear())
            .point("x", reuse_variants(4, 2)[1], Strategy::linear());
        let results = spec.run().unwrap();
        let best = best_reuse_row(&results.index(), "x", "Line", 4).unwrap();
        let volumes: Vec<u64> = results.rows.iter().map(|r| r.evaluation.volume).collect();
        assert_eq!(best.evaluation.volume, *volumes.iter().min().unwrap());
    }
}
