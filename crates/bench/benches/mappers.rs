//! Criterion benchmarks of the mapping algorithms' runtime scalability
//! (Section VI-B3 of the paper compares the per-iteration complexity of the
//! force-directed and graph-partitioning procedures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msfu_distill::{Factory, FactoryConfig};
use msfu_layout::{
    FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, GraphPartitionMapper,
    HierarchicalStitchingMapper, LinearMapper,
};

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mappers");
    group.sample_size(10);

    for k in [2usize, 4, 8] {
        let factory = Factory::build(&FactoryConfig::single_level(k)).unwrap();

        group.bench_with_input(BenchmarkId::new("linear", k), &factory, |b, f| {
            b.iter(|| LinearMapper::new().map_factory(f).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("graph-partition", k), &factory, |b, f| {
            b.iter(|| GraphPartitionMapper::new(1).map_factory(f).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("force-directed", k), &factory, |b, f| {
            let cfg = ForceDirectedConfig {
                iterations: 5,
                repulsion_sample: 1_000,
                ..ForceDirectedConfig::default()
            };
            b.iter(|| {
                ForceDirectedMapper::with_config(cfg)
                    .map_factory(f)
                    .unwrap()
            })
        });
    }

    // Hierarchical stitching on a small two-level factory.
    let two_level = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    group.bench_function("hierarchical-stitching/two-level-k2", |b| {
        b.iter(|| {
            HierarchicalStitchingMapper::new(1)
                .map_factory(&two_level)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
