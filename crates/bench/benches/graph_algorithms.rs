//! Criterion benchmarks of the interaction-graph algorithms (metrics,
//! community detection, partitioning) that back the mappers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use msfu_distill::{Factory, FactoryConfig};
use msfu_graph::{community, metrics, partition, InteractionGraph};
use msfu_layout::{FactoryMapper, LinearMapper};

fn bench_graph_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph-algorithms");
    group.sample_size(10);

    for k in [4usize, 8] {
        let factory = Factory::build(&FactoryConfig::single_level(k)).unwrap();
        let graph = InteractionGraph::from_circuit(factory.circuit());
        let layout = LinearMapper::new().map_factory(&factory).unwrap();
        let points = layout.mapping.to_points();

        group.bench_with_input(BenchmarkId::new("edge-crossings", k), &graph, |b, g| {
            b.iter(|| metrics::edge_crossings(g, &points))
        });
        group.bench_with_input(BenchmarkId::new("mapping-metrics", k), &graph, |b, g| {
            b.iter(|| metrics::MappingMetrics::compute(g, &points))
        });
        group.bench_with_input(BenchmarkId::new("louvain", k), &graph, |b, g| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                community::louvain(g, &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("bisect", k), &graph, |b, g| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                partition::bisect(g, &mut rng)
            })
        });
    }

    // A two-level interaction graph, which is larger and non-planar.
    let two_level = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    let graph = InteractionGraph::from_circuit(two_level.circuit());
    group.bench_function("recursive-bisection/two-level-k2", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            partition::recursive_bisection(&graph, 16, &mut rng)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_graph_algorithms);
criterion_main!(benches);
