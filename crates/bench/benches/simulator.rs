//! Criterion benchmarks of the cycle-accurate braid simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use msfu_distill::{Factory, FactoryConfig};
use msfu_layout::{FactoryMapper, GraphPartitionMapper, LinearMapper};
use msfu_sim::{SimConfig, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    for k in [2usize, 4, 8] {
        let factory = Factory::build(&FactoryConfig::single_level(k)).unwrap();
        let linear = LinearMapper::new().map_factory(&factory).unwrap();
        let gp = GraphPartitionMapper::new(1).map_factory(&factory).unwrap();

        group.bench_with_input(
            BenchmarkId::new("adaptive/linear-layout", k),
            &(&factory, &linear),
            |b, (f, l)| {
                b.iter(|| {
                    Simulator::new(SimConfig::default())
                        .run(f.circuit(), l)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive/gp-layout", k),
            &(&factory, &gp),
            |b, (f, l)| {
                b.iter(|| {
                    Simulator::new(SimConfig::default())
                        .run(f.circuit(), l)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dimension-ordered/linear-layout", k),
            &(&factory, &linear),
            |b, (f, l)| {
                b.iter(|| {
                    Simulator::new(SimConfig::dimension_ordered())
                        .run(f.circuit(), l)
                        .unwrap()
                })
            },
        );
    }

    // A small two-level factory end to end.
    let two_level = Factory::build(&FactoryConfig::two_level(2)).unwrap();
    let layout = LinearMapper::new().map_factory(&two_level).unwrap();
    group.bench_function("adaptive/two-level-k2", |b| {
        b.iter(|| {
            Simulator::new(SimConfig::default())
                .run(two_level.circuit(), &layout)
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
