//! Ablation benchmarks for the design choices called out in DESIGN.md.
//!
//! These benches report *quality* trade-offs through Criterion timing of the
//! full evaluate pipeline under different switches; the resulting volumes are
//! printed to stderr once per configuration so the ablation outcome is
//! visible in the bench log:
//!
//! * barriers between rounds: on vs off;
//! * routing policy: adaptive vs dimension-ordered;
//! * dipole heuristic in the force-directed mapper: on vs off;
//! * intermediate hops in hierarchical stitching: none vs annealed midpoint.

use criterion::{criterion_group, criterion_main, Criterion};

use msfu_core::{evaluate, EvaluationConfig, Strategy};
use msfu_distill::FactoryConfig;
use msfu_layout::{ForceDirectedConfig, HopStrategy, StitchingConfig};
use msfu_sim::SimConfig;

fn print_volume(
    label: &str,
    cfg: &FactoryConfig,
    strategy: &Strategy,
    eval_cfg: &EvaluationConfig,
) {
    match evaluate(cfg, strategy, eval_cfg) {
        Ok(e) => eprintln!("[ablation] {label}: volume = {}", e.volume),
        Err(e) => eprintln!("[ablation] {label}: failed ({e})"),
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let eval_cfg = EvaluationConfig::default();
    let dimension_ordered = EvaluationConfig::default().with_sim(SimConfig::dimension_ordered());
    let two_level = FactoryConfig::two_level(2);
    let no_barriers = two_level.with_barriers(false);

    // Barrier ablation (GP mapper, two-level factory).
    print_volume(
        "barriers-on/GP",
        &two_level,
        &Strategy::graph_partition(1),
        &eval_cfg,
    );
    print_volume(
        "barriers-off/GP",
        &no_barriers,
        &Strategy::graph_partition(1),
        &eval_cfg,
    );
    group.bench_function("barriers-on/GP", |b| {
        b.iter(|| evaluate(&two_level, &Strategy::graph_partition(1), &eval_cfg).unwrap())
    });
    group.bench_function("barriers-off/GP", |b| {
        b.iter(|| evaluate(&no_barriers, &Strategy::graph_partition(1), &eval_cfg).unwrap())
    });

    // Routing policy ablation (linear mapper, single-level factory).
    let single = FactoryConfig::single_level(4);
    print_volume(
        "adaptive-routing/Line",
        &single,
        &Strategy::linear(),
        &eval_cfg,
    );
    print_volume(
        "dimension-ordered/Line",
        &single,
        &Strategy::linear(),
        &dimension_ordered,
    );
    group.bench_function("adaptive-routing/Line", |b| {
        b.iter(|| evaluate(&single, &Strategy::linear(), &eval_cfg).unwrap())
    });
    group.bench_function("dimension-ordered/Line", |b| {
        b.iter(|| evaluate(&single, &Strategy::linear(), &dimension_ordered).unwrap())
    });

    // Dipole-heuristic ablation (FD mapper, single-level factory).
    let fd_with = Strategy::force_directed(ForceDirectedConfig {
        seed: 1,
        iterations: 8,
        repulsion_sample: 1_000,
        ..ForceDirectedConfig::default()
    });
    let fd_without = Strategy::force_directed(ForceDirectedConfig {
        seed: 1,
        iterations: 8,
        repulsion_sample: 1_000,
        dipole: 0.0,
        ..ForceDirectedConfig::default()
    });
    print_volume("fd-dipole-on", &single, &fd_with, &eval_cfg);
    print_volume("fd-dipole-off", &single, &fd_without, &eval_cfg);
    group.bench_function("fd-dipole-on", |b| {
        b.iter(|| evaluate(&single, &fd_with, &eval_cfg).unwrap())
    });
    group.bench_function("fd-dipole-off", |b| {
        b.iter(|| evaluate(&single, &fd_without, &eval_cfg).unwrap())
    });

    // Intermediate-hop ablation (HS mapper, two-level factory).
    let hs_hops = Strategy::hierarchical_stitching(StitchingConfig {
        seed: 1,
        ..StitchingConfig::default()
    });
    let hs_no_hops = Strategy::hierarchical_stitching(StitchingConfig {
        seed: 1,
        hop_strategy: HopStrategy::None,
        ..StitchingConfig::default()
    });
    print_volume("hs-annealed-midpoint-hops", &two_level, &hs_hops, &eval_cfg);
    print_volume("hs-no-hops", &two_level, &hs_no_hops, &eval_cfg);
    group.bench_function("hs-annealed-midpoint-hops", |b| {
        b.iter(|| evaluate(&two_level, &hs_hops, &eval_cfg).unwrap())
    });
    group.bench_function("hs-no-hops", |b| {
        b.iter(|| evaluate(&two_level, &hs_no_hops, &eval_cfg).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
