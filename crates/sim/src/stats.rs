//! Simulation results and statistics.

use serde::{Deserialize, Serialize};

/// Timing of one gate as realised by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateTiming {
    /// Cycle at which every dependency of the gate had completed.
    pub ready: u64,
    /// Cycle at which the gate acquired its resources and began executing.
    pub start: u64,
    /// Cycle at which the gate finished.
    pub finish: u64,
}

impl GateTiming {
    /// Cycles the gate spent ready but stalled waiting for mesh resources.
    pub fn stall(&self) -> u64 {
        self.start - self.ready
    }

    /// Execution duration of the gate.
    pub fn duration(&self) -> u64 {
        self.finish - self.start
    }
}

/// Result of simulating a circuit on a mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total realised latency in cycles (the finish time of the last gate).
    pub cycles: u64,
    /// Logical-qubit area consumed (bounding box of the placement).
    pub area: usize,
    /// Per-gate timing, indexed by gate id.
    pub timings: Vec<GateTiming>,
    /// Total number of stall cycles across all gates.
    pub stall_cycles: u64,
    /// Number of gates that stalled at least one cycle.
    pub stalled_gates: usize,
    /// Number of braid routing attempts that failed due to congestion.
    pub routing_conflicts: u64,
}

impl SimResult {
    /// Consumed space-time (quantum) volume: `area × cycles`, the headline
    /// metric of the paper (qubits × cycles).
    pub fn volume(&self) -> u64 {
        self.area as u64 * self.cycles
    }

    /// Mean stall per gate in cycles.
    pub fn mean_stall(&self) -> f64 {
        if self.timings.is_empty() {
            0.0
        } else {
            self.stall_cycles as f64 / self.timings.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_timing_derived_quantities() {
        let t = GateTiming {
            ready: 3,
            start: 7,
            finish: 10,
        };
        assert_eq!(t.stall(), 4);
        assert_eq!(t.duration(), 3);
    }

    #[test]
    fn volume_and_mean_stall() {
        let r = SimResult {
            cycles: 100,
            area: 25,
            timings: vec![
                GateTiming {
                    ready: 0,
                    start: 0,
                    finish: 2,
                },
                GateTiming {
                    ready: 2,
                    start: 6,
                    finish: 8,
                },
            ],
            stall_cycles: 4,
            stalled_gates: 1,
            routing_conflicts: 2,
        };
        assert_eq!(r.volume(), 2500);
        assert_eq!(r.mean_stall(), 2.0);
    }

    #[test]
    fn empty_result_mean_stall_is_zero() {
        let r = SimResult {
            cycles: 0,
            area: 0,
            timings: vec![],
            stall_cycles: 0,
            stalled_gates: 0,
            routing_conflicts: 0,
        };
        assert_eq!(r.mean_stall(), 0.0);
        assert_eq!(r.volume(), 0);
    }
}
