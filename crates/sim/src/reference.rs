//! The original per-run braid simulator, kept as a reference implementation.
//!
//! [`crate::SimEngine`] is the production engine: it reuses its arenas across
//! runs, caches static cell sets and drives time through a bucketed event
//! wheel. This module preserves the straightforward implementation it
//! replaced — fresh allocations everywhere, `BTreeSet` ready queue,
//! `BinaryHeap` event queue, braid paths materialised through [`BraidPath`] on
//! every routing attempt. It exists so differential tests (and the perf
//! harness) can assert, run after run, that the optimised engine produces
//! byte-identical [`SimResult`]s; it is not meant to be used for new code.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use msfu_circuit::{Circuit, Gate, GateId, QubitId};
use msfu_layout::{Coord, Layout, Mapping, RoutingHints};

use crate::braid::{adaptive_path, dimension_ordered_path, BraidPath};
use crate::{GateTiming, Result, RoutingPolicy, SimConfig, SimError, SimResult};

/// Simulates `circuit` under `layout` with the reference algorithm.
///
/// Behaviourally identical to [`crate::SimEngine::run`] (asserted by the
/// equivalence suite in `tests/engine_equivalence.rs`), roughly an order of
/// magnitude slower on contended meshes.
///
/// # Errors
///
/// Returns [`SimError::UnmappedQubit`] when a gate references an unplaced
/// qubit, [`SimError::EmptyGrid`] for an empty mesh, and
/// [`SimError::CycleLimitExceeded`] if the simulation runs past the
/// configured limit.
pub fn run(config: &SimConfig, circuit: &Circuit, layout: &Layout) -> Result<SimResult> {
    let mapping = &layout.mapping;
    if mapping.grid_area() == 0 {
        return Err(SimError::EmptyGrid);
    }
    // Validate that every referenced qubit is placed.
    for gate in circuit.gates() {
        for q in gate.qubits() {
            if mapping.position(q).is_none() {
                return Err(SimError::UnmappedQubit { qubit: q });
            }
        }
    }

    let n = circuit.num_gates();
    if n == 0 {
        return Ok(SimResult {
            cycles: 0,
            area: mapping.used_area(),
            timings: Vec::new(),
            stall_cycles: 0,
            stalled_gates: 0,
            routing_conflicts: 0,
        });
    }

    let dag = circuit.dependency_dag();
    let mut pending: Vec<usize> = (0..n)
        .map(|g| dag.predecessors(GateId::new(g as u32)).len())
        .collect();
    let mut ready: BTreeSet<usize> = (0..n).filter(|g| pending[*g] == 0).collect();
    let mut ready_time: Vec<u64> = vec![0; n];
    let mut timings: Vec<Option<GateTiming>> = vec![None; n];

    // Busy cells: reserved by currently executing braids.
    let width = mapping.width();
    let height = mapping.height();
    let mut busy = vec![false; width * height];
    let cell_idx = |c: Coord| c.row * width + c.col;

    // Active operations: min-heap of (finish, gate).
    let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut reserved: Vec<Vec<Coord>> = vec![Vec::new(); n];

    let mut now: u64 = 0;
    let mut completed = 0usize;
    let mut routing_conflicts: u64 = 0;
    let mut max_finish: u64 = 0;

    while completed < n {
        if now > config.cycle_limit {
            return Err(SimError::CycleLimitExceeded {
                limit: config.cycle_limit,
            });
        }

        // Issue as many ready gates as possible at the current time.
        loop {
            let mut started_any = false;
            let candidates: Vec<usize> = ready.iter().copied().collect();
            for g in candidates {
                let gate = &circuit.gates()[g];
                let cells =
                    match acquire_cells(config, gate, mapping, &layout.hints, &busy, width, height)
                    {
                        Some(cells) => cells,
                        None => {
                            routing_conflicts += 1;
                            continue;
                        }
                    };
                // Reserve and start.
                for c in &cells {
                    busy[cell_idx(*c)] = true;
                }
                let duration = config.latency.cycles(gate);
                let finish = now + duration;
                timings[g] = Some(GateTiming {
                    ready: ready_time[g],
                    start: now,
                    finish,
                });
                ready.remove(&g);
                if duration == 0 {
                    // Zero-duration gates (barriers) complete immediately.
                    completed += 1;
                    max_finish = max_finish.max(finish);
                    for succ in dag.successors(GateId::new(g as u32)) {
                        let s = succ.index();
                        pending[s] -= 1;
                        if pending[s] == 0 {
                            ready_time[s] = now;
                            ready.insert(s);
                        }
                    }
                } else {
                    reserved[g] = cells;
                    active.push(Reverse((finish, g)));
                }
                started_any = true;
            }
            if !started_any {
                break;
            }
        }

        if completed == n {
            break;
        }

        // Advance to the next completion event.
        let Reverse((finish, _)) = match active.peek() {
            Some(ev) => *ev,
            None => {
                // Nothing active and nothing could start: the ready gates
                // are permanently blocked (cannot happen on an empty mesh,
                // but guard against it rather than spinning forever).
                return Err(SimError::CycleLimitExceeded {
                    limit: config.cycle_limit,
                });
            }
        };
        now = finish;
        while let Some(Reverse((f, g))) = active.peek().copied() {
            if f != now {
                break;
            }
            active.pop();
            for c in reserved[g].drain(..) {
                busy[cell_idx(c)] = false;
            }
            completed += 1;
            max_finish = max_finish.max(f);
            for succ in dag.successors(GateId::new(g as u32)) {
                let s = succ.index();
                pending[s] -= 1;
                if pending[s] == 0 {
                    ready_time[s] = now;
                    ready.insert(s);
                }
            }
        }
    }

    let timings: Vec<GateTiming> = timings
        .into_iter()
        .map(|t| t.expect("all gates timed"))
        .collect();
    let stall_cycles: u64 = timings.iter().map(GateTiming::stall).sum();
    let stalled_gates = timings.iter().filter(|t| t.stall() > 0).count();
    Ok(SimResult {
        cycles: max_finish,
        area: mapping.used_area(),
        timings,
        stall_cycles,
        stalled_gates,
        routing_conflicts,
    })
}

/// Computes the cell set a gate needs, or `None` if it cannot currently be
/// routed/placed because of busy cells.
fn acquire_cells(
    config: &SimConfig,
    gate: &Gate,
    mapping: &Mapping,
    hints: &RoutingHints,
    busy: &[bool],
    width: usize,
    height: usize,
) -> Option<Vec<Coord>> {
    let cell_idx = |c: Coord| c.row * width + c.col;
    let is_busy = |c: Coord| busy[cell_idx(c)];
    let pos = |q: QubitId| mapping.position(q).expect("validated before simulation");

    match gate {
        Gate::Barrier(_) => Some(Vec::new()),
        Gate::H(q)
        | Gate::X(q)
        | Gate::Z(q)
        | Gate::S(q)
        | Gate::Sdg(q)
        | Gate::T(q)
        | Gate::Tdg(q)
        | Gate::MeasX(q)
        | Gate::MeasZ(q)
        | Gate::Init(q) => {
            let c = pos(*q);
            if is_busy(c) {
                None
            } else {
                Some(vec![c])
            }
        }
        Gate::Cnot { control, target } => route_pair(
            config,
            pos(*control),
            pos(*target),
            hints.waypoint(*control, *target),
            &is_busy,
            mapping,
            width,
            height,
        )
        .map(|b| b.cells().to_vec()),
        Gate::InjectT { raw, target } | Gate::InjectTdg { raw, target } => route_pair(
            config,
            pos(*raw),
            pos(*target),
            hints.waypoint(*raw, *target),
            &is_busy,
            mapping,
            width,
            height,
        )
        .map(|b| b.cells().to_vec()),
        Gate::Cxx { control, targets } => {
            let c = pos(*control);
            let mut merged = BraidPath::new(vec![c]);
            for t in targets {
                let leg = route_pair(
                    config,
                    c,
                    pos(*t),
                    hints.waypoint(*control, *t),
                    &is_busy,
                    mapping,
                    width,
                    height,
                )?;
                merged.merge(&leg);
            }
            Some(merged.cells().to_vec())
        }
    }
}

/// Routes a braid between two cells, optionally via a waypoint, under the
/// configured routing policy. Returns `None` when the braid cannot avoid
/// busy cells (adaptive) or its fixed path is blocked (dimension ordered).
#[allow(clippy::too_many_arguments)]
fn route_pair(
    config: &SimConfig,
    from: Coord,
    to: Coord,
    waypoint: Option<Coord>,
    is_busy: &dyn Fn(Coord) -> bool,
    mapping: &Mapping,
    width: usize,
    height: usize,
) -> Option<BraidPath> {
    // Adaptive routing prefers corridors over cells that host idle
    // resident qubits: braiding over a resident tile blocks that qubit's
    // own operations, so it carries a traversal penalty.
    let occupancy_penalty = |c: Coord| -> u64 {
        if mapping.occupant(c).is_some() {
            4
        } else {
            0
        }
    };
    let route_leg = |a: Coord, b: Coord| -> Option<BraidPath> {
        match config.routing {
            RoutingPolicy::DimensionOrdered => {
                let path = dimension_ordered_path(a, b);
                if path.cells().iter().any(|c| is_busy(*c)) {
                    None
                } else {
                    Some(path)
                }
            }
            RoutingPolicy::Adaptive => {
                if is_busy(a) || is_busy(b) {
                    return None;
                }
                adaptive_path(a, b, width, height, is_busy, &occupancy_penalty)
            }
        }
    };
    match waypoint {
        None => route_leg(from, to),
        Some(w) => {
            let mut first = route_leg(from, w)?;
            let second = route_leg(w, to)?;
            first.merge(&second);
            Some(first)
        }
    }
}
