//! Braid path construction on the mesh.

use msfu_layout::Coord;

/// A braid: the ordered list of mesh cells a two-qubit interaction reserves
/// for its duration (endpoints included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BraidPath {
    cells: Vec<Coord>,
}

impl BraidPath {
    /// Creates a braid from an explicit cell list (duplicates are removed,
    /// preserving first occurrence).
    pub fn new(cells: Vec<Coord>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let cells = cells.into_iter().filter(|c| seen.insert(*c)).collect();
        BraidPath { cells }
    }

    /// The cells of the braid.
    pub fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Number of cells occupied.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` for an empty braid.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Merges another braid into this one (union of cells).
    pub fn merge(&mut self, other: &BraidPath) {
        for c in &other.cells {
            if !self.cells.contains(c) {
                self.cells.push(*c);
            }
        }
    }

    /// Returns `true` when the braid shares a cell with `other`.
    pub fn intersects(&self, other: &BraidPath) -> bool {
        self.cells.iter().any(|c| other.cells.contains(c))
    }
}

/// Deterministic dimension-ordered (L-shaped) path: walk along the row of
/// `from` to the column of `to`, then along that column to `to`.
pub fn dimension_ordered_path(from: Coord, to: Coord) -> BraidPath {
    let mut cells = Vec::new();
    let mut col = from.col;
    cells.push(from);
    while col != to.col {
        if col < to.col {
            col += 1;
        } else {
            col -= 1;
        }
        cells.push(Coord::new(from.row, col));
    }
    let mut row = from.row;
    while row != to.row {
        if row < to.row {
            row += 1;
        } else {
            row -= 1;
        }
        cells.push(Coord::new(row, to.col));
    }
    BraidPath::new(cells)
}

/// Adaptive cheapest path from `from` to `to` on a `width`×`height` grid.
///
/// Cells for which `busy` returns `true` are forbidden (the endpoints are
/// always allowed); every other cell costs `1 + penalty(cell)` to traverse,
/// which lets the router prefer free corridors over cells that hold idle
/// resident qubits. Returns `None` when no path avoiding busy cells exists.
pub fn adaptive_path(
    from: Coord,
    to: Coord,
    width: usize,
    height: usize,
    busy: &dyn Fn(Coord) -> bool,
    penalty: &dyn Fn(Coord) -> u64,
) -> Option<BraidPath> {
    if from == to {
        return Some(BraidPath::new(vec![from]));
    }
    let idx = |c: Coord| c.row * width + c.col;
    let mut dist: Vec<u64> = vec![u64::MAX; width * height];
    let mut prev: Vec<Option<Coord>> = vec![None; width * height];
    dist[idx(from)] = 0;
    // Dijkstra over the grid (small node count, binary heap is plenty).
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, Coord)>> =
        std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, idx(from), from)));
    while let Some(std::cmp::Reverse((d, i, cell))) = heap.pop() {
        if d > dist[i] {
            continue;
        }
        if cell == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[idx(cur)] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(BraidPath::new(path));
        }
        for n in cell.neighbors(width, height) {
            if n != to && n != from && busy(n) {
                continue;
            }
            let step_cost = if n == to || n == from {
                1
            } else {
                1 + penalty(n)
            };
            let nd = d + step_cost;
            let ni = idx(n);
            if nd < dist[ni] {
                dist[ni] = nd;
                prev[ni] = Some(cell);
                heap.push(std::cmp::Reverse((nd, ni, n)));
            }
        }
    }
    None
}

/// Reusable workspace for [`adaptive_path_into`].
///
/// [`adaptive_path`] allocates `dist`/`prev` grids and a heap on every call,
/// which dominates routing cost when the simulator retries blocked braids.
/// The scratch holds those buffers across calls (and across simulation runs);
/// cheap epoch stamping replaces the per-call grid reset.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<u64>,
    prev: Vec<Coord>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize, Coord)>>,
}

impl DijkstraScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the grids for an `area`-cell mesh and opens a fresh epoch.
    fn begin(&mut self, area: usize) {
        if self.stamp.len() < area {
            self.dist.resize(area, 0);
            self.prev.resize(area, Coord::new(0, 0));
            self.stamp.resize(area, 0);
        }
        if self.epoch == u32::MAX {
            // Full clear, not just `..area`: stamps beyond the current mesh
            // would otherwise survive the wrap and collide with reused epoch
            // values if a later run grows the mesh again.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
    }

    fn dist(&self, i: usize) -> u64 {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            u64::MAX
        }
    }

    fn set_dist(&mut self, i: usize, d: u64) {
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
    }
}

/// Allocation-free variant of [`adaptive_path`]: identical path (same cost
/// function, same tie-breaking), with the Dijkstra state drawn from `scratch`
/// and the resulting cells appended to `out`. Returns `false` — leaving `out`
/// untouched — when no path avoiding busy cells exists.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_path_into(
    from: Coord,
    to: Coord,
    width: usize,
    height: usize,
    busy: &dyn Fn(Coord) -> bool,
    penalty: &dyn Fn(Coord) -> u64,
    scratch: &mut DijkstraScratch,
    out: &mut Vec<Coord>,
) -> bool {
    if from == to {
        out.push(from);
        return true;
    }
    let idx = |c: Coord| c.row * width + c.col;
    scratch.begin(width * height);
    scratch.set_dist(idx(from), 0);
    scratch.heap.push(std::cmp::Reverse((0, idx(from), from)));
    while let Some(std::cmp::Reverse((d, i, cell))) = scratch.heap.pop() {
        if d > scratch.dist(i) {
            continue;
        }
        if cell == to {
            let start = out.len();
            out.push(to);
            let mut cur = to;
            while cur != from {
                let p = scratch.prev[idx(cur)];
                out.push(p);
                cur = p;
            }
            out[start..].reverse();
            return true;
        }
        for n in cell.neighbors(width, height) {
            if n != to && n != from && busy(n) {
                continue;
            }
            let step_cost = if n == to || n == from {
                1
            } else {
                1 + penalty(n)
            };
            let nd = d + step_cost;
            let ni = idx(n);
            if nd < scratch.dist(ni) {
                scratch.set_dist(ni, nd);
                scratch.prev[ni] = cell;
                scratch.heap.push(std::cmp::Reverse((nd, ni, n)));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_path_connects_endpoints() {
        let p = dimension_ordered_path(Coord::new(0, 0), Coord::new(3, 2));
        assert_eq!(p.cells().first(), Some(&Coord::new(0, 0)));
        assert_eq!(p.cells().last(), Some(&Coord::new(3, 2)));
        // Manhattan distance 5 means 6 cells.
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn l_path_same_cell_is_single() {
        let p = dimension_ordered_path(Coord::new(2, 2), Coord::new(2, 2));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn l_path_reverse_direction() {
        let p = dimension_ordered_path(Coord::new(3, 4), Coord::new(1, 1));
        assert_eq!(p.cells().first(), Some(&Coord::new(3, 4)));
        assert_eq!(p.cells().last(), Some(&Coord::new(1, 1)));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn adaptive_path_matches_manhattan_when_clear() {
        let p =
            adaptive_path(Coord::new(0, 0), Coord::new(2, 3), 5, 5, &|_| false, &|_| 0).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.cells().first(), Some(&Coord::new(0, 0)));
        assert_eq!(p.cells().last(), Some(&Coord::new(2, 3)));
    }

    #[test]
    fn adaptive_path_detours_around_busy_cells() {
        // Block the middle column except the top row.
        let busy = |c: Coord| c.col == 2 && c.row > 0;
        let p = adaptive_path(Coord::new(4, 0), Coord::new(4, 4), 5, 5, &busy, &|_| 0).unwrap();
        assert!(p.len() > 9, "detour must be longer than the direct path");
        for c in p.cells() {
            assert!(!(c.col == 2 && c.row > 0), "path used a busy cell {c}");
        }
    }

    #[test]
    fn adaptive_path_prefers_unoccupied_corridors() {
        // A direct path over two occupied cells vs a detour through a free
        // row: with a stiff penalty the detour wins.
        let occupied = |c: Coord| c.row == 0 && (c.col == 1 || c.col == 2);
        let p = adaptive_path(Coord::new(0, 0), Coord::new(0, 3), 4, 2, &|_| false, &|c| {
            if occupied(c) {
                10
            } else {
                0
            }
        })
        .unwrap();
        assert!(
            p.cells().iter().any(|c| c.row == 1),
            "path should detour through row 1"
        );
        assert!(!p.cells().iter().any(|c| occupied(*c)));
    }

    #[test]
    fn adaptive_path_fails_when_fully_blocked() {
        let busy = |c: Coord| c.col == 2;
        assert!(adaptive_path(Coord::new(0, 0), Coord::new(0, 4), 5, 5, &busy, &|_| 0).is_none());
    }

    #[test]
    fn braid_merge_and_intersect() {
        let mut a = BraidPath::new(vec![Coord::new(0, 0), Coord::new(0, 1)]);
        let b = BraidPath::new(vec![Coord::new(0, 1), Coord::new(0, 2)]);
        assert!(a.intersects(&b));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        let c = BraidPath::new(vec![Coord::new(5, 5)]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn braid_new_dedups() {
        let p = BraidPath::new(vec![Coord::new(0, 0), Coord::new(0, 0), Coord::new(1, 0)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
