//! Lane-batched simulation: up to [`MAX_LANES`] compatible runs stepped in
//! lockstep through one shared event wheel.
//!
//! A sweep evaluates many points that share the circuit and the mesh
//! dimensions and differ only in placement, seed or routing policy.
//! [`BatchEngine`] exploits that: the dependency DAG, the gate-duration
//! table and the event wheel are built **once per batch**, while every piece
//! of per-run state — busy grids, sorted ready sets, reserved cell spans,
//! gate timings — lives in structure-of-arrays arenas laid out as
//! `[lane * stride + slot]` flat slices. A lane-active mask lets finished or
//! errored lanes drop out without disturbing the rest.
//!
//! Each lane advances through exactly the event sequence the solo
//! [`SimEngine`](crate::SimEngine) would produce: the shared wheel merely
//! interleaves the lanes' completion times, and within one completion time
//! the per-lane processing order is identical to the solo engine's. Every
//! lane therefore yields a byte-identical [`SimResult`] — the
//! `batch_equivalence` suite gates this the same way `engine_equivalence`
//! gated the event-driven engine.
//!
//! Lane compatibility rules: one circuit for the whole batch, equal mesh
//! width and height across lanes (placements may differ), at most
//! [`MAX_LANES`] lanes, and `lanes × gates` small enough to encode events in
//! 32 bits. Routing policy may vary per lane; latency model and cycle limit
//! come from the engine's [`SimConfig`].

use msfu_circuit::{Circuit, DependencyDag, GateId};
use msfu_layout::Layout;

use crate::engine::{CellSpan, Router};
use crate::events::EventWheel;
use crate::{GateTiming, Result, RoutingPolicy, SimConfig, SimError, SimResult};

/// Hard cap on the number of lanes one batch may hold. Keeps the arena
/// footprint bounded; sweeps split larger groups into several batches.
pub const MAX_LANES: usize = 64;

/// One run of a batch: a placement (and optional routing-policy override)
/// for the shared circuit.
#[derive(Debug, Clone, Copy)]
pub struct BatchLane<'a> {
    layout: &'a Layout,
    routing: Option<RoutingPolicy>,
}

impl<'a> BatchLane<'a> {
    /// A lane simulating the shared circuit under `layout`, routed with the
    /// engine's configured policy.
    pub fn new(layout: &'a Layout) -> Self {
        BatchLane {
            layout,
            routing: None,
        }
    }

    /// Overrides the routing policy for this lane only.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = Some(routing);
        self
    }

    /// The lane's placement.
    pub fn layout(&self) -> &'a Layout {
        self.layout
    }
}

/// The lane-batched braid network simulator.
///
/// Construct one engine and call [`BatchEngine::run`] repeatedly: like
/// [`SimEngine`](crate::SimEngine), each run resets but does not reallocate
/// the arenas, so a sweep threads one batch engine through many batches
/// without touching the allocator on the hot path.
#[derive(Debug, Default)]
pub struct BatchEngine {
    config: SimConfig,
    /// Unresolved dependency count, `[lane * n + gate]`.
    pending: Vec<u32>,
    /// Per-lane sorted ready segments, `[lane * n ..]`; live prefix length
    /// in `ready_len`.
    ready: Vec<u32>,
    /// Live length of each lane's ready segment.
    ready_len: Vec<usize>,
    /// Snapshot of one lane's ready segment at the top of an issue pass.
    candidates: Vec<u32>,
    /// Cycle at which each gate became ready, `[lane * n + gate]`.
    ready_time: Vec<u64>,
    /// Busy flags, `[lane * area + cell]`.
    busy: Vec<bool>,
    /// Cached static cell set per gate, `[lane * n + gate]`.
    static_cells: Vec<CellSpan>,
    /// Cells currently reserved by each active gate, `[lane * n + gate]`.
    reserved: Vec<CellSpan>,
    /// Per-gate issue/finish times, `[lane * n + gate]`.
    timings: Vec<GateTiming>,
    /// Shared completion-event queue; events carry `lane * n + gate`.
    wheel: EventWheel,
    /// Events popped at the current time (drain buffer).
    completions: Vec<u32>,
    /// Shared cell pool and routing scratch.
    router: Router,
    /// Gate durations, shared by every lane.
    durations: Vec<u64>,
    /// Dependency counts of a fresh run (copied into each lane's `pending`).
    pending_template: Vec<u32>,
    /// Gates with no predecessors, ascending.
    roots: Vec<u32>,
    /// Completed-gate count per lane.
    completed: Vec<usize>,
    /// Routing-conflict count per lane.
    conflicts: Vec<u64>,
    /// Latest finish time per lane.
    max_finish: Vec<u64>,
    /// Events still in the wheel per lane.
    queued: Vec<usize>,
    /// Lane-active mask: false once a lane finished or errored.
    active: Vec<bool>,
    /// Lanes with completions at the current event time.
    touched: Vec<bool>,
}

impl BatchEngine {
    /// Creates a batch engine with the given configuration. Arenas start
    /// empty and grow to the largest batch simulated.
    pub fn new(config: SimConfig) -> Self {
        BatchEngine {
            config,
            ..BatchEngine::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replaces the configuration for subsequent runs, keeping the arenas.
    pub fn set_config(&mut self, config: SimConfig) {
        self.config = config;
    }

    /// Simulates `circuit` once per lane, in lockstep.
    ///
    /// The outer `Result` rejects incompatible batches
    /// ([`SimError::LaneMismatch`]: mismatched grid dimensions, more than
    /// [`MAX_LANES`] lanes, or an oversized `lanes × gates` product) before
    /// any lane runs. The inner per-lane results carry exactly what the solo
    /// [`SimEngine`](crate::SimEngine) would return for that lane — including
    /// per-lane [`SimError::UnmappedQubit`] / [`SimError::EmptyGrid`] /
    /// [`SimError::CycleLimitExceeded`] errors, which never disturb the other
    /// lanes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LaneMismatch`] when the lanes cannot share one
    /// event wheel; per-lane simulation errors are reported inside the
    /// returned vector.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &mut self,
        circuit: &Circuit,
        lanes: &[BatchLane<'_>],
    ) -> Result<Vec<Result<SimResult>>> {
        let k = lanes.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        if k > MAX_LANES {
            return Err(SimError::LaneMismatch {
                reason: format!("{k} lanes exceed the batch maximum of {MAX_LANES}"),
            });
        }
        let width = lanes[0].layout.mapping.width();
        let height = lanes[0].layout.mapping.height();
        for (l, lane) in lanes.iter().enumerate().skip(1) {
            let m = &lane.layout.mapping;
            if m.width() != width || m.height() != height {
                return Err(SimError::LaneMismatch {
                    reason: format!(
                        "lane {l} grid is {}x{}, lane 0 grid is {width}x{height}",
                        m.width(),
                        m.height()
                    ),
                });
            }
        }
        let n = circuit.num_gates();
        if (k as u64) * (n as u64) > u32::MAX as u64 {
            return Err(SimError::LaneMismatch {
                reason: format!("{k} lanes x {n} gates overflow the 32-bit event code space"),
            });
        }
        let area = width * height;

        // Lanes resolved without simulation: validation errors and the
        // empty-circuit fast path, mirroring the solo engine's prologue.
        let mut out: Vec<Option<Result<SimResult>>> = Vec::with_capacity(k);
        self.active.clear();
        for lane in lanes {
            let resolved = self.prevalidate(circuit, lane, n);
            self.active.push(resolved.is_none());
            out.push(resolved);
        }
        let mut active_count = self.active.iter().filter(|&&a| a).count();

        if active_count > 0 {
            // Shared once-per-batch tables: the DAG, the duration table and
            // the event wheel are the fixed costs lane batching amortises.
            let dag = circuit.dependency_dag();
            let latency = self.config.latency;
            self.durations.clear();
            self.durations
                .extend(circuit.gates().iter().map(|g| latency.cycles(g)));
            let max_duration = self.durations.iter().copied().max().unwrap_or(1);
            self.wheel.reset(max_duration.max(1));
            self.pending_template.clear();
            self.pending_template
                .extend((0..n).map(|g| dag.predecessors(GateId::new(g as u32)).len() as u32));
            self.roots.clear();
            self.roots
                .extend((0..n as u32).filter(|&g| self.pending_template[g as usize] == 0));

            // Size the SoA arenas: `[lane * n + gate]` and `[lane * area +
            // cell]` flat arrays, every lane reset whether active or not.
            self.pending.clear();
            for _ in 0..k {
                let template = std::mem::take(&mut self.pending_template);
                self.pending.extend_from_slice(&template);
                self.pending_template = template;
            }
            self.ready.clear();
            self.ready.resize(k * n, 0);
            self.ready_len.clear();
            self.ready_len.resize(k, 0);
            for l in 0..k {
                let base = l * n;
                let roots = std::mem::take(&mut self.roots);
                self.ready[base..base + roots.len()].copy_from_slice(&roots);
                self.ready_len[l] = roots.len();
                self.roots = roots;
            }
            self.ready_time.clear();
            self.ready_time.resize(k * n, 0);
            self.static_cells.clear();
            self.static_cells.resize(k * n, CellSpan::UNCACHED);
            self.reserved.clear();
            self.reserved.resize(k * n, CellSpan::EMPTY);
            let zero = GateTiming {
                ready: 0,
                start: 0,
                finish: 0,
            };
            self.timings.clear();
            self.timings.resize(k * n, zero);
            self.busy.clear();
            self.busy.resize(k * area, false);
            self.router.reset(area);
            self.completed.clear();
            self.completed.resize(k, 0);
            self.conflicts.clear();
            self.conflicts.resize(k, 0);
            self.max_finish.clear();
            self.max_finish.resize(k, 0);
            self.queued.clear();
            self.queued.resize(k, 0);

            // Cycle 0: every lane's initial issue passes.
            for l in 0..k {
                if !self.active[l] {
                    continue;
                }
                self.issue_passes(l, 0, circuit, &dag, &lanes[l], n, area);
                self.resolve_after_issue(l, &mut out, lanes, n, &mut active_count);
            }

            // Event loop: jump to the next completion time anywhere in the
            // batch, then advance exactly the lanes completing there. Each
            // lane sees only its own subsequence of event times — the same
            // sequence the solo engine walks — and within one time the
            // per-lane order (release cells, promote successors, check the
            // limit, issue) matches the solo loop step for step.
            while active_count > 0 {
                let Some(t) = self.wheel.next_time() else {
                    // Unreachable defensively: an active lane always has at
                    // least one queued event (a lane with none resolved at
                    // its last issue), but guard rather than spin.
                    for (l, active) in self.active.iter_mut().enumerate() {
                        if *active {
                            out[l] = Some(Err(SimError::CycleLimitExceeded {
                                limit: self.config.cycle_limit,
                            }));
                            *active = false;
                        }
                    }
                    break;
                };
                let mut completions = std::mem::take(&mut self.completions);
                completions.clear();
                self.wheel.advance_to(t, &mut completions);
                self.touched.clear();
                self.touched.resize(k, false);
                for &code in &completions {
                    let l = code as usize / n;
                    self.queued[l] -= 1;
                    self.touched[l] = true;
                }
                for l in 0..k {
                    // Inactive lanes' stale events are drained and dropped.
                    if !self.touched[l] || !self.active[l] {
                        continue;
                    }
                    let base = l * n;
                    let grid = l * area;
                    for &code in &completions {
                        let idx = code as usize;
                        if idx < base || idx >= base + n {
                            continue;
                        }
                        let span = self.reserved[idx];
                        for c in span.start..span.start + span.len {
                            let cell = self.router.cells()[c as usize];
                            self.busy[grid + cell.row * width + cell.col] = false;
                        }
                        self.completed[l] += 1;
                        self.max_finish[l] = self.max_finish[l].max(t);
                        self.complete_gate(l, idx - base, t, &dag, n);
                    }
                    if self.completed[l] == n {
                        out[l] = Some(Ok(self.finish_lane(l, &lanes[l], n)));
                        self.active[l] = false;
                        active_count -= 1;
                        continue;
                    }
                    if t > self.config.cycle_limit {
                        out[l] = Some(Err(SimError::CycleLimitExceeded {
                            limit: self.config.cycle_limit,
                        }));
                        self.active[l] = false;
                        active_count -= 1;
                        continue;
                    }
                    self.issue_passes(l, t, circuit, &dag, &lanes[l], n, area);
                    self.resolve_after_issue(l, &mut out, lanes, n, &mut active_count);
                }
                self.completions = completions;
            }
        }

        Ok(out
            .into_iter()
            .map(|r| r.expect("every lane resolves to a result"))
            .collect())
    }

    /// Mirrors the solo engine's prologue for one lane: validation errors
    /// and the empty-circuit fast path resolve the lane without simulating.
    fn prevalidate(
        &self,
        circuit: &Circuit,
        lane: &BatchLane<'_>,
        n: usize,
    ) -> Option<Result<SimResult>> {
        let mapping = &lane.layout.mapping;
        if mapping.grid_area() == 0 {
            return Some(Err(SimError::EmptyGrid));
        }
        for gate in circuit.gates() {
            for q in gate.qubits() {
                if mapping.position(q).is_none() {
                    return Some(Err(SimError::UnmappedQubit { qubit: q }));
                }
            }
        }
        if n == 0 {
            return Some(Ok(SimResult {
                cycles: 0,
                area: mapping.used_area(),
                timings: Vec::new(),
                stall_cycles: 0,
                stalled_gates: 0,
                routing_conflicts: 0,
            }));
        }
        None
    }

    /// Greedy issue passes for one lane at time `now`, identical to the solo
    /// engine's inner loop: start every ready gate whose cells are free,
    /// repeat until a full pass starts nothing.
    #[allow(clippy::too_many_arguments)]
    fn issue_passes(
        &mut self,
        l: usize,
        now: u64,
        circuit: &Circuit,
        dag: &DependencyDag,
        lane: &BatchLane<'_>,
        n: usize,
        area: usize,
    ) {
        let mapping = &lane.layout.mapping;
        let hints = &lane.layout.hints;
        let routing = lane.routing.unwrap_or(self.config.routing);
        let width = mapping.width();
        let gates = circuit.gates();
        let base = l * n;
        let grid = l * area;
        loop {
            let mut started_any = false;
            self.candidates.clear();
            let len = self.ready_len[l];
            let ready = std::mem::take(&mut self.ready);
            self.candidates.extend_from_slice(&ready[base..base + len]);
            self.ready = ready;
            for i in 0..self.candidates.len() {
                let g = self.candidates[i] as usize;
                let gate = &gates[g];
                let acquired = self.router.try_acquire(
                    gate,
                    routing,
                    mapping,
                    hints,
                    &self.busy[grid..grid + area],
                    &mut self.static_cells[base + g],
                    &mut self.reserved[base + g],
                );
                if !acquired {
                    self.conflicts[l] += 1;
                    continue;
                }
                let span = self.reserved[base + g];
                for c in span.start..span.start + span.len {
                    let cell = self.router.cells()[c as usize];
                    self.busy[grid + cell.row * width + cell.col] = true;
                }
                let duration = self.durations[g];
                let finish = now + duration;
                self.timings[base + g] = GateTiming {
                    ready: self.ready_time[base + g],
                    start: now,
                    finish,
                };
                let len = self.ready_len[l];
                let pos = self.ready[base..base + len]
                    .binary_search(&(g as u32))
                    .expect("issued gate was ready");
                self.ready
                    .copy_within(base + pos + 1..base + len, base + pos);
                self.ready_len[l] = len - 1;
                if duration == 0 {
                    self.completed[l] += 1;
                    self.max_finish[l] = self.max_finish[l].max(finish);
                    self.complete_gate(l, g, now, dag, n);
                } else {
                    self.wheel.schedule(finish, (base + g) as u32);
                    self.queued[l] += 1;
                }
                started_any = true;
            }
            if !started_any {
                break;
            }
        }
    }

    /// Marks lane `l`'s gate `g` complete at `now`, promoting newly
    /// unblocked successors into the lane's sorted ready segment.
    fn complete_gate(&mut self, l: usize, g: usize, now: u64, dag: &DependencyDag, n: usize) {
        let base = l * n;
        for succ in dag.successors(GateId::new(g as u32)) {
            let s = succ.index();
            self.pending[base + s] -= 1;
            if self.pending[base + s] == 0 {
                self.ready_time[base + s] = now;
                let len = self.ready_len[l];
                let pos = self.ready[base..base + len]
                    .binary_search(&(s as u32))
                    .expect_err("a gate becomes ready exactly once");
                self.ready
                    .copy_within(base + pos..base + len, base + pos + 1);
                self.ready[base + pos] = s as u32;
                self.ready_len[l] = len + 1;
            }
        }
    }

    /// After an issue pass: a lane with every gate done yields its result; a
    /// lane with work left but nothing in flight is deadlocked (the solo
    /// engine's `next_time() == None` branch).
    fn resolve_after_issue(
        &mut self,
        l: usize,
        out: &mut [Option<Result<SimResult>>],
        lanes: &[BatchLane<'_>],
        n: usize,
        active_count: &mut usize,
    ) {
        if self.completed[l] == n {
            out[l] = Some(Ok(self.finish_lane(l, &lanes[l], n)));
        } else if self.queued[l] == 0 {
            out[l] = Some(Err(SimError::CycleLimitExceeded {
                limit: self.config.cycle_limit,
            }));
        } else {
            return;
        }
        self.active[l] = false;
        *active_count -= 1;
    }

    /// Assembles one finished lane's [`SimResult`], byte-identical to the
    /// solo engine's epilogue.
    fn finish_lane(&self, l: usize, lane: &BatchLane<'_>, n: usize) -> SimResult {
        let base = l * n;
        let timings: Vec<GateTiming> = self.timings[base..base + n].to_vec();
        let stall_cycles: u64 = timings.iter().map(GateTiming::stall).sum();
        let stalled_gates = timings.iter().filter(|t| t.stall() > 0).count();
        SimResult {
            cycles: self.max_finish[l],
            area: lane.layout.mapping.used_area(),
            timings,
            stall_cycles,
            stalled_gates,
            routing_conflicts: self.conflicts[l],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, SimEngine};
    use msfu_circuit::{CircuitBuilder, LatencyModel, QubitId, QubitRole};
    use msfu_layout::{Coord, Mapping};

    fn place_line(n: u32, width: usize, height: usize) -> Mapping {
        let mut m = Mapping::new(n as usize, width, height);
        for i in 0..n {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        m
    }

    fn crossing_circuit() -> msfu_circuit::Circuit {
        let mut b = CircuitBuilder::new("crossing");
        let q = b.register("q", QubitRole::Data, 6);
        b.cnot(q[0], q[5]).unwrap();
        b.cnot(q[1], q[4]).unwrap();
        b.cnot(q[2], q[3]).unwrap();
        b.build()
    }

    fn diagonal_mapping() -> Mapping {
        let mut m = Mapping::new(6, 6, 6);
        for i in 0..6u32 {
            m.place(QubitId::new(i), Coord::new(i as usize, i as usize))
                .unwrap();
        }
        m
    }

    #[test]
    fn single_lane_matches_solo_engine() {
        let c = crossing_circuit();
        let layout = msfu_layout::Layout::new(place_line(6, 6, 6));
        for config in [SimConfig::default(), SimConfig::dimension_ordered()] {
            let solo = SimEngine::new(config).run(&c, &layout).unwrap();
            let mut batch = BatchEngine::new(config);
            let results = batch.run(&c, &[BatchLane::new(&layout)]).unwrap();
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn mixed_routing_lanes_match_their_solo_runs() {
        let c = crossing_circuit();
        let line = msfu_layout::Layout::new(place_line(6, 6, 6));
        let diag = msfu_layout::Layout::new(diagonal_mapping());
        let policies = [RoutingPolicy::DimensionOrdered, RoutingPolicy::Adaptive];
        let mut batch = BatchEngine::new(SimConfig::default());
        let lanes: Vec<BatchLane<'_>> = policies
            .iter()
            .flat_map(|&p| {
                [
                    BatchLane::new(&line).with_routing(p),
                    BatchLane::new(&diag).with_routing(p),
                ]
            })
            .collect();
        let results = batch.run(&c, &lanes).unwrap();
        for (lane, result) in lanes.iter().zip(&results) {
            let config = SimConfig {
                routing: lane.routing.unwrap(),
                ..SimConfig::default()
            };
            let solo = SimEngine::new(config).run(&c, lane.layout()).unwrap();
            assert_eq!(result.as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn cycle_limit_aborts_one_lane_without_disturbing_the_other() {
        let c = crossing_circuit();
        let mut config = SimConfig::dimension_ordered();
        config.cycle_limit = LatencyModel::default().cnot;
        // The line placement serialises all three crossing braids and blows
        // the limit mid-run; the diagonal placement runs them in parallel
        // and finishes exactly at the limit.
        let line = msfu_layout::Layout::new(place_line(6, 6, 6));
        let diag = msfu_layout::Layout::new(diagonal_mapping());
        let mut batch = BatchEngine::new(config);
        let results = batch
            .run(&c, &[BatchLane::new(&line), BatchLane::new(&diag)])
            .unwrap();
        assert!(matches!(
            results[0],
            Err(SimError::CycleLimitExceeded { .. })
        ));
        let solo = SimEngine::new(config).run(&c, &diag).unwrap();
        assert_eq!(results[1].as_ref().unwrap(), &solo);
        // Solo agrees the line lane dies the same way.
        assert_eq!(
            SimEngine::new(config).run(&c, &line).unwrap_err(),
            results[0].clone().unwrap_err()
        );
    }

    #[test]
    fn mismatched_grids_are_rejected_before_any_lane_runs() {
        let c = crossing_circuit();
        let a = msfu_layout::Layout::new(place_line(6, 6, 6));
        let b = msfu_layout::Layout::new(place_line(6, 7, 6));
        let err = BatchEngine::new(SimConfig::default())
            .run(&c, &[BatchLane::new(&a), BatchLane::new(&b)])
            .unwrap_err();
        assert!(matches!(err, SimError::LaneMismatch { .. }));
        assert!(err.to_string().contains("7x6"));
    }

    #[test]
    fn too_many_lanes_are_rejected() {
        let c = crossing_circuit();
        let layout = msfu_layout::Layout::new(place_line(6, 6, 6));
        let lanes: Vec<BatchLane<'_>> = (0..MAX_LANES + 1)
            .map(|_| BatchLane::new(&layout))
            .collect();
        let err = BatchEngine::new(SimConfig::default())
            .run(&c, &lanes)
            .unwrap_err();
        assert!(matches!(err, SimError::LaneMismatch { .. }));
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let c = crossing_circuit();
        let results = BatchEngine::new(SimConfig::default()).run(&c, &[]).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn reused_batch_engine_matches_fresh_engines() {
        let c = crossing_circuit();
        let line = msfu_layout::Layout::new(place_line(6, 6, 6));
        let diag = msfu_layout::Layout::new(diagonal_mapping());
        let mut reused = BatchEngine::new(SimConfig::default());
        for _ in 0..3 {
            for lanes in [
                vec![BatchLane::new(&line), BatchLane::new(&diag)],
                vec![BatchLane::new(&diag)],
            ] {
                let warm = reused.run(&c, &lanes).unwrap();
                let cold = BatchEngine::new(SimConfig::default())
                    .run(&c, &lanes)
                    .unwrap();
                assert_eq!(warm, cold);
            }
        }
    }

    #[test]
    fn unmapped_lane_fails_alone() {
        let c = crossing_circuit();
        let good = msfu_layout::Layout::new(place_line(6, 6, 6));
        let bad = msfu_layout::Layout::new(Mapping::new(6, 6, 6)); // nothing placed
        let results = BatchEngine::new(SimConfig::default())
            .run(&c, &[BatchLane::new(&bad), BatchLane::new(&good)])
            .unwrap();
        assert!(matches!(results[0], Err(SimError::UnmappedQubit { .. })));
        let solo = SimEngine::new(SimConfig::default()).run(&c, &good).unwrap();
        assert_eq!(results[1].as_ref().unwrap(), &solo);
    }
}
