//! Simulator configuration.

use serde::{Deserialize, Serialize};

use msfu_circuit::LatencyModel;

/// How braid paths are chosen on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingPolicy {
    /// Deterministic L-shaped (dimension-ordered) paths: route along the row
    /// first, then along the column. Cheap but inflexible: crossing braids
    /// always conflict.
    DimensionOrdered,
    /// Adaptive shortest paths that detour around currently-busy cells (BFS).
    /// Mirrors the paper's observation that sophisticated routing can execute
    /// "crossing" braids in parallel.
    #[default]
    Adaptive,
}

impl RoutingPolicy {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::DimensionOrdered => "dimension-ordered",
            RoutingPolicy::Adaptive => "adaptive",
        }
    }
}

/// Configuration of the braid network simulator.
///
/// The struct is `#[non_exhaustive]` so new knobs can be added without a
/// semver break: construct it with [`SimConfig::default`] (or
/// [`SimConfig::dimension_ordered`]) and refine with the `with_*` builders.
/// Field reads and assignments remain available everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SimConfig {
    /// Per-gate latencies in logical cycles.
    pub latency: LatencyModel,
    /// Braid routing policy.
    pub routing: RoutingPolicy,
    /// Hard cycle limit; the simulation aborts with an error beyond it.
    pub cycle_limit: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::default(),
            routing: RoutingPolicy::Adaptive,
            cycle_limit: 50_000_000,
        }
    }
}

impl SimConfig {
    /// Configuration with dimension-ordered routing (used by ablation
    /// benches).
    pub fn dimension_ordered() -> Self {
        SimConfig::default().with_routing(RoutingPolicy::DimensionOrdered)
    }

    /// Replaces the routing policy (builder style).
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Replaces the hard cycle limit (builder style).
    pub fn with_cycle_limit(mut self, cycle_limit: u64) -> Self {
        self.cycle_limit = cycle_limit;
        self
    }

    /// Replaces the per-gate latency model (builder style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_adaptive_routing() {
        let c = SimConfig::default();
        assert_eq!(c.routing, RoutingPolicy::Adaptive);
        assert!(c.cycle_limit > 1_000_000);
    }

    #[test]
    fn dimension_ordered_constructor() {
        assert_eq!(
            SimConfig::dimension_ordered().routing,
            RoutingPolicy::DimensionOrdered
        );
    }

    #[test]
    fn builders_replace_single_fields() {
        let c = SimConfig::default()
            .with_routing(RoutingPolicy::DimensionOrdered)
            .with_cycle_limit(123);
        assert_eq!(c.routing, RoutingPolicy::DimensionOrdered);
        assert_eq!(c.cycle_limit, 123);
        assert_eq!(c.latency, SimConfig::default().latency);
    }

    #[test]
    fn policy_names_differ() {
        assert_ne!(
            RoutingPolicy::Adaptive.name(),
            RoutingPolicy::DimensionOrdered.name()
        );
    }
}
