//! # msfu-sim
//!
//! Cycle-accurate braid network simulator for surface-code meshes, built to
//! the behavioural description of the simulator used by the MSFU paper
//! (Section VIII-A, itself derived from Javadi-Abhari et al., MICRO 2017):
//!
//! * logical qubits live on the cells of a 2-D mesh (the
//!   [`Mapping`](msfu_layout::Mapping) produced by `msfu-layout`);
//! * a two-qubit gate is realised by a **braid**: a path of mesh cells
//!   reserved for the duration of the gate; braids may not overlap;
//! * braids are scheduled in parallel wherever the dependency structure and
//!   the mesh allow; when two braids would intersect, one stalls until the
//!   other completes;
//! * any data hazard (shared qubit between two gates) is treated as a true
//!   dependency;
//! * the multi-target CNOT (`CXX`) gate reserves the union of the paths from
//!   its control to every target;
//! * barriers synchronise: they start only after every earlier gate finished
//!   and block every later gate until they complete (they occupy no cells).
//!
//! Two routing policies are provided: deterministic dimension-ordered
//! (L-shaped) paths, and adaptive shortest paths that detour around busy
//! cells — the paper notes that smarter routing can execute crossing braids
//! in parallel.
//!
//! The simulator reports realised latency in cycles, per-gate timing, stall
//! statistics and the consumed space-time volume (area × cycles).
//!
//! # Example
//!
//! ```
//! use msfu_distill::{Factory, FactoryConfig};
//! use msfu_layout::{FactoryMapper, LinearMapper};
//! use msfu_sim::{SimConfig, Simulator};
//!
//! let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
//! let layout = LinearMapper::new().map_factory(&factory).unwrap();
//! let result = Simulator::new(SimConfig::default())
//!     .run(factory.circuit(), &layout)
//!     .unwrap();
//! assert!(result.cycles > 0);
//! assert!(result.cycles >= factory.circuit().critical_path_cycles(&SimConfig::default().latency));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
mod braid;
mod config;
mod engine;
mod error;
mod events;
pub mod reference;
mod stats;

pub use batch::{BatchEngine, BatchLane, MAX_LANES};
pub use braid::{
    adaptive_path, adaptive_path_into, dimension_ordered_path, BraidPath, DijkstraScratch,
};
pub use config::{RoutingPolicy, SimConfig};
pub use engine::{SimEngine, Simulator};
pub use error::SimError;
pub use stats::{GateTiming, SimResult};

/// Convenience result alias used by fallible APIs in this crate.
pub type Result<T> = std::result::Result<T, SimError>;
