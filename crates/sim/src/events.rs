//! Bucketed event queue keyed by completion cycle.
//!
//! The simulator schedules every event at `now + duration` where `duration`
//! is bounded by the latency model, so pending completion times always fall
//! inside a small window above the current cycle. [`EventWheel`] exploits
//! that: a ring of buckets (one per cycle in the window) gives O(1) schedule
//! and pop, and finding the next event is a short forward scan bounded by the
//! window size. Events beyond the window — possible only with exotic latency
//! models — spill into a binary-heap overflow so correctness never depends on
//! the sizing heuristic.
//!
//! The wheel is an arena: [`EventWheel::reset`] reuses the bucket allocations
//! across simulation runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ring size past which a duration is considered out-of-window and heaped.
/// Covers every stock latency model with plenty of slack; only a per-gate
/// duration above this pays the heap.
const MAX_HORIZON: u64 = 1 << 12;

/// A calendar-queue/binary-heap hybrid holding `(completion cycle, gate)`
/// events for the simulator.
#[derive(Debug, Default)]
pub(crate) struct EventWheel {
    /// Ring of buckets; the bucket for time `t` is `slots[t % horizon]`.
    slots: Vec<Vec<u32>>,
    /// Ring size in cycles.
    horizon: u64,
    /// Current time: every queued event is strictly later than this.
    now: u64,
    /// Number of events in the ring (excluding the overflow heap).
    in_ring: usize,
    /// Events scheduled more than `horizon - 1` cycles ahead.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
}

impl EventWheel {
    /// Clears the wheel and sizes the ring for durations up to
    /// `max_duration`, retaining bucket allocations where possible.
    pub(crate) fn reset(&mut self, max_duration: u64) {
        let horizon = (max_duration + 1).next_power_of_two().min(MAX_HORIZON);
        for slot in &mut self.slots {
            slot.clear();
        }
        self.slots.resize_with(horizon as usize, Vec::new);
        self.horizon = horizon;
        self.now = 0;
        self.in_ring = 0;
        self.overflow.clear();
    }

    /// True when no event is pending.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.in_ring == 0 && self.overflow.is_empty()
    }

    /// Queues `gate` to complete at cycle `finish`. `finish` must be strictly
    /// after the last [`EventWheel::advance_to`] time (zero-duration gates
    /// complete inline in the engine and never enter the wheel).
    pub(crate) fn schedule(&mut self, finish: u64, gate: u32) {
        debug_assert!(finish > self.now, "events must be scheduled in the future");
        if finish - self.now < self.horizon {
            self.slots[(finish % self.horizon) as usize].push(gate);
            self.in_ring += 1;
        } else {
            self.overflow.push(Reverse((finish, gate)));
        }
    }

    /// The earliest pending completion time, or `None` when empty.
    pub(crate) fn next_time(&self) -> Option<u64> {
        let heap_next = self.overflow.peek().map(|Reverse((t, _))| *t);
        if self.in_ring > 0 {
            // Ring events all lie in (now, now + horizon); scan forward.
            for t in self.now + 1..=self.now + self.horizon {
                if !self.slots[(t % self.horizon) as usize].is_empty() {
                    return Some(heap_next.map_or(t, |h| h.min(t)));
                }
            }
            debug_assert!(false, "in_ring > 0 but no occupied slot found");
        }
        heap_next
    }

    /// Moves time to `t`, appending every gate completing at `t` to `out`.
    /// Ring events beyond `t` are untouched; overflow events that have come
    /// inside the window migrate lazily on their own pop.
    pub(crate) fn advance_to(&mut self, t: u64, out: &mut Vec<u32>) {
        debug_assert!(t > self.now);
        self.now = t;
        let slot = &mut self.slots[(t % self.horizon) as usize];
        self.in_ring -= slot.len();
        out.append(slot);
        while let Some(Reverse((finish, gate))) = self.overflow.peek().copied() {
            if finish != t {
                break;
            }
            self.overflow.pop();
            out.push(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(wheel: &mut EventWheel) -> Vec<(u64, Vec<u32>)> {
        let mut out = Vec::new();
        while let Some(t) = wheel.next_time() {
            let mut gates = Vec::new();
            wheel.advance_to(t, &mut gates);
            gates.sort_unstable();
            out.push((t, gates));
        }
        out
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut wheel = EventWheel::default();
        wheel.reset(10);
        wheel.schedule(5, 1);
        wheel.schedule(2, 2);
        wheel.schedule(5, 3);
        wheel.schedule(9, 4);
        assert!(!wheel.is_empty());
        assert_eq!(
            drain_all(&mut wheel),
            vec![(2, vec![2]), (5, vec![1, 3]), (9, vec![4])]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn scheduling_continues_as_time_advances() {
        let mut wheel = EventWheel::default();
        wheel.reset(3);
        wheel.schedule(2, 0);
        let mut out = Vec::new();
        wheel.advance_to(2, &mut out);
        assert_eq!(out, vec![0]);
        // The ring wraps: times 3..=5 share slots with 0..=2.
        wheel.schedule(5, 1);
        wheel.schedule(3, 2);
        assert_eq!(wheel.next_time(), Some(3));
        assert_eq!(drain_all(&mut wheel), vec![(3, vec![2]), (5, vec![1])]);
    }

    #[test]
    fn far_events_overflow_to_the_heap() {
        let mut wheel = EventWheel::default();
        wheel.reset(1); // horizon 2: anything ≥ 2 cycles out overflows
        wheel.schedule(1, 0);
        wheel.schedule(100, 1);
        wheel.schedule(50, 2);
        assert_eq!(
            drain_all(&mut wheel),
            vec![(1, vec![0]), (50, vec![2]), (100, vec![1])]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn reset_reuses_the_wheel() {
        let mut wheel = EventWheel::default();
        wheel.reset(4);
        wheel.schedule(3, 7);
        wheel.reset(4);
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_time(), None);
        wheel.schedule(1, 8);
        assert_eq!(drain_all(&mut wheel), vec![(1, vec![8])]);
    }

    #[test]
    fn mixed_ring_and_overflow_next_time_is_global_min() {
        let mut wheel = EventWheel::default();
        wheel.reset(1);
        wheel.schedule(10, 1); // overflow
        assert_eq!(wheel.next_time(), Some(10));
        wheel.schedule(1, 2); // ring
        assert_eq!(wheel.next_time(), Some(1));
    }
}
