//! The event-driven braid simulation engine.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use msfu_circuit::{Circuit, Gate, GateId, QubitId};
use msfu_layout::{Coord, Layout, Mapping, RoutingHints};

use crate::braid::{adaptive_path, dimension_ordered_path, BraidPath};
use crate::{GateTiming, Result, RoutingPolicy, SimConfig, SimError, SimResult};

/// The braid network simulator.
///
/// See the crate-level documentation for the behavioural model. The engine is
/// event driven: time jumps from one gate-completion event to the next, and at
/// every event the ready gates are issued greedily in program order as long as
/// their braids can reserve non-overlapping cell sets.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `circuit` under the placement and routing hints of `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedQubit`] when a gate references an unplaced
    /// qubit, [`SimError::EmptyGrid`] for an empty mesh, and
    /// [`SimError::CycleLimitExceeded`] if the simulation runs past the
    /// configured limit.
    pub fn run(&self, circuit: &Circuit, layout: &Layout) -> Result<SimResult> {
        let mapping = &layout.mapping;
        if mapping.grid_area() == 0 {
            return Err(SimError::EmptyGrid);
        }
        // Validate that every referenced qubit is placed.
        for gate in circuit.gates() {
            for q in gate.qubits() {
                if mapping.position(q).is_none() {
                    return Err(SimError::UnmappedQubit { qubit: q });
                }
            }
        }

        let n = circuit.num_gates();
        if n == 0 {
            return Ok(SimResult {
                cycles: 0,
                area: mapping.used_area(),
                timings: Vec::new(),
                stall_cycles: 0,
                stalled_gates: 0,
                routing_conflicts: 0,
            });
        }

        let dag = circuit.dependency_dag();
        let mut pending: Vec<usize> = (0..n)
            .map(|g| dag.predecessors(GateId::new(g as u32)).len())
            .collect();
        let mut ready: BTreeSet<usize> = (0..n).filter(|g| pending[*g] == 0).collect();
        let mut ready_time: Vec<u64> = vec![0; n];
        let mut timings: Vec<Option<GateTiming>> = vec![None; n];

        // Busy cells: reserved by currently executing braids.
        let width = mapping.width();
        let height = mapping.height();
        let mut busy = vec![false; width * height];
        let cell_idx = |c: Coord| c.row * width + c.col;

        // Active operations: min-heap of (finish, gate).
        let mut active: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut reserved: Vec<Vec<Coord>> = vec![Vec::new(); n];

        let mut now: u64 = 0;
        let mut completed = 0usize;
        let mut routing_conflicts: u64 = 0;
        let mut max_finish: u64 = 0;

        while completed < n {
            if now > self.config.cycle_limit {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }

            // Issue as many ready gates as possible at the current time.
            loop {
                let mut started_any = false;
                let candidates: Vec<usize> = ready.iter().copied().collect();
                for g in candidates {
                    let gate = &circuit.gates()[g];
                    let cells = match self.acquire_cells(
                        gate,
                        mapping,
                        &layout.hints,
                        &busy,
                        width,
                        height,
                    ) {
                        Some(cells) => cells,
                        None => {
                            routing_conflicts += 1;
                            continue;
                        }
                    };
                    // Reserve and start.
                    for c in &cells {
                        busy[cell_idx(*c)] = true;
                    }
                    let duration = self.config.latency.cycles(gate);
                    let finish = now + duration;
                    timings[g] = Some(GateTiming {
                        ready: ready_time[g],
                        start: now,
                        finish,
                    });
                    ready.remove(&g);
                    if duration == 0 {
                        // Zero-duration gates (barriers) complete immediately.
                        completed += 1;
                        max_finish = max_finish.max(finish);
                        for succ in dag.successors(GateId::new(g as u32)) {
                            let s = succ.index();
                            pending[s] -= 1;
                            if pending[s] == 0 {
                                ready_time[s] = now;
                                ready.insert(s);
                            }
                        }
                    } else {
                        reserved[g] = cells;
                        active.push(Reverse((finish, g)));
                    }
                    started_any = true;
                }
                if !started_any {
                    break;
                }
            }

            if completed == n {
                break;
            }

            // Advance to the next completion event.
            let Reverse((finish, _)) = match active.peek() {
                Some(ev) => *ev,
                None => {
                    // Nothing active and nothing could start: the ready gates
                    // are permanently blocked (cannot happen on an empty mesh,
                    // but guard against it rather than spinning forever).
                    return Err(SimError::CycleLimitExceeded {
                        limit: self.config.cycle_limit,
                    });
                }
            };
            now = finish;
            while let Some(Reverse((f, g))) = active.peek().copied() {
                if f != now {
                    break;
                }
                active.pop();
                for c in reserved[g].drain(..) {
                    busy[cell_idx(c)] = false;
                }
                completed += 1;
                max_finish = max_finish.max(f);
                for succ in dag.successors(GateId::new(g as u32)) {
                    let s = succ.index();
                    pending[s] -= 1;
                    if pending[s] == 0 {
                        ready_time[s] = now;
                        ready.insert(s);
                    }
                }
            }
        }

        let timings: Vec<GateTiming> = timings
            .into_iter()
            .map(|t| t.expect("all gates timed"))
            .collect();
        let stall_cycles: u64 = timings.iter().map(GateTiming::stall).sum();
        let stalled_gates = timings.iter().filter(|t| t.stall() > 0).count();
        Ok(SimResult {
            cycles: max_finish,
            area: mapping.used_area(),
            timings,
            stall_cycles,
            stalled_gates,
            routing_conflicts,
        })
    }

    /// Computes the cell set a gate needs, or `None` if it cannot currently be
    /// routed/placed because of busy cells.
    fn acquire_cells(
        &self,
        gate: &Gate,
        mapping: &Mapping,
        hints: &RoutingHints,
        busy: &[bool],
        width: usize,
        height: usize,
    ) -> Option<Vec<Coord>> {
        let cell_idx = |c: Coord| c.row * width + c.col;
        let is_busy = |c: Coord| busy[cell_idx(c)];
        let pos = |q: QubitId| mapping.position(q).expect("validated before simulation");

        match gate {
            Gate::Barrier(_) => Some(Vec::new()),
            Gate::H(q)
            | Gate::X(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::MeasX(q)
            | Gate::MeasZ(q)
            | Gate::Init(q) => {
                let c = pos(*q);
                if is_busy(c) {
                    None
                } else {
                    Some(vec![c])
                }
            }
            Gate::Cnot { control, target } => self
                .route_pair(
                    pos(*control),
                    pos(*target),
                    hints.waypoint(*control, *target),
                    &is_busy,
                    mapping,
                    width,
                    height,
                )
                .map(|b| b.cells().to_vec()),
            Gate::InjectT { raw, target } | Gate::InjectTdg { raw, target } => self
                .route_pair(
                    pos(*raw),
                    pos(*target),
                    hints.waypoint(*raw, *target),
                    &is_busy,
                    mapping,
                    width,
                    height,
                )
                .map(|b| b.cells().to_vec()),
            Gate::Cxx { control, targets } => {
                let c = pos(*control);
                let mut merged = BraidPath::new(vec![c]);
                for t in targets {
                    let leg = self.route_pair(
                        c,
                        pos(*t),
                        hints.waypoint(*control, *t),
                        &is_busy,
                        mapping,
                        width,
                        height,
                    )?;
                    merged.merge(&leg);
                }
                Some(merged.cells().to_vec())
            }
        }
    }

    /// Routes a braid between two cells, optionally via a waypoint, under the
    /// configured routing policy. Returns `None` when the braid cannot avoid
    /// busy cells (adaptive) or its fixed path is blocked (dimension ordered).
    #[allow(clippy::too_many_arguments)]
    fn route_pair(
        &self,
        from: Coord,
        to: Coord,
        waypoint: Option<Coord>,
        is_busy: &dyn Fn(Coord) -> bool,
        mapping: &Mapping,
        width: usize,
        height: usize,
    ) -> Option<BraidPath> {
        // Adaptive routing prefers corridors over cells that host idle
        // resident qubits: braiding over a resident tile blocks that qubit's
        // own operations, so it carries a traversal penalty.
        let occupancy_penalty = |c: Coord| -> u64 {
            if mapping.occupant(c).is_some() {
                4
            } else {
                0
            }
        };
        let route_leg = |a: Coord, b: Coord| -> Option<BraidPath> {
            match self.config.routing {
                RoutingPolicy::DimensionOrdered => {
                    let path = dimension_ordered_path(a, b);
                    if path.cells().iter().any(|c| is_busy(*c)) {
                        None
                    } else {
                        Some(path)
                    }
                }
                RoutingPolicy::Adaptive => {
                    if is_busy(a) || is_busy(b) {
                        return None;
                    }
                    adaptive_path(a, b, width, height, is_busy, &occupancy_penalty)
                }
            }
        };
        match waypoint {
            None => route_leg(from, to),
            Some(w) => {
                let mut first = route_leg(from, w)?;
                let second = route_leg(w, to)?;
                first.merge(&second);
                Some(first)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::{CircuitBuilder, LatencyModel, QubitRole};
    use msfu_layout::Mapping;

    fn place_line(n: u32) -> Mapping {
        let mut m = Mapping::new(n as usize, n as usize, 1);
        for i in 0..n {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        m
    }

    fn simple_layout(mapping: Mapping) -> Layout {
        Layout::new(mapping)
    }

    #[test]
    fn serial_chain_matches_critical_path() {
        let mut b = CircuitBuilder::new("chain");
        let q = b.register("q", QubitRole::Data, 3);
        b.h(q[0]).unwrap();
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        b.meas_x(q[2]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(3));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, c.critical_path_cycles(&model));
        assert_eq!(result.stall_cycles, 0);
        assert_eq!(result.timings.len(), 4);
    }

    #[test]
    fn independent_gates_run_in_parallel() {
        let mut b = CircuitBuilder::new("par");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[2], q[3]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        // Both CNOTs are adjacent pairs on disjoint cells: they overlap fully.
        assert_eq!(result.cycles, model.cnot);
    }

    #[test]
    fn crossing_braids_stall_with_dimension_ordered_routing() {
        // Qubits on a line: 0 1 2 3. CNOT(0,3) spans the whole line, so a
        // simultaneous CNOT(1,2) must stall under L-routing.
        let mut b = CircuitBuilder::new("conflict");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[3]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::dimension_ordered())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, 2 * model.cnot);
        assert_eq!(result.stalled_gates, 1);
        assert!(result.routing_conflicts >= 1);
    }

    #[test]
    fn adaptive_routing_avoids_the_stall_when_there_is_slack() {
        // Same conflict, but on a 2-row grid the long braid can detour.
        let mut b = CircuitBuilder::new("conflict");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[3]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(4, 4, 2);
        for i in 0..4u32 {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        let result = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(
            result.cycles, model.cnot,
            "adaptive routing should detour through row 1"
        );
        assert_eq!(result.stalled_gates, 0);
    }

    #[test]
    fn barrier_orders_rounds() {
        let mut b = CircuitBuilder::new("barrier");
        let q = b.register("q", QubitRole::Data, 2);
        b.h(q[0]).unwrap();
        b.barrier_all().unwrap();
        b.h(q[1]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(2));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        // The two H gates serialise through the barrier.
        assert_eq!(result.cycles, 2 * model.single_qubit);
        let t = &result.timings;
        assert!(t[2].start >= t[0].finish);
    }

    #[test]
    fn waypoint_hint_lengthens_the_braid() {
        let mut b = CircuitBuilder::new("hint");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(2, 5, 5);
        m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        m.place(QubitId::new(1), Coord::new(0, 4)).unwrap();
        let mut hints = RoutingHints::new();
        hints.set_waypoint(QubitId::new(0), QubitId::new(1), Coord::new(4, 2));
        let layout = Layout::with_hints(m, hints);
        // The braid must pass through the waypoint; with a single gate the
        // latency is unchanged but the reservation is longer, which we can
        // only observe indirectly: the run still succeeds.
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        assert_eq!(result.cycles, LatencyModel::default().cnot);
    }

    #[test]
    fn unmapped_qubit_is_an_error() {
        let mut b = CircuitBuilder::new("bad");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let m = Mapping::new(2, 2, 2); // nothing placed
        let err = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap_err();
        assert!(matches!(err, SimError::UnmappedQubit { .. }));
    }

    #[test]
    fn empty_circuit_takes_zero_cycles() {
        let c = CircuitBuilder::new("empty").build();
        let layout = simple_layout(Mapping::new(0, 1, 1));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        assert_eq!(result.cycles, 0);
        assert_eq!(result.volume(), 0);
    }

    #[test]
    fn cxx_reserves_union_of_paths() {
        let mut b = CircuitBuilder::new("cxx");
        let q = b.register("q", QubitRole::Data, 4);
        b.cxx(q[0], vec![q[1], q[2], q[3]]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, 3 * model.cxx_per_target);
    }

    #[test]
    fn result_volume_uses_bounding_box_area() {
        let mut b = CircuitBuilder::new("area");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(2, 10, 10);
        m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        m.place(QubitId::new(1), Coord::new(0, 3)).unwrap();
        let result = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap();
        assert_eq!(result.area, 4);
        assert_eq!(result.volume(), 4 * result.cycles);
    }
}
