//! The event-driven braid simulation engine.
//!
//! [`SimEngine`] is the production simulator: time jumps from one
//! gate-completion event to the next through a bucketed [`EventWheel`], idle
//! spans between events are never stepped, and every piece of per-run state
//! (ready set, busy grid, cell pool, routing scratch) lives in preallocated
//! arenas that are reused run after run — a sweep threads one engine through
//! thousands of simulations without touching the allocator on the hot path.
//!
//! The cell-acquisition machinery (static braid-path caching, adaptive
//! Dijkstra routing, the merge buffers) lives in the [`Router`], shared with
//! the lane-batched [`crate::batch::BatchEngine`]: the router takes the busy
//! grid and the per-gate span slots as parameters, so the same code path
//! serves one run or K lockstep lanes.
//!
//! [`Simulator`] is the stateless façade kept for API compatibility: it spins
//! up a fresh engine per call. The original allocating implementation is
//! preserved in [`crate::reference`] and the equivalence suite asserts both
//! produce byte-identical [`SimResult`]s.

use msfu_circuit::{Circuit, Gate, GateId, QubitId};
use msfu_layout::{Coord, Layout, Mapping, RoutingHints};

use crate::braid::{adaptive_path_into, DijkstraScratch};
use crate::events::EventWheel;
use crate::{GateTiming, Result, RoutingPolicy, SimConfig, SimError, SimResult};

/// Sentinel span offset meaning "static cell set not yet computed".
const UNCACHED: u32 = u32::MAX;

/// A slice of a [`Router`]'s cell pool: one gate's reserved (or cached)
/// cells.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellSpan {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl CellSpan {
    pub(crate) const EMPTY: CellSpan = CellSpan { start: 0, len: 0 };
    /// Sentinel for "static cell set not yet computed" (real spans never
    /// carry this length).
    pub(crate) const UNCACHED: CellSpan = CellSpan {
        start: UNCACHED,
        len: UNCACHED,
    };

    pub(crate) fn is_cached(self) -> bool {
        self.len != UNCACHED
    }
}

/// The cell pool and routing scratch shared by [`SimEngine`] and the
/// lane-batched [`crate::batch::BatchEngine`].
///
/// A router owns everything cell acquisition needs that is not per-run
/// simulation state: the pool backing every [`CellSpan`], the Dijkstra
/// scratch, the merge buffers and the dedup stamps. The busy grid and the
/// per-gate span slots are passed in by the caller, so one router can serve
/// a single run or many lockstep lanes over the same mesh dimensions.
#[derive(Debug, Default)]
pub(crate) struct Router {
    /// Cell pool backing the static and reserved spans.
    cells: Vec<Coord>,
    /// Adaptive-routing workspace.
    dijkstra: DijkstraScratch,
    /// Cell accumulator for the acquisition attempt in flight.
    acquire_buf: Vec<Coord>,
    /// Single-leg path buffer (adaptive routing).
    leg_buf: Vec<Coord>,
    /// Dedup stamps per mesh cell for merging braid legs.
    mark: Vec<u32>,
    mark_epoch: u32,
}

impl Router {
    /// Clears the pool and sizes the merge stamps for an `area`-cell mesh.
    pub(crate) fn reset(&mut self, area: usize) {
        self.cells.clear();
        self.mark.clear();
        self.mark.resize(area, 0);
        self.mark_epoch = 0;
    }

    /// The cell pool indexed by every [`CellSpan`] this router handed out.
    pub(crate) fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Attempts to acquire the cells `gate` needs against `busy`. On
    /// success, `*reserved` names the cells to reserve. Mirrors
    /// `reference::acquire_cells` exactly: the same attempts fail, in the
    /// same order, for the same reasons.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_acquire(
        &mut self,
        gate: &Gate,
        routing: RoutingPolicy,
        mapping: &Mapping,
        hints: &RoutingHints,
        busy: &[bool],
        static_cell: &mut CellSpan,
        reserved: &mut CellSpan,
    ) -> bool {
        let width = mapping.width();
        // Fast path: a busy-state-independent cell set, computed at the
        // gate's first attempt and re-checked for free cells ever after. This
        // covers every gate under dimension-ordered routing — where blocked
        // braids retry their fixed path at every event — plus single-cell
        // gates and barriers under adaptive routing.
        if let Some(span) = self.static_span(gate, routing, mapping, hints, static_cell) {
            let free = self.cells[span.start as usize..(span.start + span.len) as usize]
                .iter()
                .all(|c| !busy[c.row * width + c.col]);
            if free {
                *reserved = span;
            }
            return free;
        }
        // Adaptive two-qubit braids: route against the live busy state.
        self.acquire_adaptive(gate, mapping, hints, busy, reserved)
    }

    /// Returns the gate's cached static cell set (the caller's `static_cell`
    /// slot), computing it on first use; `None` when the cell set depends on
    /// the busy state (adaptive braids).
    fn static_span(
        &mut self,
        gate: &Gate,
        routing: RoutingPolicy,
        mapping: &Mapping,
        hints: &RoutingHints,
        static_cell: &mut CellSpan,
    ) -> Option<CellSpan> {
        if static_cell.is_cached() {
            return Some(*static_cell);
        }
        let span = match gate {
            Gate::Barrier(_) => CellSpan::EMPTY,
            Gate::H(q)
            | Gate::X(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::MeasX(q)
            | Gate::MeasZ(q)
            | Gate::Init(q) => {
                let start = self.cells.len() as u32;
                self.cells.push(pos(mapping, *q));
                CellSpan { start, len: 1 }
            }
            _ if routing == RoutingPolicy::Adaptive => return None,
            Gate::Cnot { control, target }
            | Gate::InjectT {
                raw: control,
                target,
            }
            | Gate::InjectTdg {
                raw: control,
                target,
            } => {
                let start = self.cells.len() as u32;
                self.begin_merge();
                self.push_l_route(
                    pos(mapping, *control),
                    pos(mapping, *target),
                    hints.waypoint(*control, *target),
                    mapping.width(),
                );
                let buf = std::mem::take(&mut self.acquire_buf);
                self.cells.extend_from_slice(&buf);
                self.acquire_buf = buf;
                CellSpan {
                    start,
                    len: self.cells.len() as u32 - start,
                }
            }
            Gate::Cxx { control, targets } => {
                let start = self.cells.len() as u32;
                let c = pos(mapping, *control);
                self.begin_merge();
                self.push_merged(c, mapping.width());
                for t in targets {
                    self.push_l_route(
                        c,
                        pos(mapping, *t),
                        hints.waypoint(*control, *t),
                        mapping.width(),
                    );
                }
                let buf = std::mem::take(&mut self.acquire_buf);
                self.cells.extend_from_slice(&buf);
                self.acquire_buf = buf;
                CellSpan {
                    start,
                    len: self.cells.len() as u32 - start,
                }
            }
        };
        *static_cell = span;
        Some(span)
    }

    /// Routes an adaptive two-qubit gate (CNOT, injection, CXX) against the
    /// live busy state; on success copies the merged cells into the pool and
    /// records them in the caller's `reserved` slot.
    fn acquire_adaptive(
        &mut self,
        gate: &Gate,
        mapping: &Mapping,
        hints: &RoutingHints,
        busy: &[bool],
        reserved: &mut CellSpan,
    ) -> bool {
        self.begin_merge();
        let ok = match gate {
            Gate::Cnot { control, target }
            | Gate::InjectT {
                raw: control,
                target,
            }
            | Gate::InjectTdg {
                raw: control,
                target,
            } => self.adaptive_route_pair(
                pos(mapping, *control),
                pos(mapping, *target),
                hints.waypoint(*control, *target),
                mapping,
                busy,
            ),
            Gate::Cxx { control, targets } => {
                let c = pos(mapping, *control);
                self.push_merged(c, mapping.width());
                targets.iter().all(|t| {
                    self.adaptive_route_pair(
                        c,
                        pos(mapping, *t),
                        hints.waypoint(*control, *t),
                        mapping,
                        busy,
                    )
                })
            }
            _ => unreachable!("single-cell gates are handled by the static path"),
        };
        if !ok {
            return false;
        }
        let start = self.cells.len() as u32;
        let buf = std::mem::take(&mut self.acquire_buf);
        self.cells.extend_from_slice(&buf);
        self.acquire_buf = buf;
        *reserved = CellSpan {
            start,
            len: self.cells.len() as u32 - start,
        };
        true
    }

    /// Adaptive `route_pair`: one or two Dijkstra legs through the optional
    /// waypoint, merged into the acquisition buffer. Matches
    /// `reference::route_pair` leg for leg.
    fn adaptive_route_pair(
        &mut self,
        from: Coord,
        to: Coord,
        waypoint: Option<Coord>,
        mapping: &Mapping,
        busy: &[bool],
    ) -> bool {
        match waypoint {
            None => self.adaptive_leg(from, to, mapping, busy),
            Some(w) => {
                self.adaptive_leg(from, w, mapping, busy) && self.adaptive_leg(w, to, mapping, busy)
            }
        }
    }

    /// One adaptive leg: endpoint busy checks, then the scratch-backed
    /// Dijkstra, then the mark-deduplicated merge.
    fn adaptive_leg(&mut self, a: Coord, b: Coord, mapping: &Mapping, busy: &[bool]) -> bool {
        let width = mapping.width();
        let height = mapping.height();
        let is_busy = |c: Coord| busy[c.row * width + c.col];
        if is_busy(a) || is_busy(b) {
            return false;
        }
        // Prefer corridors over cells hosting idle resident qubits: braiding
        // over a resident tile blocks that qubit's own operations.
        let occupancy_penalty = |c: Coord| -> u64 {
            if mapping.occupant(c).is_some() {
                4
            } else {
                0
            }
        };
        self.leg_buf.clear();
        if !adaptive_path_into(
            a,
            b,
            width,
            height,
            &is_busy,
            &occupancy_penalty,
            &mut self.dijkstra,
            &mut self.leg_buf,
        ) {
            return false;
        }
        let leg = std::mem::take(&mut self.leg_buf);
        for &c in &leg {
            self.push_merged(c, width);
        }
        self.leg_buf = leg;
        true
    }

    /// Opens a fresh merge epoch for the acquisition buffer.
    fn begin_merge(&mut self) {
        if self.mark_epoch == u32::MAX {
            self.mark.fill(0);
            self.mark_epoch = 0;
        }
        self.mark_epoch += 1;
        self.acquire_buf.clear();
    }

    /// Appends `c` to the acquisition buffer unless already present this
    /// epoch (`BraidPath::merge` union semantics).
    fn push_merged(&mut self, c: Coord, width: usize) {
        let i = c.row * width + c.col;
        if self.mark[i] != self.mark_epoch {
            self.mark[i] = self.mark_epoch;
            self.acquire_buf.push(c);
        }
    }

    /// Merges the dimension-ordered route (through the optional waypoint)
    /// into the acquisition buffer.
    fn push_l_route(&mut self, from: Coord, to: Coord, waypoint: Option<Coord>, width: usize) {
        match waypoint {
            None => self.push_l_leg(from, to, width),
            Some(w) => {
                self.push_l_leg(from, w, width);
                self.push_l_leg(w, to, width);
            }
        }
    }

    /// Walks the L-shaped path from `from` to `to` (row first, then column),
    /// merging each cell without materialising the path.
    fn push_l_leg(&mut self, from: Coord, to: Coord, width: usize) {
        self.push_merged(from, width);
        let mut col = from.col;
        while col != to.col {
            if col < to.col {
                col += 1;
            } else {
                col -= 1;
            }
            self.push_merged(Coord::new(from.row, col), width);
        }
        let mut row = from.row;
        while row != to.row {
            if row < to.row {
                row += 1;
            } else {
                row -= 1;
            }
            self.push_merged(Coord::new(row, to.col), width);
        }
    }
}

/// The reusable event-driven braid network simulator.
///
/// See the crate-level documentation for the behavioural model. Construct one
/// engine and call [`SimEngine::run`] repeatedly: each run resets, but does
/// not reallocate, the internal arenas. For one-shot simulations the
/// [`Simulator`] façade is equivalent.
#[derive(Debug, Default)]
pub struct SimEngine {
    config: SimConfig,
    /// Unresolved dependency count per gate.
    pending: Vec<u32>,
    /// Ready-to-issue gates, kept sorted ascending (program order).
    ready: Vec<u32>,
    /// Snapshot of `ready` taken at the top of each issue pass.
    candidates: Vec<u32>,
    /// Cycle at which each gate became ready.
    ready_time: Vec<u64>,
    /// Busy flags per mesh cell.
    busy: Vec<bool>,
    /// Cached busy-state-independent cell set per gate (all gates under
    /// dimension-ordered routing; single-qubit gates and barriers always).
    static_cells: Vec<CellSpan>,
    /// Cells currently reserved by each active gate.
    reserved: Vec<CellSpan>,
    /// Completion-event queue.
    wheel: EventWheel,
    /// Gates completing at the current event time (drain buffer).
    completions: Vec<u32>,
    /// Cell pool and routing scratch.
    router: Router,
}

impl SimEngine {
    /// Creates an engine with the given configuration. Arenas start empty and
    /// grow to the largest circuit/mesh simulated.
    pub fn new(config: SimConfig) -> Self {
        SimEngine {
            config,
            ..SimEngine::default()
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replaces the configuration for subsequent runs, keeping the arenas.
    pub fn set_config(&mut self, config: SimConfig) {
        self.config = config;
    }

    /// Simulates `circuit` under the placement and routing hints of `layout`.
    ///
    /// Behaviourally identical to [`crate::reference::run`]; the differences
    /// are purely mechanical (arena reuse, cached static braid paths, the
    /// bucketed event queue).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedQubit`] when a gate references an unplaced
    /// qubit, [`SimError::EmptyGrid`] for an empty mesh, and
    /// [`SimError::CycleLimitExceeded`] if the simulation runs past the
    /// configured limit.
    pub fn run(&mut self, circuit: &Circuit, layout: &Layout) -> Result<SimResult> {
        let mapping = &layout.mapping;
        if mapping.grid_area() == 0 {
            return Err(SimError::EmptyGrid);
        }
        for gate in circuit.gates() {
            for q in gate.qubits() {
                if mapping.position(q).is_none() {
                    return Err(SimError::UnmappedQubit { qubit: q });
                }
            }
        }

        let n = circuit.num_gates();
        if n == 0 {
            return Ok(SimResult {
                cycles: 0,
                area: mapping.used_area(),
                timings: Vec::new(),
                stall_cycles: 0,
                stalled_gates: 0,
                routing_conflicts: 0,
            });
        }

        let dag = circuit.dependency_dag();
        self.reset(n, mapping, circuit, &dag);

        // The output is owned by the result, so timings are the one per-run
        // allocation; every gate is written exactly once when it issues.
        let zero = GateTiming {
            ready: 0,
            start: 0,
            finish: 0,
        };
        let mut timings: Vec<GateTiming> = vec![zero; n];

        let width = mapping.width();
        let gates = circuit.gates();
        let mut now: u64 = 0;
        let mut completed = 0usize;
        let mut routing_conflicts: u64 = 0;
        let mut max_finish: u64 = 0;

        while completed < n {
            if now > self.config.cycle_limit {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }

            // Issue passes: greedily start every ready gate whose cells are
            // free, repeating until a full pass starts nothing. Gates made
            // ready mid-pass (zero-duration completions) join the next pass.
            loop {
                let mut started_any = false;
                self.candidates.clear();
                self.candidates.extend_from_slice(&self.ready);
                for i in 0..self.candidates.len() {
                    let g = self.candidates[i] as usize;
                    let gate = &gates[g];
                    let acquired = self.router.try_acquire(
                        gate,
                        self.config.routing,
                        mapping,
                        &layout.hints,
                        &self.busy,
                        &mut self.static_cells[g],
                        &mut self.reserved[g],
                    );
                    if !acquired {
                        routing_conflicts += 1;
                        continue;
                    }
                    let span = self.reserved[g];
                    for k in span.start..span.start + span.len {
                        let c = self.router.cells()[k as usize];
                        self.busy[c.row * width + c.col] = true;
                    }
                    let duration = self.config.latency.cycles(gate);
                    let finish = now + duration;
                    timings[g] = GateTiming {
                        ready: self.ready_time[g],
                        start: now,
                        finish,
                    };
                    let pos = self
                        .ready
                        .binary_search(&(g as u32))
                        .expect("issued gate was ready");
                    self.ready.remove(pos);
                    if duration == 0 {
                        completed += 1;
                        max_finish = max_finish.max(finish);
                        self.complete(g, now, &dag);
                    } else {
                        self.wheel.schedule(finish, g as u32);
                    }
                    started_any = true;
                }
                if !started_any {
                    break;
                }
            }

            if completed == n {
                break;
            }

            // Jump straight to the next completion event.
            let Some(finish) = self.wheel.next_time() else {
                // Nothing active and nothing could start: the ready gates are
                // permanently blocked (cannot happen on an empty mesh, but
                // guard against it rather than spinning forever).
                return Err(SimError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            };
            now = finish;
            self.completions.clear();
            let mut completions = std::mem::take(&mut self.completions);
            self.wheel.advance_to(now, &mut completions);
            for &gc in &completions {
                let g = gc as usize;
                let span = self.reserved[g];
                for k in span.start..span.start + span.len {
                    let c = self.router.cells()[k as usize];
                    self.busy[c.row * width + c.col] = false;
                }
                completed += 1;
                max_finish = max_finish.max(now);
                self.complete(g, now, &dag);
            }
            self.completions = completions;
        }

        let stall_cycles: u64 = timings.iter().map(GateTiming::stall).sum();
        let stalled_gates = timings.iter().filter(|t| t.stall() > 0).count();
        Ok(SimResult {
            cycles: max_finish,
            area: mapping.used_area(),
            timings,
            stall_cycles,
            stalled_gates,
            routing_conflicts,
        })
    }

    /// Clears and sizes every arena for a run of `n` gates on `mapping`.
    fn reset(
        &mut self,
        n: usize,
        mapping: &Mapping,
        circuit: &Circuit,
        dag: &msfu_circuit::DependencyDag,
    ) {
        self.pending.clear();
        self.pending
            .extend((0..n).map(|g| dag.predecessors(GateId::new(g as u32)).len() as u32));
        self.ready.clear();
        self.ready
            .extend((0..n as u32).filter(|&g| self.pending[g as usize] == 0));
        self.ready_time.clear();
        self.ready_time.resize(n, 0);
        self.static_cells.clear();
        self.static_cells.resize(n, CellSpan::UNCACHED);
        self.reserved.clear();
        self.reserved.resize(n, CellSpan::EMPTY);
        let area = mapping.grid_area();
        self.busy.clear();
        self.busy.resize(area, false);
        self.router.reset(area);
        let max_duration = circuit
            .gates()
            .iter()
            .map(|g| self.config.latency.cycles(g))
            .max()
            .unwrap_or(1);
        self.wheel.reset(max_duration.max(1));
    }

    /// Marks a gate complete at `now`, promoting newly unblocked successors.
    fn complete(&mut self, g: usize, now: u64, dag: &msfu_circuit::DependencyDag) {
        for succ in dag.successors(GateId::new(g as u32)) {
            let s = succ.index();
            self.pending[s] -= 1;
            if self.pending[s] == 0 {
                self.ready_time[s] = now;
                let pos = self
                    .ready
                    .binary_search(&(s as u32))
                    .expect_err("a gate becomes ready exactly once");
                self.ready.insert(pos, s as u32);
            }
        }
    }
}

/// Looks up a validated qubit position.
pub(crate) fn pos(mapping: &Mapping, q: QubitId) -> Coord {
    mapping.position(q).expect("validated before simulation")
}

/// The stateless braid network simulator façade.
///
/// Each [`Simulator::run`] call drives a fresh [`SimEngine`]; hold a
/// `SimEngine` directly to amortise its arenas across many runs.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates `circuit` under the placement and routing hints of `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedQubit`] when a gate references an unplaced
    /// qubit, [`SimError::EmptyGrid`] for an empty mesh, and
    /// [`SimError::CycleLimitExceeded`] if the simulation runs past the
    /// configured limit.
    pub fn run(&self, circuit: &Circuit, layout: &Layout) -> Result<SimResult> {
        SimEngine::new(self.config).run(circuit, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::{CircuitBuilder, LatencyModel, QubitRole};
    use msfu_layout::Mapping;

    fn place_line(n: u32) -> Mapping {
        let mut m = Mapping::new(n as usize, n as usize, 1);
        for i in 0..n {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        m
    }

    fn simple_layout(mapping: Mapping) -> Layout {
        Layout::new(mapping)
    }

    #[test]
    fn serial_chain_matches_critical_path() {
        let mut b = CircuitBuilder::new("chain");
        let q = b.register("q", QubitRole::Data, 3);
        b.h(q[0]).unwrap();
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        b.meas_x(q[2]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(3));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, c.critical_path_cycles(&model));
        assert_eq!(result.stall_cycles, 0);
        assert_eq!(result.timings.len(), 4);
    }

    #[test]
    fn independent_gates_run_in_parallel() {
        let mut b = CircuitBuilder::new("par");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[2], q[3]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        // Both CNOTs are adjacent pairs on disjoint cells: they overlap fully.
        assert_eq!(result.cycles, model.cnot);
    }

    #[test]
    fn crossing_braids_stall_with_dimension_ordered_routing() {
        // Qubits on a line: 0 1 2 3. CNOT(0,3) spans the whole line, so a
        // simultaneous CNOT(1,2) must stall under L-routing.
        let mut b = CircuitBuilder::new("conflict");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[3]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::dimension_ordered())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, 2 * model.cnot);
        assert_eq!(result.stalled_gates, 1);
        assert!(result.routing_conflicts >= 1);
    }

    #[test]
    fn adaptive_routing_avoids_the_stall_when_there_is_slack() {
        // Same conflict, but on a 2-row grid the long braid can detour.
        let mut b = CircuitBuilder::new("conflict");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[3]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(4, 4, 2);
        for i in 0..4u32 {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        let result = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(
            result.cycles, model.cnot,
            "adaptive routing should detour through row 1"
        );
        assert_eq!(result.stalled_gates, 0);
    }

    #[test]
    fn barrier_orders_rounds() {
        let mut b = CircuitBuilder::new("barrier");
        let q = b.register("q", QubitRole::Data, 2);
        b.h(q[0]).unwrap();
        b.barrier_all().unwrap();
        b.h(q[1]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(2));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        // The two H gates serialise through the barrier.
        assert_eq!(result.cycles, 2 * model.single_qubit);
        let t = &result.timings;
        assert!(t[2].start >= t[0].finish);
    }

    #[test]
    fn waypoint_hint_lengthens_the_braid() {
        let mut b = CircuitBuilder::new("hint");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(2, 5, 5);
        m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        m.place(QubitId::new(1), Coord::new(0, 4)).unwrap();
        let mut hints = RoutingHints::new();
        hints.set_waypoint(QubitId::new(0), QubitId::new(1), Coord::new(4, 2));
        let layout = Layout::with_hints(m, hints);
        // The braid must pass through the waypoint; with a single gate the
        // latency is unchanged but the reservation is longer, which we can
        // only observe indirectly: the run still succeeds.
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        assert_eq!(result.cycles, LatencyModel::default().cnot);
    }

    #[test]
    fn unmapped_qubit_is_an_error() {
        let mut b = CircuitBuilder::new("bad");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let m = Mapping::new(2, 2, 2); // nothing placed
        let err = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap_err();
        assert!(matches!(err, SimError::UnmappedQubit { .. }));
    }

    #[test]
    fn empty_circuit_takes_zero_cycles() {
        let c = CircuitBuilder::new("empty").build();
        let layout = simple_layout(Mapping::new(0, 1, 1));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        assert_eq!(result.cycles, 0);
        assert_eq!(result.volume(), 0);
    }

    #[test]
    fn cxx_reserves_union_of_paths() {
        let mut b = CircuitBuilder::new("cxx");
        let q = b.register("q", QubitRole::Data, 4);
        b.cxx(q[0], vec![q[1], q[2], q[3]]).unwrap();
        let c = b.build();
        let layout = simple_layout(place_line(4));
        let result = Simulator::new(SimConfig::default())
            .run(&c, &layout)
            .unwrap();
        let model = LatencyModel::default();
        assert_eq!(result.cycles, 3 * model.cxx_per_target);
    }

    #[test]
    fn result_volume_uses_bounding_box_area() {
        let mut b = CircuitBuilder::new("area");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(2, 10, 10);
        m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        m.place(QubitId::new(1), Coord::new(0, 3)).unwrap();
        let result = Simulator::new(SimConfig::default())
            .run(&c, &simple_layout(m))
            .unwrap();
        assert_eq!(result.area, 4);
        assert_eq!(result.volume(), 4 * result.cycles);
    }

    #[test]
    fn one_engine_reused_across_runs_matches_fresh_engines() {
        // The same engine runs three different circuits on different meshes;
        // every result must equal a fresh engine's (arena hygiene).
        let mut engine = SimEngine::new(SimConfig::default());
        let circuits: Vec<(Circuit, Layout)> = (2..5u32)
            .map(|n| {
                let mut b = CircuitBuilder::new("chain");
                let q = b.register("q", QubitRole::Data, n as usize);
                for i in 0..n - 1 {
                    b.cnot(q[i as usize], q[(i + 1) as usize]).unwrap();
                }
                b.h(q[0]).unwrap();
                (b.build(), simple_layout(place_line(n)))
            })
            .collect();
        for _ in 0..3 {
            for (c, layout) in &circuits {
                let reused = engine.run(c, layout).unwrap();
                let fresh = SimEngine::new(SimConfig::default()).run(c, layout).unwrap();
                assert_eq!(reused, fresh);
            }
        }
    }

    #[test]
    fn engine_matches_reference_on_contended_meshes() {
        for config in [SimConfig::default(), SimConfig::dimension_ordered()] {
            let mut b = CircuitBuilder::new("contended");
            let q = b.register("q", QubitRole::Data, 6);
            b.cnot(q[0], q[5]).unwrap();
            b.cnot(q[1], q[4]).unwrap();
            b.cnot(q[2], q[3]).unwrap();
            b.cxx(q[0], vec![q[2], q[4]]).unwrap();
            b.barrier_all().unwrap();
            b.cnot(q[5], q[0]).unwrap();
            let c = b.build();
            let layout = simple_layout(place_line(6));
            let fast = SimEngine::new(config).run(&c, &layout).unwrap();
            let slow = crate::reference::run(&config, &c, &layout).unwrap();
            assert_eq!(fast, slow, "policy {:?}", config.routing);
        }
    }

    #[test]
    fn set_config_switches_policy_between_runs() {
        let mut b = CircuitBuilder::new("conflict");
        let q = b.register("q", QubitRole::Data, 4);
        b.cnot(q[0], q[3]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        let c = b.build();
        let mut m = Mapping::new(4, 4, 2);
        for i in 0..4u32 {
            m.place(QubitId::new(i), Coord::new(0, i as usize)).unwrap();
        }
        let layout = simple_layout(m);
        let mut engine = SimEngine::new(SimConfig::default());
        let adaptive = engine.run(&c, &layout).unwrap();
        engine.set_config(SimConfig::dimension_ordered());
        assert_eq!(engine.config().routing, RoutingPolicy::DimensionOrdered);
        let fixed = engine.run(&c, &layout).unwrap();
        assert!(adaptive.cycles < fixed.cycles);
    }
}
