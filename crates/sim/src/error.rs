//! Error types for the braid simulator.

use std::fmt;

use msfu_circuit::QubitId;

/// Errors produced while simulating a circuit on a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A gate references a qubit that the mapping does not place.
    UnmappedQubit {
        /// The unplaced qubit.
        qubit: QubitId,
    },
    /// The simulation exceeded the configured cycle limit, indicating a
    /// livelock (e.g. a braid that can never acquire its cells).
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// The mapping grid is empty.
    EmptyGrid,
    /// A set of lanes handed to [`crate::BatchEngine`] cannot share one
    /// event wheel (mismatched grid dimensions, too many lanes, or an
    /// oversized circuit × lane product).
    LaneMismatch {
        /// What made the lanes incompatible.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnmappedQubit { qubit } => {
                write!(f, "qubit {qubit} has no position in the mapping")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::EmptyGrid => write!(f, "mapping grid has no cells"),
            SimError::LaneMismatch { reason } => {
                write!(f, "incompatible batch lanes: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::UnmappedQubit {
            qubit: QubitId::new(4)
        }
        .to_string()
        .contains("q4"));
        assert!(SimError::CycleLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(!SimError::EmptyGrid.to_string().is_empty());
        assert!(SimError::LaneMismatch {
            reason: "grid 3x3 vs 4x4".to_string()
        }
        .to_string()
        .contains("3x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
