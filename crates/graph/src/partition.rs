//! Multilevel recursive graph bisection (Section VI-B2 of the paper).
//!
//! The partitioner follows the classical METIS recipe referenced by the
//! paper: vertices are contracted along a heavy-edge matching until the graph
//! is small, the coarsest graph is bisected by greedy region growing, and the
//! bisection is projected back while a boundary-refinement pass
//! (Kernighan–Lin / Fiduccia–Mattheyses style) repairs the cut at every level.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::InteractionGraph;

/// A balanced two-way split of the vertex set.
#[derive(Debug, Clone, PartialEq)]
pub struct Bisection {
    /// Vertices on the left side.
    pub left: Vec<usize>,
    /// Vertices on the right side.
    pub right: Vec<usize>,
    /// Total weight of edges crossing the cut.
    pub cut_weight: f64,
}

/// Coarse graph together with the mapping from fine to coarse vertices.
struct CoarseLevel {
    graph: InteractionGraph,
    /// coarse vertex index of each fine vertex
    coarse_of: Vec<usize>,
    /// weight (number of original vertices) of each coarse vertex
    vertex_weight: Vec<f64>,
}

/// Maximum imbalance tolerated by the refinement pass, as a fraction of the
/// total vertex weight.
const BALANCE_SLACK: f64 = 0.05;

/// Number of vertices below which coarsening stops.
const COARSEST_SIZE: usize = 32;

/// Computes the weight of the cut induced by a side assignment
/// (`side[v] == 0` or `1`).
pub fn cut_weight(graph: &InteractionGraph, side: &[usize]) -> f64 {
    graph
        .edges()
        .iter()
        .filter(|(u, v, _)| side[*u] != side[*v])
        .map(|(_, _, w)| *w)
        .sum()
}

/// Bisects a graph into two balanced halves minimising the cut weight.
///
/// The split is balanced by vertex count (each side receives half the
/// vertices, ±1 plus the configured slack).
pub fn bisect<R: Rng>(graph: &InteractionGraph, rng: &mut R) -> Bisection {
    let n = graph.num_vertices();
    if n == 0 {
        return Bisection {
            left: Vec::new(),
            right: Vec::new(),
            cut_weight: 0.0,
        };
    }
    if n == 1 {
        return Bisection {
            left: vec![0],
            right: Vec::new(),
            cut_weight: 0.0,
        };
    }

    // --- Coarsening phase -------------------------------------------------
    // The matching buffers are preallocated once and reused across levels
    // (they only shrink as the graph contracts).
    let mut matched: Vec<usize> = Vec::with_capacity(n);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = graph.clone();
    let mut current_weights = vec![1.0; n];
    while current.num_vertices() > COARSEST_SIZE {
        let (coarse, coarse_of, weights) =
            coarsen(&current, &current_weights, rng, &mut matched, &mut order);
        if coarse.num_vertices() as f64 > 0.95 * current.num_vertices() as f64 {
            break; // no useful contraction possible
        }
        levels.push(CoarseLevel {
            graph: current,
            coarse_of,
            vertex_weight: current_weights,
        });
        current = coarse;
        current_weights = weights;
    }

    // --- Initial bisection on the coarsest graph --------------------------
    let mut side = initial_bisection(&current, &current_weights, rng);
    refine(&current, &current_weights, &mut side);

    // --- Uncoarsening + refinement -----------------------------------------
    while let Some(level) = levels.pop() {
        let mut fine_side = vec![0usize; level.graph.num_vertices()];
        for (fine, coarse) in level.coarse_of.iter().enumerate() {
            fine_side[fine] = side[*coarse];
        }
        side = fine_side;
        refine(&level.graph, &level.vertex_weight, &mut side);
    }

    let left: Vec<usize> = (0..n).filter(|v| side[*v] == 0).collect();
    let right: Vec<usize> = (0..n).filter(|v| side[*v] == 1).collect();
    Bisection {
        cut_weight: cut_weight(graph, &side),
        left,
        right,
    }
}

/// Recursively bisects a graph into `parts` parts (rounded up to a power of
/// two internally; surplus parts are left empty). Returns the part index of
/// each vertex.
pub fn recursive_bisection<R: Rng>(
    graph: &InteractionGraph,
    parts: usize,
    rng: &mut R,
) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut assignment = vec![0usize; n];
    if parts <= 1 || n == 0 {
        return assignment;
    }
    // Work queue of (vertex subset, part range).
    let all: Vec<usize> = (0..n).collect();
    let mut queue = vec![(all, 0usize, parts)];
    while let Some((vertices, part_start, part_count)) = queue.pop() {
        if part_count <= 1 || vertices.len() <= 1 {
            for v in vertices {
                assignment[v] = part_start;
            }
            continue;
        }
        let (sub, back) = graph.induced_subgraph(&vertices);
        let bi = bisect(&sub, rng);
        let left: Vec<usize> = bi.left.iter().map(|v| back[*v]).collect();
        let right: Vec<usize> = bi.right.iter().map(|v| back[*v]).collect();
        let left_parts = part_count / 2;
        let right_parts = part_count - left_parts;
        queue.push((left, part_start, left_parts));
        queue.push((right, part_start + left_parts, right_parts));
    }
    assignment
}

/// Heavy-edge matching coarsening: repeatedly match each unmatched vertex to
/// its heaviest unmatched neighbour and contract matched pairs. `matched` and
/// `order` are caller-owned scratch reused across levels.
fn coarsen<R: Rng>(
    graph: &InteractionGraph,
    vertex_weight: &[f64],
    rng: &mut R,
    matched: &mut Vec<usize>,
    order: &mut Vec<usize>,
) -> (InteractionGraph, Vec<usize>, Vec<f64>) {
    let n = graph.num_vertices();
    matched.clear();
    matched.resize(n, usize::MAX);
    order.clear();
    order.extend(0..n);
    order.shuffle(rng);

    let mut next_coarse = 0usize;
    let mut coarse_of = vec![usize::MAX; n];
    for &v in order.iter() {
        if matched[v] != usize::MAX {
            continue;
        }
        // Find heaviest unmatched neighbour.
        let mut best: Option<(usize, f64)> = None;
        for (nb, w) in graph.neighbors(v) {
            if matched[*nb] == usize::MAX && *nb != v {
                match best {
                    Some((_, bw)) if bw >= *w => {}
                    _ => best = Some((*nb, *w)),
                }
            }
        }
        match best {
            Some((nb, _)) => {
                matched[v] = nb;
                matched[nb] = v;
                coarse_of[v] = next_coarse;
                coarse_of[nb] = next_coarse;
            }
            None => {
                matched[v] = v;
                coarse_of[v] = next_coarse;
            }
        }
        next_coarse += 1;
    }

    let mut weights = vec![0.0; next_coarse];
    for v in 0..n {
        weights[coarse_of[v]] += vertex_weight[v];
    }
    let coarse_edges = graph
        .edges()
        .iter()
        .map(|(u, v, w)| (coarse_of[*u], coarse_of[*v], *w));
    let coarse = InteractionGraph::from_edges(next_coarse, coarse_edges);
    (coarse, coarse_of, weights)
}

/// Greedy region-growing initial bisection on the coarsest graph: BFS from a
/// random seed until half of the total vertex weight is collected.
fn initial_bisection<R: Rng>(
    graph: &InteractionGraph,
    vertex_weight: &[f64],
    rng: &mut R,
) -> Vec<usize> {
    let n = graph.num_vertices();
    let total: f64 = vertex_weight.iter().sum();
    let target = total / 2.0;
    let mut side = vec![1usize; n];
    if n == 0 {
        return side;
    }
    let seed = rng.gen_range(0..n);
    let mut grown = 0.0;
    let mut frontier = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    frontier.push_back(seed);
    visited[seed] = true;
    while let Some(v) = frontier.pop_front() {
        if grown + vertex_weight[v] > target && grown > 0.0 {
            continue;
        }
        side[v] = 0;
        grown += vertex_weight[v];
        for (nb, _) in graph.neighbors(v) {
            if !visited[*nb] {
                visited[*nb] = true;
                frontier.push_back(*nb);
            }
        }
        if grown >= target {
            break;
        }
    }
    // If BFS exhausted a small component before reaching the target, move
    // arbitrary unvisited vertices.
    if grown < target {
        for v in 0..n {
            if side[v] == 1 && grown + vertex_weight[v] <= target {
                side[v] = 0;
                grown += vertex_weight[v];
            }
            if grown >= target {
                break;
            }
        }
    }
    side
}

/// Boundary refinement: greedily move vertices whose gain (reduction in cut
/// weight) is positive, respecting the balance constraint. A simplified,
/// single-pass Fiduccia–Mattheyses sweep repeated until no improving move
/// exists.
fn refine(graph: &InteractionGraph, vertex_weight: &[f64], side: &mut [usize]) {
    let n = graph.num_vertices();
    if n == 0 {
        return;
    }
    let total: f64 = vertex_weight.iter().sum();
    // Allow a small imbalance, but never less than the ceiling of a perfect
    // split (otherwise odd-weight graphs could not be refined at all).
    let max_side = (total / 2.0 + BALANCE_SLACK * total).max((total + 1.0) / 2.0);

    let side_weight = |side: &[usize], s: usize| -> f64 {
        (0..n)
            .filter(|v| side[*v] == s)
            .map(|v| vertex_weight[v])
            .sum()
    };
    let mut weights = [side_weight(side, 0), side_weight(side, 1)];

    for _pass in 0..8 {
        let mut improved = false;
        for v in 0..n {
            let from = side[v];
            let to = 1 - from;
            if weights[to] + vertex_weight[v] > max_side {
                continue;
            }
            // Gain = (weight to own side) - (weight to other side); moving v
            // removes internal edges and internalises external ones.
            let mut internal = 0.0;
            let mut external = 0.0;
            for (nb, w) in graph.neighbors(v) {
                if side[*nb] == from {
                    internal += *w;
                } else {
                    external += *w;
                }
            }
            let gain = external - internal;
            if gain > 1e-12 {
                side[v] = to;
                weights[from] -= vertex_weight[v];
                weights[to] += vertex_weight[v];
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    /// Two 8-vertex cliques joined by one edge: the optimal cut is that edge.
    fn dumbbell() -> InteractionGraph {
        let mut edges = Vec::new();
        for i in 0..8usize {
            for j in (i + 1)..8 {
                edges.push((i, j, 1.0));
                edges.push((i + 8, j + 8, 1.0));
            }
        }
        edges.push((0, 8, 1.0));
        InteractionGraph::from_edges(16, edges)
    }

    #[test]
    fn bisect_finds_the_weak_link() {
        let g = dumbbell();
        let b = bisect(&g, &mut rng());
        assert_eq!(b.left.len() + b.right.len(), 16);
        assert_eq!(b.cut_weight, 1.0, "optimal cut severs only the bridge edge");
        // The two cliques end up on opposite sides.
        let side_of_0 = b.left.contains(&0);
        for v in 0..8 {
            assert_eq!(b.left.contains(&v), side_of_0);
        }
        for v in 8..16 {
            assert_eq!(b.left.contains(&v), !side_of_0);
        }
    }

    #[test]
    fn bisect_is_roughly_balanced() {
        // A 4x8 grid graph.
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * 8 + c;
        for r in 0..4usize {
            for c in 0..8usize {
                if c + 1 < 8 {
                    edges.push((idx(r, c), idx(r, c + 1), 1.0));
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c), 1.0));
                }
            }
        }
        let g = InteractionGraph::from_edges(32, edges);
        let b = bisect(&g, &mut rng());
        let diff = (b.left.len() as i64 - b.right.len() as i64).abs();
        assert!(
            diff <= 4,
            "sides too unbalanced: {} vs {}",
            b.left.len(),
            b.right.len()
        );
        assert!(b.cut_weight <= 8.0);
    }

    #[test]
    fn recursive_bisection_produces_requested_parts() {
        let g = dumbbell();
        let parts = recursive_bisection(&g, 4, &mut rng());
        assert_eq!(parts.len(), 16);
        let distinct: std::collections::HashSet<usize> = parts.iter().copied().collect();
        assert!(distinct.len() <= 4);
        assert!(distinct.len() >= 2);
        for p in &parts {
            assert!(*p < 4);
        }
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 2.0), (2, 3, 3.0), (1, 2, 5.0)]);
        let side = vec![0, 0, 1, 1];
        assert_eq!(cut_weight(&g, &side), 5.0);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = InteractionGraph::empty(0);
        let b = bisect(&empty, &mut rng());
        assert!(b.left.is_empty() && b.right.is_empty());

        let single = InteractionGraph::empty(1);
        let b = bisect(&single, &mut rng());
        assert_eq!(b.left.len() + b.right.len(), 1);

        let pair = InteractionGraph::from_edges(2, [(0, 1, 1.0)]);
        let b = bisect(&pair, &mut rng());
        assert_eq!(b.left.len(), 1);
        assert_eq!(b.right.len(), 1);
    }

    #[test]
    fn recursive_bisection_single_part_is_trivial() {
        let g = dumbbell();
        let parts = recursive_bisection(&g, 1, &mut rng());
        assert!(parts.iter().all(|p| *p == 0));
    }

    #[test]
    fn bisect_handles_disconnected_graphs() {
        let g = InteractionGraph::from_edges(6, [(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]);
        let b = bisect(&g, &mut rng());
        assert_eq!(b.left.len() + b.right.len(), 6);
        // A perfect bisection of three disjoint edges cuts nothing.
        assert!(b.cut_weight <= 1.0);
    }
}
