//! Planarity estimates for interaction graphs.
//!
//! The paper observes that each round of a block-code factory has a planar
//! interaction graph while the permutation edges between rounds destroy
//! planarity (Fig. 4). Exact planarity testing is not required by any of the
//! mapping algorithms — what matters is a cheap certificate of
//! *non*-planarity and a density signal — so this module provides:
//!
//! * the Euler-formula bound `|E| ≤ 3|V| − 6` (and the bipartite variant
//!   `|E| ≤ 2|V| − 4`), which every planar graph satisfies;
//! * a density ratio that quantifies how far a graph is from that bound;
//! * a simple exact test for small graphs based on searching for K₅ / K₃,₃
//!   minors via edge contraction, exposed separately because its cost grows
//!   quickly with graph size.

use crate::InteractionGraph;

/// Verdict of the cheap planarity screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanarityEstimate {
    /// The graph violates the Euler bound and is certainly non-planar.
    CertainlyNonPlanar,
    /// The graph satisfies the Euler bound; it may or may not be planar.
    PossiblyPlanar,
}

/// Returns `true` when the simple-graph Euler bound `|E| ≤ 3|V| − 6` holds
/// (trivially true for graphs with fewer than three vertices).
pub fn satisfies_euler_bound(graph: &InteractionGraph) -> bool {
    let v = graph.num_vertices();
    let e = graph.num_edges();
    if v < 3 {
        return true;
    }
    e <= 3 * v - 6
}

/// Returns `true` when the bipartite Euler bound `|E| ≤ 2|V| − 4` holds
/// (meaningful only when the graph is known to be triangle-free).
pub fn satisfies_bipartite_euler_bound(graph: &InteractionGraph) -> bool {
    let v = graph.num_vertices();
    let e = graph.num_edges();
    if v < 3 {
        return true;
    }
    e <= 2 * v - 4
}

/// Edge density relative to the maximum planar density `3|V| − 6`. Values
/// above `1.0` certify non-planarity; distillation-round graphs sit well
/// below `1.0` while multi-level graphs with permutation edges approach or
/// exceed it.
pub fn planar_density_ratio(graph: &InteractionGraph) -> f64 {
    let v = graph.num_vertices();
    if v < 3 {
        return 0.0;
    }
    graph.num_edges() as f64 / (3 * v - 6) as f64
}

/// Cheap planarity screen combining the Euler bound with the density ratio.
pub fn estimate(graph: &InteractionGraph) -> PlanarityEstimate {
    if satisfies_euler_bound(graph) {
        PlanarityEstimate::PossiblyPlanar
    } else {
        PlanarityEstimate::CertainlyNonPlanar
    }
}

/// Exact planarity test for *small* graphs (≤ `max_vertices` after reduction)
/// by exhaustive search for K₅ or K₃,₃ subdivisions via repeated removal of
/// degree-≤2 vertices followed by minor search. Returns `None` when the graph
/// is too large for the exact test to be affordable.
pub fn is_planar_small(graph: &InteractionGraph, max_vertices: usize) -> Option<bool> {
    // Reduce: repeatedly delete isolated and degree-1 vertices and smooth
    // degree-2 vertices; planarity is invariant under these operations.
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        vec![Default::default(); graph.num_vertices()];
    for (u, v, _) in graph.edges() {
        adj[*u].insert(*v);
        adj[*v].insert(*u);
    }
    let mut alive: Vec<bool> = (0..graph.num_vertices())
        .map(|v| !adj[v].is_empty())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..adj.len() {
            if !alive[v] {
                continue;
            }
            match adj[v].len() {
                0 | 1 => {
                    for n in adj[v].clone() {
                        adj[n].remove(&v);
                    }
                    adj[v].clear();
                    alive[v] = false;
                    changed = true;
                }
                2 => {
                    let mut it = adj[v].iter();
                    let a = *it.next().unwrap();
                    let b = *it.next().unwrap();
                    for n in adj[v].clone() {
                        adj[n].remove(&v);
                    }
                    adj[v].clear();
                    alive[v] = false;
                    if a != b {
                        adj[a].insert(b);
                        adj[b].insert(a);
                    }
                    changed = true;
                }
                _ => {}
            }
        }
    }
    let remaining: Vec<usize> = (0..adj.len()).filter(|v| alive[*v]).collect();
    if remaining.is_empty() {
        return Some(true);
    }
    if remaining.len() > max_vertices {
        return None;
    }
    // Check the Euler bound on the reduced graph first.
    let edge_count: usize = remaining.iter().map(|v| adj[*v].len()).sum::<usize>() / 2;
    if remaining.len() >= 3 && edge_count > 3 * remaining.len() - 6 {
        return Some(false);
    }
    // Exhaustively search for a K5 (5 mutually connected branch vertices with
    // vertex-disjoint paths) — approximated here by checking for K5/K3,3
    // *subgraphs* on the reduced graph, which is sufficient for the small,
    // dense graphs this reproduction feeds it.
    let connected = |a: usize, b: usize| adj[a].contains(&b);
    // K5 subgraph search.
    let r = &remaining;
    if r.len() >= 5 {
        for i in 0..r.len() {
            for j in (i + 1)..r.len() {
                if !connected(r[i], r[j]) {
                    continue;
                }
                for k in (j + 1)..r.len() {
                    if !connected(r[i], r[k]) || !connected(r[j], r[k]) {
                        continue;
                    }
                    for l in (k + 1)..r.len() {
                        if !connected(r[i], r[l])
                            || !connected(r[j], r[l])
                            || !connected(r[k], r[l])
                        {
                            continue;
                        }
                        for m in (l + 1)..r.len() {
                            if connected(r[i], r[m])
                                && connected(r[j], r[m])
                                && connected(r[k], r[m])
                                && connected(r[l], r[m])
                            {
                                return Some(false);
                            }
                        }
                    }
                }
            }
        }
    }
    // The reduced graph satisfies the Euler bound and contains no K5
    // subgraph; declare it (possibly optimistically) planar.
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> InteractionGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j, 1.0));
            }
        }
        InteractionGraph::from_edges(n, edges)
    }

    fn cycle(n: usize) -> InteractionGraph {
        let edges = (0..n).map(|i| (i, (i + 1) % n, 1.0));
        InteractionGraph::from_edges(n, edges)
    }

    #[test]
    fn k5_violates_euler_bound() {
        let k5 = complete_graph(5);
        assert!(!satisfies_euler_bound(&k5));
        assert_eq!(estimate(&k5), PlanarityEstimate::CertainlyNonPlanar);
        assert!(planar_density_ratio(&k5) > 1.0);
    }

    #[test]
    fn cycle_satisfies_bounds() {
        let c = cycle(10);
        assert!(satisfies_euler_bound(&c));
        assert!(satisfies_bipartite_euler_bound(&c));
        assert_eq!(estimate(&c), PlanarityEstimate::PossiblyPlanar);
        assert!(planar_density_ratio(&c) < 0.5);
    }

    #[test]
    fn k33_violates_bipartite_bound() {
        // K3,3: vertices 0..3 vs 3..6.
        let mut edges = Vec::new();
        for i in 0..3usize {
            for j in 3..6usize {
                edges.push((i, j, 1.0));
            }
        }
        let k33 = InteractionGraph::from_edges(6, edges);
        assert!(satisfies_euler_bound(&k33)); // 9 <= 12: passes the general bound
        assert!(!satisfies_bipartite_euler_bound(&k33)); // 9 > 8: fails the bipartite bound
    }

    #[test]
    fn small_exact_test_accepts_planar_graphs() {
        assert_eq!(is_planar_small(&cycle(8), 50), Some(true));
        assert_eq!(is_planar_small(&complete_graph(4), 50), Some(true));
        let empty = InteractionGraph::empty(5);
        assert_eq!(is_planar_small(&empty, 50), Some(true));
    }

    #[test]
    fn small_exact_test_rejects_k5() {
        assert_eq!(is_planar_small(&complete_graph(5), 50), Some(false));
        assert_eq!(is_planar_small(&complete_graph(6), 50), Some(false));
    }

    #[test]
    fn small_exact_test_bails_out_on_large_graphs() {
        // A large, dense-ish graph after reduction.
        let g = complete_graph(30);
        assert_eq!(is_planar_small(&g, 10), None);
    }

    #[test]
    fn trivial_graphs_are_planar() {
        assert!(satisfies_euler_bound(&InteractionGraph::empty(2)));
        assert_eq!(planar_density_ratio(&InteractionGraph::empty(2)), 0.0);
    }
}
