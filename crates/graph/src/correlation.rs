//! Pearson correlation, used to reproduce the metric-vs-latency r-values of
//! Fig. 6 of the paper.

/// Pearson correlation coefficient between two equally long samples.
///
/// Returns `None` when the samples are shorter than two elements, have
/// different lengths, or either sample has zero variance.
///
/// # Example
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// let r = msfu_graph::correlation::pearson(&xs, &ys).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Ordinary least-squares slope and intercept of `y` on `x`.
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mean_x) * (y - mean_y);
        var_x += (x - mean_x) * (x - mean_x);
    }
    if var_x <= 0.0 {
        return None;
    }
    let slope = cov / var_x;
    Some((slope, mean_y - slope * mean_x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let up: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -2.0 * x + 7.0).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_data_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys).unwrap();
        assert!((slope - 2.5).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }
}
