//! Community detection on interaction graphs (Section VI-B1 of the paper).
//!
//! Two detectors are provided:
//!
//! * [`louvain`] — greedy modularity optimisation (Blondel et al.), the
//!   detector used to drive the community-structure forces of the
//!   force-directed mapper.
//! * [`label_propagation`] — a cheaper detector useful for very large graphs.

use std::collections::{BTreeMap, HashMap};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::InteractionGraph;

/// A partition of the vertex set into communities.
#[derive(Debug, Clone, PartialEq)]
pub struct Communities {
    /// Community index of each vertex.
    pub assignment: Vec<usize>,
    /// Number of communities.
    pub count: usize,
}

impl Communities {
    fn from_assignment(mut assignment: Vec<usize>) -> Self {
        // Renumber communities densely.
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for a in &mut assignment {
            let next = remap.len();
            let id = *remap.entry(*a).or_insert(next);
            *a = id;
        }
        Communities {
            count: remap.len(),
            assignment,
        }
    }

    /// Vertices belonging to community `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// All communities as vertex lists.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, c) in self.assignment.iter().enumerate() {
            groups[*c].push(v);
        }
        groups
    }
}

/// Newman modularity of a community assignment on a weighted graph.
pub fn modularity(graph: &InteractionGraph, assignment: &[usize]) -> f64 {
    let m = graph.total_edge_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    // Sum over edges of the same community minus the degree product term.
    let mut community_degree: BTreeMap<usize, f64> = BTreeMap::new();
    let mut community_internal: BTreeMap<usize, f64> = BTreeMap::new();
    for (v, a) in assignment.iter().enumerate().take(graph.num_vertices()) {
        *community_degree.entry(*a).or_insert(0.0) += graph.weighted_degree(v);
    }
    for (u, v, w) in graph.edges() {
        if assignment[*u] == assignment[*v] {
            *community_internal.entry(assignment[*u]).or_insert(0.0) += *w;
        }
    }
    for (c, internal) in &community_internal {
        let deg = community_degree.get(c).copied().unwrap_or(0.0);
        q += internal / m - (deg / (2.0 * m)).powi(2);
    }
    // Communities with no internal edges still contribute their degree term.
    for (c, deg) in &community_degree {
        if !community_internal.contains_key(c) {
            q -= (deg / (2.0 * m)).powi(2);
        }
    }
    q
}

/// Louvain community detection: repeated local moving followed by graph
/// aggregation, until modularity stops improving.
///
/// The detector is deterministic for a fixed `rng` seed (vertex visiting order
/// is shuffled once per pass).
pub fn louvain<R: Rng>(graph: &InteractionGraph, rng: &mut R) -> Communities {
    let n = graph.num_vertices();
    if n == 0 {
        return Communities {
            assignment: Vec::new(),
            count: 0,
        };
    }

    // Current assignment of original vertices.
    let mut assignment: Vec<usize> = (0..n).collect();
    // Working graph (aggregated), its self-loop weights (internal community
    // weight accumulated by aggregation) and the mapping original vertex ->
    // super vertex.
    let mut work = graph.clone();
    let mut self_loops: Vec<f64> = vec![0.0; n];
    let mut vertex_of: Vec<usize> = (0..n).collect();

    for _pass in 0..10 {
        let improved = local_moving(&work, &self_loops, rng, &vertex_of, &mut assignment, n);
        if !improved {
            break;
        }
        // Aggregate: build the community graph, preserving intra-community
        // weight as self-loops so later passes see the true modularity terms.
        let communities = Communities::from_assignment(assignment.clone());
        let mut edges: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let mut new_self_loops = vec![0.0; communities.count];
        for (u, v, w) in work.edges() {
            // Map work-graph vertices back through membership of any original
            // vertex they represent.
            let cu = community_of_super(*u, &vertex_of, &communities.assignment);
            let cv = community_of_super(*v, &vertex_of, &communities.assignment);
            if cu == cv {
                new_self_loops[cu] += *w;
                continue;
            }
            let key = if cu < cv { (cu, cv) } else { (cv, cu) };
            *edges.entry(key).or_insert(0.0) += *w;
        }
        for (s, loop_weight) in self_loops.iter().enumerate() {
            if *loop_weight > 0.0 {
                let c = community_of_super(s, &vertex_of, &communities.assignment);
                new_self_loops[c] += *loop_weight;
            }
        }
        work = InteractionGraph::from_edges(
            communities.count,
            edges.into_iter().map(|((a, b), w)| (a, b, w)),
        );
        self_loops = new_self_loops;
        // After aggregation every original vertex's super vertex is its community.
        vertex_of = communities.assignment.clone();
        assignment = communities.assignment;
        if work.num_edges() == 0 {
            break;
        }
    }

    Communities::from_assignment(assignment)
}

/// Community of super-vertex `s`: look up any original vertex mapped to `s`.
fn community_of_super(s: usize, vertex_of: &[usize], assignment: &[usize]) -> usize {
    // vertex_of maps original -> super; find the community recorded for one of
    // them. Because local_moving assigns communities per super vertex and then
    // writes them back per original vertex, every original vertex mapped to
    // `s` shares the same community.
    for (orig, sv) in vertex_of.iter().enumerate() {
        if *sv == s {
            return assignment[orig];
        }
    }
    s
}

/// One Louvain local-moving phase on the working (aggregated) graph. Returns
/// whether any vertex changed community. `self_loops[v]` is the internal
/// weight absorbed into super-vertex `v` by earlier aggregation passes; it
/// contributes to the vertex degree and to the total weight `m`.
fn local_moving<R: Rng>(
    work: &InteractionGraph,
    self_loops: &[f64],
    rng: &mut R,
    vertex_of: &[usize],
    assignment: &mut [usize],
    num_original: usize,
) -> bool {
    let nw = work.num_vertices();
    let m = work.total_edge_weight() + self_loops.iter().sum::<f64>();
    if m <= 0.0 || nw == 0 {
        return false;
    }
    // Community of each super vertex; initially its own community.
    let mut community: Vec<usize> = (0..nw).collect();
    let degree: Vec<f64> = (0..nw)
        .map(|v| work.weighted_degree(v) + 2.0 * self_loops[v])
        .collect();
    let mut community_degree: Vec<f64> = degree.clone();

    let mut order: Vec<usize> = (0..nw).collect();
    order.shuffle(rng);

    let mut any_moved = false;
    for _ in 0..10 {
        let mut moved = false;
        for &v in &order {
            let current = community[v];
            // Weights from v to each neighbouring community. Ordered map:
            // candidate iteration order breaks near-ties, so a HashMap here
            // would make the whole detector nondeterministic per run.
            let mut to_community: BTreeMap<usize, f64> = BTreeMap::new();
            for (n, w) in work.neighbors(v) {
                *to_community.entry(community[*n]).or_insert(0.0) += *w;
            }
            // Remove v from its community.
            community_degree[current] -= degree[v];
            let mut best = current;
            let mut best_gain = to_community.get(&current).copied().unwrap_or(0.0)
                - community_degree[current] * degree[v] / (2.0 * m);
            for (&c, &w_to) in &to_community {
                if c == current {
                    continue;
                }
                let gain = w_to - community_degree[c] * degree[v] / (2.0 * m);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best = c;
                }
            }
            community_degree[best] += degree[v];
            if best != current {
                community[v] = best;
                moved = true;
                any_moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Write the community of each original vertex.
    for orig in 0..num_original {
        let sv = vertex_of[orig];
        assignment[orig] = community[sv];
    }
    any_moved
}

/// Label-propagation community detection: every vertex repeatedly adopts the
/// most common label among its neighbours (ties broken towards the smallest
/// label), until a fixed point or `max_iters` sweeps.
pub fn label_propagation<R: Rng>(
    graph: &InteractionGraph,
    max_iters: usize,
    rng: &mut R,
) -> Communities {
    let n = graph.num_vertices();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..max_iters {
        order.shuffle(rng);
        let mut changed = false;
        for &v in &order {
            if graph.degree(v) == 0 {
                continue;
            }
            let mut votes: BTreeMap<usize, f64> = BTreeMap::new();
            for (nb, w) in graph.neighbors(v) {
                *votes.entry(labels[*nb]).or_insert(0.0) += *w;
            }
            let best = votes
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .map(|(l, _)| *l)
                .unwrap_or(labels[v]);
            if best != labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Communities::from_assignment(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    /// Two dense cliques joined by a single weak edge.
    fn two_cliques() -> InteractionGraph {
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j, 1.0));
                edges.push((i + 5, j + 5, 1.0));
            }
        }
        edges.push((0, 5, 0.1));
        InteractionGraph::from_edges(10, edges)
    }

    #[test]
    fn louvain_finds_the_two_cliques() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        assert_eq!(c.count, 2);
        // Vertices 0..5 share one community, 5..10 the other.
        let first = c.assignment[0];
        for v in 0..5 {
            assert_eq!(c.assignment[v], first);
        }
        let second = c.assignment[5];
        assert_ne!(first, second);
        for v in 5..10 {
            assert_eq!(c.assignment[v], second);
        }
    }

    #[test]
    fn louvain_modularity_beats_singletons() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        let singletons: Vec<usize> = (0..g.num_vertices()).collect();
        assert!(modularity(&g, &c.assignment) > modularity(&g, &singletons));
    }

    #[test]
    fn label_propagation_also_finds_cliques() {
        let g = two_cliques();
        let c = label_propagation(&g, 50, &mut rng());
        assert!(c.count <= 3, "expected few communities, found {}", c.count);
        // The two clique cores must not share a community.
        assert_ne!(c.assignment[1], c.assignment[6]);
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = two_cliques();
        let all_same = vec![0usize; g.num_vertices()];
        let q = modularity(&g, &all_same);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    fn empty_graph_handled() {
        let g = InteractionGraph::empty(0);
        let c = louvain(&g, &mut rng());
        assert_eq!(c.count, 0);
        assert_eq!(modularity(&g, &c.assignment), 0.0);
    }

    #[test]
    fn groups_and_members_are_consistent() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        let groups = c.groups();
        assert_eq!(groups.len(), c.count);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, g.num_vertices());
        for (i, group) in groups.iter().enumerate() {
            assert_eq!(&c.members(i), group);
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_community() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0)]);
        let c = louvain(&g, &mut rng());
        // Vertices 2 and 3 are isolated; they must not join 0/1's community.
        assert_ne!(c.assignment[2], c.assignment[0]);
        assert_ne!(c.assignment[3], c.assignment[0]);
    }
}
