//! Community detection on interaction graphs (Section VI-B1 of the paper).
//!
//! Two detectors are provided:
//!
//! * [`louvain`] — greedy modularity optimisation (Blondel et al.), the
//!   detector used to drive the community-structure forces of the
//!   force-directed mapper.
//! * [`label_propagation`] — a cheaper detector useful for very large graphs.
//!
//! Both detectors run entirely on index-addressed scratch arrays over the CSR
//! adjacency — no per-vertex maps in the inner loops — and are deterministic
//! by construction: candidate communities/labels are visited in ascending
//! index order. The Louvain coarsening loop aggregates levels into reused
//! buffers ([`CommunityScratch`]) instead of cloning and rebuilding the graph
//! per level; [`louvain_with`] lets long-lived callers reuse one scratch
//! across many detections.

use std::collections::{BTreeMap, HashMap};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::InteractionGraph;

/// A partition of the vertex set into communities.
#[derive(Debug, Clone, PartialEq)]
pub struct Communities {
    /// Community index of each vertex.
    pub assignment: Vec<usize>,
    /// Number of communities.
    pub count: usize,
}

impl Communities {
    fn from_assignment(mut assignment: Vec<usize>) -> Self {
        // Renumber communities densely.
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for a in &mut assignment {
            let next = remap.len();
            let id = *remap.entry(*a).or_insert(next);
            *a = id;
        }
        Communities {
            count: remap.len(),
            assignment,
        }
    }

    /// Vertices belonging to community `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// All communities as vertex lists.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, c) in self.assignment.iter().enumerate() {
            groups[*c].push(v);
        }
        groups
    }
}

/// Newman modularity of a community assignment on a weighted graph.
pub fn modularity(graph: &InteractionGraph, assignment: &[usize]) -> f64 {
    let m = graph.total_edge_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let mut q = 0.0;
    // Sum over edges of the same community minus the degree product term.
    let mut community_degree: BTreeMap<usize, f64> = BTreeMap::new();
    let mut community_internal: BTreeMap<usize, f64> = BTreeMap::new();
    for (v, a) in assignment.iter().enumerate().take(graph.num_vertices()) {
        *community_degree.entry(*a).or_insert(0.0) += graph.weighted_degree(v);
    }
    for (u, v, w) in graph.edges() {
        if assignment[*u] == assignment[*v] {
            *community_internal.entry(assignment[*u]).or_insert(0.0) += *w;
        }
    }
    for (c, internal) in &community_internal {
        let deg = community_degree.get(c).copied().unwrap_or(0.0);
        q += internal / m - (deg / (2.0 * m)).powi(2);
    }
    // Communities with no internal edges still contribute their degree term.
    for (c, deg) in &community_degree {
        if !community_internal.contains_key(c) {
            q -= (deg / (2.0 * m)).powi(2);
        }
    }
    q
}

/// Reusable buffers for [`louvain_with`] and [`label_propagation_with`]: the
/// aggregated work graph (double-buffered canonical edge lists plus a CSR
/// rebuilt in place per level) and the index-addressed local-moving state.
/// One scratch can serve any number of detections on graphs of any size —
/// buffers only ever grow.
#[derive(Debug, Clone, Default)]
pub struct CommunityScratch {
    // Aggregated work graph (level > 0), coarsened in place.
    work_edges: Vec<(usize, usize, f64)>,
    next_edges: Vec<(usize, usize, f64)>,
    keyed: Vec<((usize, usize), f64)>,
    offsets: Vec<usize>,
    adj: Vec<(usize, f64)>,
    self_loops: Vec<f64>,
    next_self_loops: Vec<f64>,
    vertex_of: Vec<usize>,
    raw_to_dense: Vec<usize>,
    // Local-moving / voting state.
    community: Vec<usize>,
    degree: Vec<f64>,
    community_degree: Vec<f64>,
    order: Vec<usize>,
    weight_to: Vec<f64>,
    stamp: Vec<u64>,
    stamp_gen: u64,
    touched: Vec<usize>,
}

impl CommunityScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Louvain community detection: repeated local moving followed by graph
/// aggregation, until modularity stops improving.
///
/// The detector is deterministic for a fixed `rng` seed (vertex visiting order
/// is shuffled once per pass).
pub fn louvain<R: Rng>(graph: &InteractionGraph, rng: &mut R) -> Communities {
    louvain_with(graph, rng, &mut CommunityScratch::default())
}

/// [`louvain`] against caller-held [`CommunityScratch`], so a loop of
/// detections (e.g. one per force-directed refinement) reuses one set of
/// aggregation buffers instead of reallocating them per call and per
/// coarsening level. Results are identical to [`louvain`].
pub fn louvain_with<R: Rng>(
    graph: &InteractionGraph,
    rng: &mut R,
    scratch: &mut CommunityScratch,
) -> Communities {
    let n = graph.num_vertices();
    if n == 0 {
        return Communities {
            assignment: Vec::new(),
            count: 0,
        };
    }

    // Current (dense) assignment of original vertices, and the super vertex
    // each original vertex is represented by in the work graph.
    let mut assignment: Vec<usize> = (0..n).collect();
    scratch.vertex_of.clear();
    scratch.vertex_of.extend(0..n);
    scratch.self_loops.clear();
    scratch.self_loops.resize(n, 0.0);

    // Level 0 moves on the input graph's CSR directly; aggregation then
    // coarsens into the scratch buffers, which later levels reuse in place.
    let mut work_n = n;
    let mut on_input = true;

    for _pass in 0..10 {
        let improved = {
            let (offsets, adj, edges) = if on_input {
                let (o, a) = graph.csr();
                (o, a, graph.edges())
            } else {
                (
                    scratch.offsets.as_slice(),
                    scratch.adj.as_slice(),
                    scratch.work_edges.as_slice(),
                )
            };
            local_moving(
                work_n,
                offsets,
                adj,
                edges,
                &scratch.self_loops,
                rng,
                &mut scratch.community,
                &mut scratch.degree,
                &mut scratch.community_degree,
                &mut scratch.order,
                &mut scratch.weight_to,
                &mut scratch.stamp,
                &mut scratch.stamp_gen,
                &mut scratch.touched,
            )
        };
        if !improved {
            break;
        }
        // Aggregate: renumber the moved communities densely (first-appearance
        // order over original vertices, exactly `Communities::from_assignment`
        // semantics) and build the community graph, preserving intra-community
        // weight as self-loops so later passes see the true modularity terms.
        scratch.raw_to_dense.clear();
        scratch.raw_to_dense.resize(work_n, usize::MAX);
        let mut count = 0usize;
        for (orig, slot) in assignment.iter_mut().enumerate() {
            let raw = scratch.community[scratch.vertex_of[orig]];
            if scratch.raw_to_dense[raw] == usize::MAX {
                scratch.raw_to_dense[raw] = count;
                count += 1;
            }
            *slot = scratch.raw_to_dense[raw];
        }
        scratch.keyed.clear();
        scratch.next_self_loops.clear();
        scratch.next_self_loops.resize(count, 0.0);
        {
            let src_edges = if on_input {
                graph.edges()
            } else {
                scratch.work_edges.as_slice()
            };
            for (u, v, w) in src_edges {
                let cu = scratch.raw_to_dense[scratch.community[*u]];
                let cv = scratch.raw_to_dense[scratch.community[*v]];
                if cu == cv {
                    scratch.next_self_loops[cu] += *w;
                } else {
                    let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                    scratch.keyed.push((key, *w));
                }
            }
        }
        for (sv, loop_weight) in scratch.self_loops.iter().enumerate() {
            if *loop_weight > 0.0 {
                let c = scratch.raw_to_dense[scratch.community[sv]];
                scratch.next_self_loops[c] += *loop_weight;
            }
        }
        // Canonical sort + fold (shared with `InteractionGraph::from_edges`),
        // without rebuilding a map per level.
        crate::graph::merge_keyed_edges(&mut scratch.keyed, &mut scratch.next_edges);
        std::mem::swap(&mut scratch.work_edges, &mut scratch.next_edges);
        crate::graph::build_csr(
            count,
            &scratch.work_edges,
            &mut scratch.offsets,
            &mut scratch.adj,
        );
        std::mem::swap(&mut scratch.self_loops, &mut scratch.next_self_loops);
        scratch.self_loops.truncate(count);
        work_n = count;
        on_input = false;
        // After aggregation every original vertex's super vertex is its
        // community.
        scratch.vertex_of.clear();
        scratch.vertex_of.extend_from_slice(&assignment);
        if scratch.work_edges.is_empty() {
            break;
        }
    }

    Communities::from_assignment(assignment)
}

/// One Louvain local-moving phase on the working (aggregated) CSR graph.
/// Returns whether any vertex changed community. `self_loops[v]` is the
/// internal weight absorbed into super-vertex `v` by earlier aggregation
/// passes; it contributes to the vertex degree and to the total weight `m`.
/// Candidate communities are visited in ascending index order (sorted touched
/// list), the same tie-break order an ordered map would give.
#[allow(clippy::too_many_arguments)]
fn local_moving<R: Rng>(
    nw: usize,
    offsets: &[usize],
    adj: &[(usize, f64)],
    edges: &[(usize, usize, f64)],
    self_loops: &[f64],
    rng: &mut R,
    community: &mut Vec<usize>,
    degree: &mut Vec<f64>,
    community_degree: &mut Vec<f64>,
    order: &mut Vec<usize>,
    weight_to: &mut Vec<f64>,
    stamp: &mut Vec<u64>,
    stamp_gen: &mut u64,
    touched: &mut Vec<usize>,
) -> bool {
    let m = edges.iter().map(|(_, _, w)| *w).sum::<f64>() + self_loops.iter().sum::<f64>();
    if m <= 0.0 || nw == 0 {
        return false;
    }
    // Community of each super vertex; initially its own community.
    community.clear();
    community.extend(0..nw);
    degree.clear();
    degree.extend((0..nw).map(|v| {
        adj[offsets[v]..offsets[v + 1]]
            .iter()
            .map(|(_, w)| *w)
            .sum::<f64>()
            + 2.0 * self_loops[v]
    }));
    community_degree.clear();
    community_degree.extend_from_slice(degree);

    order.clear();
    order.extend(0..nw);
    order.shuffle(rng);

    if weight_to.len() < nw {
        weight_to.resize(nw, 0.0);
        stamp.resize(nw, 0);
    }

    let mut any_moved = false;
    for _ in 0..10 {
        let mut moved = false;
        for &v in order.iter() {
            let current = community[v];
            // Weights from v to each neighbouring community, accumulated into
            // a stamped scratch array (one slot per community) instead of a
            // per-vertex ordered map.
            *stamp_gen += 1;
            touched.clear();
            for (nb, w) in &adj[offsets[v]..offsets[v + 1]] {
                let c = community[*nb];
                if stamp[c] != *stamp_gen {
                    stamp[c] = *stamp_gen;
                    weight_to[c] = 0.0;
                    touched.push(c);
                }
                weight_to[c] += *w;
            }
            touched.sort_unstable();
            // Remove v from its community.
            community_degree[current] -= degree[v];
            let to_current = if stamp[current] == *stamp_gen {
                weight_to[current]
            } else {
                0.0
            };
            let mut best = current;
            let mut best_gain = to_current - community_degree[current] * degree[v] / (2.0 * m);
            for &c in touched.iter() {
                if c == current {
                    continue;
                }
                let gain = weight_to[c] - community_degree[c] * degree[v] / (2.0 * m);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best = c;
                }
            }
            community_degree[best] += degree[v];
            if best != current {
                community[v] = best;
                moved = true;
                any_moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    any_moved
}

/// Label-propagation community detection: every vertex repeatedly adopts the
/// most common label among its neighbours (ties broken towards the smallest
/// label), until a fixed point or `max_iters` sweeps.
pub fn label_propagation<R: Rng>(
    graph: &InteractionGraph,
    max_iters: usize,
    rng: &mut R,
) -> Communities {
    label_propagation_with(graph, max_iters, rng, &mut CommunityScratch::default())
}

/// [`label_propagation`] against caller-held [`CommunityScratch`] (vote
/// buffers are reused across sweeps and calls). Results are identical to
/// [`label_propagation`].
pub fn label_propagation_with<R: Rng>(
    graph: &InteractionGraph,
    max_iters: usize,
    rng: &mut R,
    scratch: &mut CommunityScratch,
) -> Communities {
    let n = graph.num_vertices();
    let mut labels: Vec<usize> = (0..n).collect();
    scratch.order.clear();
    scratch.order.extend(0..n);
    if scratch.weight_to.len() < n {
        scratch.weight_to.resize(n, 0.0);
        scratch.stamp.resize(n, 0);
    }
    for _ in 0..max_iters {
        scratch.order.shuffle(rng);
        let mut changed = false;
        for &v in scratch.order.iter() {
            if graph.degree(v) == 0 {
                continue;
            }
            scratch.stamp_gen += 1;
            scratch.touched.clear();
            for (nb, w) in graph.neighbors(v) {
                let l = labels[*nb];
                if scratch.stamp[l] != scratch.stamp_gen {
                    scratch.stamp[l] = scratch.stamp_gen;
                    scratch.weight_to[l] = 0.0;
                    scratch.touched.push(l);
                }
                scratch.weight_to[l] += *w;
            }
            scratch.touched.sort_unstable();
            // Max vote over ascending labels; on weight ties the *larger*
            // label encountered later wins only if strictly heavier, i.e.
            // ties resolve towards the smallest label.
            let mut best: Option<(usize, f64)> = None;
            for &l in scratch.touched.iter() {
                let w = scratch.weight_to[l];
                best = match best {
                    None => Some((l, w)),
                    Some((bl, bw)) => {
                        let keep = bw.partial_cmp(&w).unwrap().then(l.cmp(&bl))
                            == std::cmp::Ordering::Greater;
                        if keep {
                            Some((bl, bw))
                        } else {
                            Some((l, w))
                        }
                    }
                };
            }
            let best = best.map(|(l, _)| l).unwrap_or(labels[v]);
            if best != labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Communities::from_assignment(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    /// Two dense cliques joined by a single weak edge.
    fn two_cliques() -> InteractionGraph {
        let mut edges = Vec::new();
        for i in 0..5usize {
            for j in (i + 1)..5 {
                edges.push((i, j, 1.0));
                edges.push((i + 5, j + 5, 1.0));
            }
        }
        edges.push((0, 5, 0.1));
        InteractionGraph::from_edges(10, edges)
    }

    #[test]
    fn louvain_finds_the_two_cliques() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        assert_eq!(c.count, 2);
        // Vertices 0..5 share one community, 5..10 the other.
        let first = c.assignment[0];
        for v in 0..5 {
            assert_eq!(c.assignment[v], first);
        }
        let second = c.assignment[5];
        assert_ne!(first, second);
        for v in 5..10 {
            assert_eq!(c.assignment[v], second);
        }
    }

    #[test]
    fn louvain_modularity_beats_singletons() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        let singletons: Vec<usize> = (0..g.num_vertices()).collect();
        assert!(modularity(&g, &c.assignment) > modularity(&g, &singletons));
    }

    #[test]
    fn label_propagation_also_finds_cliques() {
        let g = two_cliques();
        let c = label_propagation(&g, 50, &mut rng());
        assert!(c.count <= 3, "expected few communities, found {}", c.count);
        // The two clique cores must not share a community.
        assert_ne!(c.assignment[1], c.assignment[6]);
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = two_cliques();
        let all_same = vec![0usize; g.num_vertices()];
        let q = modularity(&g, &all_same);
        assert!(q.abs() < 1e-9);
    }

    #[test]
    fn empty_graph_handled() {
        let g = InteractionGraph::empty(0);
        let c = louvain(&g, &mut rng());
        assert_eq!(c.count, 0);
        assert_eq!(modularity(&g, &c.assignment), 0.0);
    }

    #[test]
    fn groups_and_members_are_consistent() {
        let g = two_cliques();
        let c = louvain(&g, &mut rng());
        let groups = c.groups();
        assert_eq!(groups.len(), c.count);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, g.num_vertices());
        for (i, group) in groups.iter().enumerate() {
            assert_eq!(&c.members(i), group);
        }
    }

    #[test]
    fn isolated_vertices_keep_their_own_community() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0)]);
        let c = louvain(&g, &mut rng());
        // Vertices 2 and 3 are isolated; they must not join 0/1's community.
        assert_ne!(c.assignment[2], c.assignment[0]);
        assert_ne!(c.assignment[3], c.assignment[0]);
    }
}
