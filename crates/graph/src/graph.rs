//! The program interaction graph.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use msfu_circuit::Circuit;

/// Weighted, undirected program interaction graph.
///
/// Vertices are logical qubits (dense indices `0..n`), edges are two-qubit
/// interactions; the weight of an edge is the number of times that pair of
/// qubits interacts in the circuit (Section VI of the paper).
///
/// # Example
///
/// ```
/// use msfu_graph::InteractionGraph;
///
/// let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.total_edge_weight(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionGraph {
    num_vertices: usize,
    /// Canonical edge list: `u < v`, with positive weight.
    edges: Vec<(usize, usize, f64)>,
    /// Adjacency lists: `adjacency[u]` holds `(v, weight)` pairs.
    adjacency: Vec<Vec<(usize, f64)>>,
}

impl InteractionGraph {
    /// Creates an empty graph over `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        InteractionGraph {
            num_vertices,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_vertices],
        }
    }

    /// Builds a graph from an edge list. Parallel edges are merged by summing
    /// their weights; self-loops are ignored.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut merged: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (a, b, w) in edges {
            if a == b {
                continue;
            }
            let key = if a < b { (a, b) } else { (b, a) };
            *merged.entry(key).or_insert(0.0) += w;
        }
        let mut g = InteractionGraph::empty(num_vertices);
        for ((u, v), w) in merged {
            g.push_edge(u, v, w);
        }
        g
    }

    /// Builds the interaction graph of a circuit: one vertex per qubit, one
    /// edge per interacting pair weighted by interaction count.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let pairs = circuit.interaction_pairs();
        Self::from_edges(
            circuit.num_qubits() as usize,
            pairs
                .into_iter()
                .map(|((a, b), w)| (a.index(), b.index(), w as f64)),
        )
    }

    fn push_edge(&mut self, u: usize, v: usize, w: f64) {
        debug_assert!(u < v && v < self.num_vertices);
        self.edges.push((u, v, w));
        self.adjacency[u].push((v, w));
        self.adjacency[v].push((u, w));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list (`u < v`).
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Neighbours of a vertex with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adjacency[v]
    }

    /// Unweighted degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Weighted degree (sum of incident edge weights) of a vertex.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        self.adjacency[v].iter().map(|(_, w)| *w).sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|(_, _, w)| *w).sum()
    }

    /// Weight of the edge between `u` and `v`, or zero if absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        self.adjacency[u]
            .iter()
            .find(|(n, _)| *n == v)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Vertices with at least one incident edge.
    pub fn active_vertices(&self) -> Vec<usize> {
        (0..self.num_vertices)
            .filter(|v| !self.adjacency[*v].is_empty())
            .collect()
    }

    /// Extracts the subgraph induced by `vertices`. Returns the subgraph and
    /// the mapping `local index -> original vertex`.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (InteractionGraph, Vec<usize>) {
        let mut local_of = vec![usize::MAX; self.num_vertices];
        for (i, v) in vertices.iter().enumerate() {
            local_of[*v] = i;
        }
        let edges = self.edges.iter().filter_map(|(u, v, w)| {
            let lu = local_of[*u];
            let lv = local_of[*v];
            if lu != usize::MAX && lv != usize::MAX {
                Some((lu, lv, *w))
            } else {
                None
            }
        });
        (
            InteractionGraph::from_edges(vertices.len(), edges),
            vertices.to_vec(),
        )
    }

    /// Connected components of the graph, as lists of vertex indices.
    /// Isolated vertices each form their own component.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut visited = vec![false; self.num_vertices];
        let mut components = Vec::new();
        for start in 0..self.num_vertices {
            if visited[start] {
                continue;
            }
            let mut stack = vec![start];
            visited[start] = true;
            let mut component = Vec::new();
            while let Some(v) = stack.pop() {
                component.push(v);
                for (n, _) in &self.adjacency[v] {
                    if !visited[*n] {
                        visited[*n] = true;
                        stack.push(*n);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::{CircuitBuilder, QubitRole};

    #[test]
    fn from_edges_merges_parallel_and_drops_loops() {
        let g = InteractionGraph::from_edges(3, [(0, 1, 1.0), (1, 0, 2.0), (2, 2, 5.0)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), 3.0);
        assert_eq!(g.edge_weight(1, 0), 3.0);
        assert_eq!(g.edge_weight(0, 2), 0.0);
    }

    #[test]
    fn from_circuit_counts_interactions() {
        let mut b = CircuitBuilder::new("c");
        let q = b.register("q", QubitRole::Data, 3);
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[1], q[0]).unwrap();
        b.cxx(q[2], vec![q[0], q[1]]).unwrap();
        b.h(q[0]).unwrap();
        let c = b.build();
        let g = InteractionGraph::from_circuit(&c);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), 2.0);
        assert_eq!(g.edge_weight(0, 2), 1.0);
    }

    #[test]
    fn degrees_and_weights() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.weighted_degree(0), 6.0);
        assert_eq!(g.total_edge_weight(), 6.0);
        assert_eq!(g.active_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_are_not_active() {
        let g = InteractionGraph::from_edges(5, [(0, 1, 1.0)]);
        assert_eq!(g.active_vertices(), vec![0, 1]);
    }

    #[test]
    fn induced_subgraph_relabels_vertices() {
        let g = InteractionGraph::from_edges(5, [(0, 1, 1.0), (1, 4, 2.0), (2, 3, 1.0)]);
        let (sub, back) = g.induced_subgraph(&[1, 4, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.edge_weight(0, 1), 2.0); // (1,4) became (0,1)
        assert_eq!(back, vec![1, 4, 2]);
    }

    #[test]
    fn connected_components_partition_vertices() {
        let g = InteractionGraph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = InteractionGraph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.connected_components().len(), 3);
    }
}
