//! The program interaction graph.

use serde::{Deserialize, Serialize};

use msfu_circuit::Circuit;

/// Weighted, undirected program interaction graph.
///
/// Vertices are logical qubits (dense indices `0..n`), edges are two-qubit
/// interactions; the weight of an edge is the number of times that pair of
/// qubits interacts in the circuit (Section VI of the paper).
///
/// The adjacency is stored in compressed-sparse-row (CSR) form: one flat
/// `(neighbor, weight)` array plus per-vertex offsets, with every vertex's
/// neighbor list sorted by index. Iteration order is therefore fixed by the
/// representation itself — the determinism the mapping algorithms rely on is
/// structural, not an artifact of map iteration order — and traversals are
/// cache-friendly slices instead of per-vertex heap allocations.
///
/// # Example
///
/// ```
/// use msfu_graph::InteractionGraph;
///
/// let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.total_edge_weight(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionGraph {
    num_vertices: usize,
    /// Canonical edge list: `u < v`, sorted lexicographically, with positive
    /// weight and no duplicates.
    edges: Vec<(usize, usize, f64)>,
    /// CSR offsets: the neighbors of `v` live in
    /// `adj[offsets[v]..offsets[v + 1]]`. Length `num_vertices + 1`.
    offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbor, weight)` pairs, sorted by neighbor
    /// index within each vertex's slice.
    adj: Vec<(usize, f64)>,
}

impl InteractionGraph {
    /// Creates an empty graph over `num_vertices` isolated vertices.
    pub fn empty(num_vertices: usize) -> Self {
        InteractionGraph {
            num_vertices,
            edges: Vec::new(),
            offsets: vec![0; num_vertices + 1],
            adj: Vec::new(),
        }
    }

    /// Builds a graph from an edge list. Parallel edges are merged by summing
    /// their weights; self-loops are ignored.
    pub fn from_edges<I>(num_vertices: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut keyed: Vec<((usize, usize), f64)> = edges
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .map(|(a, b, w)| (if a < b { (a, b) } else { (b, a) }, w))
            .collect();
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(keyed.len());
        merge_keyed_edges(&mut keyed, &mut merged);
        Self::from_sorted_edges(num_vertices, merged)
    }

    /// Builds a graph from a canonical edge list — `u < v`, sorted
    /// lexicographically, no duplicate pairs — skipping the merge pass of
    /// [`InteractionGraph::from_edges`]. Used by the coarsening loops of the
    /// community/partition algorithms, which produce canonical lists by
    /// construction.
    ///
    /// # Panics
    ///
    /// Debug-asserts canonical form.
    pub fn from_sorted_edges(num_vertices: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        debug_assert!(edges
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        debug_assert!(edges.iter().all(|(u, v, _)| u < v && *v < num_vertices));
        // Filling in lexicographic edge order yields ascending neighbor
        // indices within every vertex's slice: for vertex x, all (a, x) with
        // a < x precede all (x, b) in the sorted list, each group ascending.
        let mut offsets = Vec::new();
        let mut adj = Vec::new();
        build_csr(num_vertices, &edges, &mut offsets, &mut adj);
        InteractionGraph {
            num_vertices,
            edges,
            offsets,
            adj,
        }
    }

    /// Builds the interaction graph of a circuit: one vertex per qubit, one
    /// edge per interacting pair weighted by interaction count.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let pairs = circuit.interaction_pairs();
        Self::from_edges(
            circuit.num_qubits() as usize,
            pairs
                .into_iter()
                .map(|((a, b), w)| (a.index(), b.index(), w as f64)),
        )
    }

    /// The raw CSR arrays `(offsets, adj)`: the neighbors of `v` live in
    /// `adj[offsets[v]..offsets[v + 1]]`.
    pub(crate) fn csr(&self) -> (&[usize], &[(usize, f64)]) {
        (&self.offsets, &self.adj)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list (`u < v`, lexicographically sorted).
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Neighbours of a vertex with edge weights, sorted by neighbor index.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Unweighted degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Weighted degree (sum of incident edge weights) of a vertex.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        self.neighbors(v).iter().map(|(_, w)| *w).sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|(_, _, w)| *w).sum()
    }

    /// Weight of the edge between `u` and `v`, or zero if absent. Binary
    /// search over the sorted neighbor slice.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        let nbs = self.neighbors(u);
        match nbs.binary_search_by_key(&v, |(n, _)| *n) {
            Ok(i) => nbs[i].1,
            Err(_) => 0.0,
        }
    }

    /// Vertices with at least one incident edge.
    pub fn active_vertices(&self) -> Vec<usize> {
        (0..self.num_vertices)
            .filter(|v| self.degree(*v) > 0)
            .collect()
    }

    /// Extracts the subgraph induced by `vertices`. Returns the subgraph and
    /// the mapping `local index -> original vertex`.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (InteractionGraph, Vec<usize>) {
        let mut local_of = vec![usize::MAX; self.num_vertices];
        for (i, v) in vertices.iter().enumerate() {
            local_of[*v] = i;
        }
        let edges = self.edges.iter().filter_map(|(u, v, w)| {
            let lu = local_of[*u];
            let lv = local_of[*v];
            if lu != usize::MAX && lv != usize::MAX {
                Some((lu, lv, *w))
            } else {
                None
            }
        });
        (
            InteractionGraph::from_edges(vertices.len(), edges),
            vertices.to_vec(),
        )
    }

    /// Connected components of the graph, as lists of vertex indices.
    /// Isolated vertices each form their own component.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut visited = vec![false; self.num_vertices];
        let mut components = Vec::new();
        for start in 0..self.num_vertices {
            if visited[start] {
                continue;
            }
            let mut stack = vec![start];
            visited[start] = true;
            let mut component = Vec::new();
            while let Some(v) = stack.pop() {
                component.push(v);
                for (n, _) in self.neighbors(v) {
                    if !visited[*n] {
                        visited[*n] = true;
                        stack.push(*n);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }
}

/// Canonicalises a keyed edge list into `out`: stable sort by `(u, v)` key,
/// then parallel edges folded with their weights accumulated in *source
/// order* — exactly the fold a keyed ordered map would produce, which is the
/// FP-accumulation-order invariant the byte-identical-results guarantees of
/// the graph algorithms rest on. Shared by [`InteractionGraph::from_edges`]
/// and the Louvain aggregation so the invariant lives in one place. `keyed`
/// is drained (its capacity is retained for reuse).
pub(crate) fn merge_keyed_edges(
    keyed: &mut Vec<((usize, usize), f64)>,
    out: &mut Vec<(usize, usize, f64)>,
) {
    keyed.sort_by_key(|(key, _)| *key);
    out.clear();
    for ((u, v), w) in keyed.drain(..) {
        match out.last_mut() {
            Some((lu, lv, lw)) if *lu == u && *lv == v => *lw += w,
            _ => out.push((u, v, w)),
        }
    }
}

/// Builds the CSR arrays for a canonical (sorted, `u < v`, deduplicated)
/// edge list into caller-owned buffers, so coarsening loops can rebuild their
/// work graph per level without reallocating. Same fill as
/// [`InteractionGraph::from_sorted_edges`].
pub(crate) fn build_csr(
    num_vertices: usize,
    edges: &[(usize, usize, f64)],
    offsets: &mut Vec<usize>,
    adj: &mut Vec<(usize, f64)>,
) {
    offsets.clear();
    offsets.resize(num_vertices + 1, 0);
    for (u, v, _) in edges {
        offsets[*u + 1] += 1;
        offsets[*v + 1] += 1;
    }
    for i in 0..num_vertices {
        offsets[i + 1] += offsets[i];
    }
    adj.clear();
    adj.resize(offsets[num_vertices], (0, 0.0));
    let mut cursor: Vec<usize> = offsets.clone();
    for (u, v, w) in edges {
        adj[cursor[*u]] = (*v, *w);
        cursor[*u] += 1;
        adj[cursor[*v]] = (*u, *w);
        cursor[*v] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::{CircuitBuilder, QubitRole};

    #[test]
    fn from_edges_merges_parallel_and_drops_loops() {
        let g = InteractionGraph::from_edges(3, [(0, 1, 1.0), (1, 0, 2.0), (2, 2, 5.0)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), 3.0);
        assert_eq!(g.edge_weight(1, 0), 3.0);
        assert_eq!(g.edge_weight(0, 2), 0.0);
    }

    #[test]
    fn from_circuit_counts_interactions() {
        let mut b = CircuitBuilder::new("c");
        let q = b.register("q", QubitRole::Data, 3);
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[1], q[0]).unwrap();
        b.cxx(q[2], vec![q[0], q[1]]).unwrap();
        b.h(q[0]).unwrap();
        let c = b.build();
        let g = InteractionGraph::from_circuit(&c);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), 2.0);
        assert_eq!(g.edge_weight(0, 2), 1.0);
    }

    #[test]
    fn degrees_and_weights() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.weighted_degree(0), 6.0);
        assert_eq!(g.total_edge_weight(), 6.0);
        assert_eq!(g.active_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_are_not_active() {
        let g = InteractionGraph::from_edges(5, [(0, 1, 1.0)]);
        assert_eq!(g.active_vertices(), vec![0, 1]);
    }

    #[test]
    fn induced_subgraph_relabels_vertices() {
        let g = InteractionGraph::from_edges(5, [(0, 1, 1.0), (1, 4, 2.0), (2, 3, 1.0)]);
        let (sub, back) = g.induced_subgraph(&[1, 4, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.edge_weight(0, 1), 2.0); // (1,4) became (0,1)
        assert_eq!(back, vec![1, 4, 2]);
    }

    #[test]
    fn connected_components_partition_vertices() {
        let g = InteractionGraph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&3));
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = InteractionGraph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.connected_components().len(), 3);
    }

    #[test]
    fn csr_neighbor_slices_are_sorted() {
        // Insert edges in scrambled order; CSR must still expose every
        // neighbor slice in ascending index order.
        let g = InteractionGraph::from_edges(
            6,
            [
                (5, 2, 1.0),
                (0, 4, 1.0),
                (2, 0, 2.0),
                (3, 2, 1.0),
                (1, 2, 1.0),
            ],
        );
        for v in 0..6 {
            let nbs: Vec<usize> = g.neighbors(v).iter().map(|(n, _)| *n).collect();
            let mut sorted = nbs.clone();
            sorted.sort_unstable();
            assert_eq!(nbs, sorted, "vertex {v}");
        }
        assert_eq!(
            g.neighbors(2).iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec![0, 1, 3, 5]
        );
        assert_eq!(g.edge_weight(2, 0), 2.0);
        assert_eq!(g.edge_weight(2, 4), 0.0);
    }

    #[test]
    fn from_sorted_edges_matches_from_edges() {
        let edges = vec![(0, 1, 1.0), (0, 3, 2.0), (1, 2, 4.0)];
        let a = InteractionGraph::from_sorted_edges(4, edges.clone());
        let b = InteractionGraph::from_edges(4, edges);
        assert_eq!(a, b);
    }
}
