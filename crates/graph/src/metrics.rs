//! Congestion heuristics over a mapped interaction graph (Section VI-A).
//!
//! Given a placement (one [`Point`] per vertex) the three metrics studied by
//! the paper are computed:
//!
//! 1. **Average edge length** (Manhattan) — longer braids occupy more area and
//!    are more likely to overlap (edge-distance minimisation heuristic).
//! 2. **Average edge spacing** — distance between edge midpoints; larger
//!    spacing means braids are spread out and less likely to contend
//!    (edge-density uniformity heuristic).
//! 3. **Edge crossings** — pairs of edges whose straight-line embeddings
//!    cross; crossing braids cannot execute simultaneously.

use serde::{Deserialize, Serialize};

use crate::geometry::{segments_cross, Point};
use crate::InteractionGraph;

/// The three congestion metrics of Section VI-A evaluated on one placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingMetrics {
    /// Number of pairs of edges that cross in the straight-line embedding.
    pub edge_crossings: usize,
    /// Mean Manhattan length over all edges (0 for an edgeless graph).
    pub avg_edge_length: f64,
    /// Mean distance between midpoints over all pairs of distinct edges
    /// (0 when fewer than two edges exist).
    pub avg_edge_spacing: f64,
}

impl MappingMetrics {
    /// Computes all three metrics for a graph under a placement.
    ///
    /// # Panics
    ///
    /// Panics if `positions` has fewer entries than the graph has vertices.
    pub fn compute(graph: &InteractionGraph, positions: &[Point]) -> Self {
        MappingMetrics {
            edge_crossings: edge_crossings(graph, positions),
            avg_edge_length: average_edge_length(graph, positions),
            avg_edge_spacing: average_edge_spacing(graph, positions),
        }
    }
}

/// Number of crossing pairs among the straight-line embeddings of the edges.
///
/// Edges sharing an endpoint never count as crossing. The computation is the
/// naive `O(m²)` pair scan, which is adequate for distillation-factory-sized
/// graphs (a few thousand edges).
pub fn edge_crossings(graph: &InteractionGraph, positions: &[Point]) -> usize {
    assert!(positions.len() >= graph.num_vertices());
    let edges = graph.edges();
    let mut crossings = 0;
    for i in 0..edges.len() {
        let (a, b, _) = edges[i];
        for (c, d, _) in edges.iter().skip(i + 1) {
            if a == *c || a == *d || b == *c || b == *d {
                continue;
            }
            if segments_cross(positions[a], positions[b], positions[*c], positions[*d]) {
                crossings += 1;
            }
        }
    }
    crossings
}

/// Mean Manhattan edge length under the placement.
pub fn average_edge_length(graph: &InteractionGraph, positions: &[Point]) -> f64 {
    assert!(positions.len() >= graph.num_vertices());
    if graph.num_edges() == 0 {
        return 0.0;
    }
    let total: f64 = graph
        .edges()
        .iter()
        .map(|(u, v, _)| positions[*u].manhattan_distance(&positions[*v]))
        .sum();
    total / graph.num_edges() as f64
}

/// Mean Euclidean distance between the midpoints of all pairs of distinct
/// edges. Larger is better (edges are more spread out).
pub fn average_edge_spacing(graph: &InteractionGraph, positions: &[Point]) -> f64 {
    assert!(positions.len() >= graph.num_vertices());
    let midpoints: Vec<Point> = graph
        .edges()
        .iter()
        .map(|(u, v, _)| positions[*u].midpoint(&positions[*v]))
        .collect();
    if midpoints.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..midpoints.len() {
        for j in (i + 1)..midpoints.len() {
            total += midpoints[i].distance(&midpoints[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Total weighted Manhattan edge length (used as an optimisation objective by
/// the mappers: heavier edges are more important to keep short).
pub fn weighted_edge_length(graph: &InteractionGraph, positions: &[Point]) -> f64 {
    graph
        .edges()
        .iter()
        .map(|(u, v, w)| w * positions[*u].manhattan_distance(&positions[*v]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-vertex graph with two edges forming an X when placed on a square.
    fn cross_graph() -> (InteractionGraph, Vec<Point>) {
        let g = InteractionGraph::from_edges(4, [(0, 2, 1.0), (1, 3, 1.0)]);
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        (g, pos)
    }

    #[test]
    fn crossing_pair_is_counted() {
        let (g, pos) = cross_graph();
        assert_eq!(edge_crossings(&g, &pos), 1);
    }

    #[test]
    fn planar_placement_has_no_crossings() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        assert_eq!(edge_crossings(&g, &pos), 0);
    }

    #[test]
    fn edge_length_average() {
        let (g, pos) = cross_graph();
        // Each diagonal has Manhattan length 4.
        assert_eq!(average_edge_length(&g, &pos), 4.0);
        assert_eq!(weighted_edge_length(&g, &pos), 8.0);
    }

    #[test]
    fn edge_spacing_of_coincident_midpoints_is_zero() {
        let (g, pos) = cross_graph();
        // Both diagonals have midpoint (1,1).
        assert_eq!(average_edge_spacing(&g, &pos), 0.0);
    }

    #[test]
    fn edge_spacing_grows_when_edges_are_spread() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        let close = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let far = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(1.0, 10.0),
        ];
        assert!(average_edge_spacing(&g, &far) > average_edge_spacing(&g, &close));
    }

    #[test]
    fn metrics_struct_bundles_all_three() {
        let (g, pos) = cross_graph();
        let m = MappingMetrics::compute(&g, &pos);
        assert_eq!(m.edge_crossings, 1);
        assert_eq!(m.avg_edge_length, 4.0);
        assert_eq!(m.avg_edge_spacing, 0.0);
    }

    #[test]
    fn empty_graph_metrics_are_zero() {
        let g = InteractionGraph::empty(3);
        let pos = vec![Point::default(); 3];
        let m = MappingMetrics::compute(&g, &pos);
        assert_eq!(m.edge_crossings, 0);
        assert_eq!(m.avg_edge_length, 0.0);
        assert_eq!(m.avg_edge_spacing, 0.0);
    }
}
