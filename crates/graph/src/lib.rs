//! # msfu-graph
//!
//! Interaction-graph analysis for surface-code circuit mapping, implementing
//! the graph machinery of the MSFU paper (Ding et al., MICRO 2018):
//!
//! * [`InteractionGraph`] — the program interaction graph `G = (V, E)` whose
//!   vertices are logical qubits and whose weighted edges are two-qubit
//!   interactions (Section VI).
//! * [`geometry`] — 2-D points, segment intersection and distance helpers.
//! * [`metrics`] — the three congestion heuristics of Section VI-A: average
//!   edge (Manhattan) length, average edge spacing and edge-crossing count,
//!   plus a combined [`metrics::MappingMetrics`] record.
//! * [`correlation`] — Pearson correlation, used to reproduce the r-values of
//!   Fig. 6.
//! * [`community`] — Louvain modularity optimisation and label propagation
//!   for community detection (Section VI-B1).
//! * [`partition`] — multilevel recursive bisection (heavy-edge matching,
//!   greedy growth, boundary refinement), the METIS-style engine behind the
//!   graph-partitioning mapper (Section VI-B2).
//! * [`spectral`] — Fiedler-vector spectral bisection.
//! * [`kmeans`] — KMeans++ clustering of 2-D points (used by the
//!   community-structure forces of the force-directed mapper).
//! * [`planarity`] — Euler-bound planarity estimates for interaction graphs.
//!
//! # Example
//!
//! ```
//! use msfu_distill::bravyi_haah;
//! use msfu_graph::InteractionGraph;
//!
//! let circuit = bravyi_haah::single_module_circuit(4).unwrap();
//! let graph = InteractionGraph::from_circuit(&circuit);
//! assert_eq!(graph.num_vertices(), circuit.num_qubits() as usize);
//! assert!(graph.num_edges() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod community;
pub mod correlation;
pub mod geometry;
mod graph;
pub mod kmeans;
pub mod metrics;
pub mod partition;
pub mod planarity;
pub mod spectral;

pub use graph::InteractionGraph;
