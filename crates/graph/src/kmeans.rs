//! KMeans++ clustering of 2-D points.
//!
//! Used by the force-directed mapper's community-structure forces: when a
//! detected community has been split spatially into several clusters, the
//! cluster centroids determine the attraction forces that pull the community
//! back together (Section VI-B1 of the paper).

use rand::Rng;

use crate::geometry::Point;

/// Result of a KMeans run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids.
    pub centroids: Vec<Point>,
    /// Cluster assignment of each input point (index into `centroids`).
    pub assignment: Vec<usize>,
    /// Sum of squared distances of each point to its centroid.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Points assigned to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Reusable buffers for [`kmeans_with`]: the running minimum seeding
/// distances and the per-cluster accumulation slots of the Lloyd update.
#[derive(Debug, Clone, Default)]
pub struct KMeansScratch {
    min_dist2: Vec<f64>,
    sums: Vec<Point>,
    counts: Vec<usize>,
}

impl KMeansScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs KMeans++ (careful seeding followed by Lloyd iterations) on `points`.
///
/// `k` is clamped to the number of points; an empty input yields an empty
/// clustering. The iteration stops after convergence of the assignment or
/// after `max_iters` Lloyd steps, whichever comes first.
pub fn kmeans<R: Rng>(points: &[Point], k: usize, max_iters: usize, rng: &mut R) -> Clustering {
    kmeans_with(points, k, max_iters, rng, &mut KMeansScratch::default())
}

/// [`kmeans`] against caller-held [`KMeansScratch`]. The seeding pass keeps a
/// running minimum-distance array (updated once per new centroid instead of
/// refolded over every centroid), and the Lloyd centroid update accumulates
/// per-cluster sums in one pass over the points instead of collecting each
/// cluster's members. Results are identical to [`kmeans`].
pub fn kmeans_with<R: Rng>(
    points: &[Point],
    k: usize,
    max_iters: usize,
    rng: &mut R,
    scratch: &mut KMeansScratch,
) -> Clustering {
    if points.is_empty() || k == 0 {
        return Clustering {
            centroids: Vec::new(),
            assignment: vec![0; points.len()],
            inertia: 0.0,
        };
    }
    let k = k.min(points.len());

    // KMeans++ seeding. `min_dist2[i]` is the squared distance of point `i`
    // to its closest centroid so far — the left-to-right min fold over the
    // centroid list, maintained incrementally.
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    let first = points[rng.gen_range(0..points.len())];
    centroids.push(first);
    let dist2 = &mut scratch.min_dist2;
    dist2.clear();
    dist2.extend(
        points
            .iter()
            .map(|p| f64::INFINITY.min(p.distance(&first).powi(2))),
    );
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= f64::EPSILON {
            // All points coincide with existing centroids; duplicate one.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, d) in dist2.iter().enumerate() {
                if target <= *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let next = points[chosen];
        centroids.push(next);
        for (d, p) in dist2.iter_mut().zip(points.iter()) {
            *d = d.min(p.distance(&next).powi(2));
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; points.len()];
    let sums = &mut scratch.sums;
    let counts = &mut scratch.counts;
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = p.distance(centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        sums.clear();
        sums.resize(centroids.len(), Point::default());
        counts.clear();
        counts.resize(centroids.len(), 0);
        for (p, a) in points.iter().zip(assignment.iter()) {
            sums[*a] = sums[*a] + *p;
            counts[*a] += 1;
        }
        for (c, centroid_pos) in centroids.iter_mut().enumerate() {
            if counts[c] > 0 {
                *centroid_pos =
                    Point::new(sums[c].x / counts[c] as f64, sums[c].y / counts[c] as f64);
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(assignment.iter())
        .map(|(p, a)| p.distance(&centroids[*a]).powi(2))
        .sum();

    Clustering {
        centroids,
        assignment,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn two_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new(i as f64 * 0.1, 0.0));
            pts.push(Point::new(100.0 + i as f64 * 0.1, 50.0));
        }
        pts
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let pts = two_blobs();
        let c = kmeans(&pts, 2, 50, &mut rng());
        assert_eq!(c.num_clusters(), 2);
        // All even indices (first blob) share a cluster; all odd share the other.
        let first = c.assignment[0];
        let second = c.assignment[1];
        assert_ne!(first, second);
        for i in 0..pts.len() {
            if i % 2 == 0 {
                assert_eq!(c.assignment[i], first);
            } else {
                assert_eq!(c.assignment[i], second);
            }
        }
        assert!(c.inertia < 10.0);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let c = kmeans(&pts, 10, 10, &mut rng());
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let c = kmeans(&[], 3, 10, &mut rng());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.assignment.is_empty());
        assert_eq!(c.inertia, 0.0);
    }

    #[test]
    fn identical_points_handled() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let c = kmeans(&pts, 3, 10, &mut rng());
        assert_eq!(c.inertia, 0.0);
        assert_eq!(c.assignment.len(), 5);
    }

    #[test]
    fn members_returns_cluster_membership() {
        let pts = two_blobs();
        let c = kmeans(&pts, 2, 50, &mut rng());
        let total: usize = (0..c.num_clusters()).map(|k| c.members(k).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
        ];
        let c = kmeans(&pts, 1, 10, &mut rng());
        assert!((c.centroids[0].x - 1.0).abs() < 1e-9);
        assert!((c.centroids[0].y - 1.0).abs() < 1e-9);
    }
}
