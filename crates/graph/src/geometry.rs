//! 2-D geometry helpers: points, distances, segment intersection.

use serde::{Deserialize, Serialize};

/// A point in the plane. Mapping algorithms use integer grid coordinates but
/// force-directed optimisation works on continuous positions, so coordinates
/// are `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (column).
    pub x: f64,
    /// Vertical coordinate (row).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Manhattan (L1) distance to another point, the natural braid-length
    /// proxy on a grid mesh.
    pub fn manhattan_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Midpoint of the segment between this point and another.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl std::ops::Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

/// Centroid (arithmetic mean) of a set of points; the origin for an empty set.
pub fn centroid(points: &[Point]) -> Point {
    if points.is_empty() {
        return Point::default();
    }
    let mut cx = 0.0;
    let mut cy = 0.0;
    for p in points {
        cx += p.x;
        cy += p.y;
    }
    Point::new(cx / points.len() as f64, cy / points.len() as f64)
}

/// Orientation of the ordered triple `(a, b, c)`: positive for counter
/// clockwise, negative for clockwise, zero for collinear.
fn orientation(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) - 1e-12
        && p.x <= a.x.max(b.x) + 1e-12
        && p.y >= a.y.min(b.y) - 1e-12
        && p.y <= a.y.max(b.y) + 1e-12
}

/// Returns `true` when the open segments `(a1, a2)` and `(b1, b2)` cross.
///
/// Segments that merely share an endpoint are *not* considered crossing: in
/// the interaction graph two edges incident to the same qubit always share
/// that qubit's location, and such "crossings" do not indicate braid
/// congestion.
pub fn segments_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    const EPS: f64 = 1e-9;
    let share_endpoint = |p: Point, q: Point| p.distance(&q) < EPS;
    if share_endpoint(a1, b1)
        || share_endpoint(a1, b2)
        || share_endpoint(a2, b1)
        || share_endpoint(a2, b2)
    {
        return false;
    }

    let d1 = orientation(a1, a2, b1);
    let d2 = orientation(a1, a2, b2);
    let d3 = orientation(b1, b2, a1);
    let d4 = orientation(b1, b2, a2);

    if ((d1 > EPS && d2 < -EPS) || (d1 < -EPS && d2 > EPS))
        && ((d3 > EPS && d4 < -EPS) || (d3 < -EPS && d4 > EPS))
    {
        return true;
    }

    // Collinear overlap cases: treat a point of one segment lying strictly on
    // the other as a crossing (the braids would contend for the same cells).
    if d1.abs() <= EPS && on_segment(a1, a2, b1) {
        return true;
    }
    if d2.abs() <= EPS && on_segment(a1, a2, b2) {
        return true;
    }
    if d3.abs() <= EPS && on_segment(b1, b2, a1) {
        return true;
    }
    if d4.abs() <= EPS && on_segment(b1, b2, a2) {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.manhattan_distance(&b), 7.0);
        assert_eq!(a.midpoint(&b), Point::new(1.5, 2.0));
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Point::new(1.0, 1.0));
        assert_eq!(centroid(&[]), Point::new(0.0, 0.0));
    }

    #[test]
    fn crossing_segments_detected() {
        // A clear X crossing.
        assert!(segments_cross(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn parallel_segments_do_not_cross() {
        assert!(!segments_cross(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(2.0, 1.0)
        ));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        assert!(!segments_cross(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn disjoint_segments_do_not_cross() {
        assert!(!segments_cross(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(4.0, 4.0)
        ));
    }

    #[test]
    fn collinear_overlapping_segments_cross() {
        assert!(segments_cross(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0)
        ));
    }

    #[test]
    fn t_junction_counts_as_crossing() {
        // One segment ends strictly inside the other.
        assert!(segments_cross(
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, -1.0),
            Point::new(2.0, 0.0)
        ));
    }
}
