//! Spectral graph analysis: Fiedler-vector bisection.
//!
//! The paper lists spectral analysis among the community-detection and
//! partitioning tools applicable to interaction graphs. This module computes
//! an approximation of the Fiedler vector (the eigenvector of the graph
//! Laplacian associated with the second-smallest eigenvalue) by power
//! iteration on a shifted Laplacian, and derives a bisection from its sign
//! pattern.

use rand::Rng;

use crate::InteractionGraph;

/// Approximate Fiedler vector of the graph Laplacian, computed by power
/// iteration on `(c·I − L)` with deflation of the constant vector.
///
/// Returns a vector of length `num_vertices`; for an edgeless or empty graph
/// the result is all zeros.
pub fn fiedler_vector<R: Rng>(
    graph: &InteractionGraph,
    iterations: usize,
    rng: &mut R,
) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 || graph.num_edges() == 0 {
        return vec![0.0; n];
    }
    let degrees: Vec<f64> = (0..n).map(|v| graph.weighted_degree(v)).collect();
    let max_degree = degrees.iter().cloned().fold(0.0, f64::max);
    // Shift so that the matrix (shift·I − L) is positive semi-definite and its
    // dominant eigenvector (after deflating the constant vector) corresponds
    // to the smallest nontrivial Laplacian eigenvalue.
    let shift = 2.0 * max_degree + 1.0;

    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    deflate_and_normalize(&mut x);

    // Double-buffered iterate: `y` is fully overwritten each round, so the
    // two vectors ping-pong with no per-iteration allocation.
    let mut y = vec![0.0; n];
    for _ in 0..iterations {
        // y = (shift·I − L) x = shift·x − D·x + A·x
        for v in 0..n {
            y[v] = (shift - degrees[v]) * x[v];
        }
        for (u, v, w) in graph.edges() {
            y[*u] += w * x[*v];
            y[*v] += w * x[*u];
        }
        deflate_and_normalize(&mut y);
        std::mem::swap(&mut x, &mut y);
    }
    x
}

/// Removes the component along the all-ones vector and normalises to unit
/// length (or leaves the vector untouched if it is numerically zero).
fn deflate_and_normalize(x: &mut [f64]) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

/// Spectral bisection: vertices with Fiedler component below the median go to
/// side 0, the rest to side 1. Returns the side of each vertex.
pub fn spectral_bisection<R: Rng>(graph: &InteractionGraph, rng: &mut R) -> Vec<usize> {
    let n = graph.num_vertices();
    let fiedler = fiedler_vector(graph, 200, rng);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|a, b| fiedler[*a].partial_cmp(&fiedler[*b]).unwrap());
    let mut side = vec![1usize; n];
    for &v in order.iter().take(n / 2) {
        side[v] = 0;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::cut_weight;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn dumbbell() -> InteractionGraph {
        let mut edges = Vec::new();
        for i in 0..6usize {
            for j in (i + 1)..6 {
                edges.push((i, j, 1.0));
                edges.push((i + 6, j + 6, 1.0));
            }
        }
        edges.push((0, 6, 1.0));
        InteractionGraph::from_edges(12, edges)
    }

    #[test]
    fn fiedler_vector_separates_cliques_by_sign() {
        let g = dumbbell();
        let f = fiedler_vector(&g, 300, &mut rng());
        // All vertices of one clique share a sign, opposite to the other.
        let sign = |x: f64| x >= 0.0;
        let s0 = sign(f[1]);
        for (v, x) in f.iter().enumerate().take(6).skip(1) {
            assert_eq!(sign(*x), s0, "vertex {v}");
        }
        let s1 = sign(f[7]);
        assert_ne!(s0, s1);
        for (v, x) in f.iter().enumerate().take(12).skip(7) {
            assert_eq!(sign(*x), s1, "vertex {v}");
        }
    }

    #[test]
    fn spectral_bisection_has_small_cut() {
        let g = dumbbell();
        let side = spectral_bisection(&g, &mut rng());
        assert_eq!(side.iter().filter(|s| **s == 0).count(), 6);
        assert!(cut_weight(&g, &side) <= 2.0);
    }

    #[test]
    fn fiedler_vector_is_zero_mean_and_unit_norm() {
        let g = dumbbell();
        let f = fiedler_vector(&g, 100, &mut rng());
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        let norm: f64 = f.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(mean.abs() < 1e-9);
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edgeless_graph_yields_zero_vector() {
        let g = InteractionGraph::empty(4);
        let f = fiedler_vector(&g, 50, &mut rng());
        assert_eq!(f, vec![0.0; 4]);
        let side = spectral_bisection(&g, &mut rng());
        assert_eq!(side.iter().filter(|s| **s == 0).count(), 2);
    }
}
