//! Offline stand-in for `rayon`.
//!
//! crates.io is unreachable in the build environment, so this crate provides
//! the small parallel-iteration surface the sweep engine uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus `with_max_threads`.
//! Work is distributed over `std::thread::scope` workers through an atomic
//! cursor (dynamic scheduling, so an expensive point does not stall a whole
//! chunk), and results land in their input positions — output order is
//! identical to the sequential order regardless of thread interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker count: `RAYON_NUM_THREADS` when set (matching real rayon), else the
/// machine's available parallelism.
fn default_workers() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

pub mod prelude {
    //! Drop-in `use rayon::prelude::*;` surface.
    pub use crate::ParSliceExt;
}

/// Extension trait putting `par_iter` on slices (and, by deref, `Vec`).
pub trait ParSliceExt<T: Sync> {
    /// A parallel iterator over references to the slice's elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice (the only shape the workspace needs).
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            max_threads: usize::MAX,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T: Sync, F> {
    items: &'a [T],
    f: F,
    max_threads: usize,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Caps the number of worker threads (1 forces sequential execution).
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads.max(1);
        self
    }

    /// Runs the map and collects results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.items.len();
        let workers = default_workers().min(self.max_threads).min(n).max(1);

        if workers == 1 {
            let out: Vec<R> = self.items.iter().map(&self.f).collect();
            return C::from(out);
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let f = &self.f;
        let items = self.items;
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    // A send can only fail after the receiver is gone, which
                    // only happens when another worker panicked; propagate by
                    // stopping quietly and letting scope re-raise the panic.
                    if tx.send((idx, f(&items[idx]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (idx, value) in rx {
                slots[idx] = Some(value);
            }
        });

        let out: Vec<R> = slots
            .into_iter()
            .map(|s| s.expect("every index is produced exactly once"))
            .collect();
        C::from(out)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serialises this module's tests: one mutates RAYON_NUM_THREADS while the
    /// others read it via default_workers(), and concurrent getenv/setenv is a
    /// data race.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn env_guard() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn map_collect_preserves_order() {
        let _guard = env_guard();
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_uneven_work() {
        let _guard = env_guard();
        let input: Vec<u64> = (0..64).collect();
        let work = |x: &u64| -> u64 {
            // Uneven per-item cost to exercise the dynamic scheduler.
            (0..(*x % 7) * 1000).fold(*x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let par: Vec<u64> = input.par_iter().map(work).collect();
        let seq: Vec<u64> = input.iter().map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_cap_works() {
        let _guard = env_guard();
        let input = [1, 2, 3];
        let out: Vec<i32> = input
            .par_iter()
            .map(|x| x + 1)
            .with_max_threads(1)
            .collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn env_var_forces_thread_count() {
        let _guard = env_guard();
        // Order preservation must hold under forced oversubscription too.
        // The variable is restored before the assertion can unwind.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 3).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let _guard = env_guard();
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
